"""Shared writer for the ``BENCH_*.json`` artifacts.

Every benchmark used to end with the same four hand-rolled lines
(dump, write to repo root, write to ``benchmarks/results/``); worse,
none of them recorded *where* the numbers came from, so artifacts
pulled from CI could not be compared across commits or machines.
:func:`write_bench` centralizes the tail and stamps each payload with
an ``environment`` block — git SHA, Python version, CPU count, and a
schema version for the block itself — so a downloaded artifact is
self-describing.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from pathlib import Path

REPO_ROOT = Path(__file__).parent.parent

#: Version of the ``environment`` stamp block (not of each benchmark's
#: own result shape); bump when its keys change.
ENVIRONMENT_SCHEMA = 1


def bench_environment() -> dict:
    """The provenance stamp attached to every benchmark payload."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        sha = None
    return {
        "schema_version": ENVIRONMENT_SCHEMA,
        "git_sha": sha,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
    }


def write_bench(name: str, result: dict, results_dir) -> str:
    """Stamp ``result`` and write ``BENCH_<name>.json`` to the repo
    root (the CI artifact path) and to ``results_dir``; returns the
    serialized payload for the benchmark's own printing."""
    stamped = dict(result)
    stamped["environment"] = bench_environment()
    payload = json.dumps(stamped, indent=2)
    (REPO_ROOT / f"BENCH_{name}.json").write_text(payload)
    (Path(results_dir) / f"BENCH_{name}.json").write_text(payload)
    return payload
