"""Benchmark: Figure 2 — HC vs the 8 aggregation baselines.

Paper shape: HC's accuracy is consistently above every baseline at
every budget, strong already at low budget.
"""

from repro.experiments import (
    format_experiment,
    run_figure2,
    save_json,
)


def test_bench_figure2(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_figure2, args=(bench_scale,), rounds=1, iterations=1
    )

    hc = result.by_label("HC").accuracy
    for label in result.labels:
        if label == "HC":
            continue
        baseline = result.by_label(label).accuracy
        assert all(
            h >= b - 1e-9 for h, b in zip(hc, baseline)
        ), f"HC fell below {label}"
    # "HC can still achieve a high accuracy rate even at low budget."
    assert hc[0] > 0.85
    assert hc[-1] >= hc[0]

    save_json(result, results_dir / "figure2.json")
    print()
    print(format_experiment(result))
