"""Benchmark: Table III — selection time per round, OPT vs Approx.

Paper shape: OPT's time grows exponentially in k (timeout past small
k); Approx grows polynomially and remains feasible.  We use a 16-fact
task (paper: >20) and a 15-second OPT timeout so the whole harness
stays laptop-friendly; the growth shapes are unchanged.
"""

from repro.experiments import format_table3, run_table3


def test_bench_table3(benchmark, results_dir):
    result = benchmark.pedantic(
        run_table3,
        kwargs={
            "k_values": (1, 2, 3, 4, 5, 6),
            "num_facts": 16,
            "opt_timeout_seconds": 15.0,
        },
        rounds=1,
        iterations=1,
    )

    rows = {row.k: row for row in result.rows}
    timed = [row for row in result.rows if row.opt_seconds is not None]
    assert rows[1].opt_seconds is not None, "OPT must finish at k=1"

    # Exponential growth: each extra k multiplies OPT's cost; the last
    # timed OPT is at least 5x the first.
    if len(timed) >= 3:
        assert timed[-1].opt_seconds > 5 * timed[0].opt_seconds
    # OPT eventually loses to Approx decisively.
    last_timed = timed[-1]
    assert (
        last_timed.opt_seconds > last_timed.approx_seconds
        or any(row.opt_seconds is None for row in result.rows)
    )
    # Approx stays feasible through the largest k.
    assert result.rows[-1].approx_seconds < 15.0

    import json

    (results_dir / "table3.json").write_text(
        json.dumps(result.to_dict(), indent=2)
    )
    print()
    print(format_table3(result))
