"""Benchmarks for the DESIGN.md ablations (beyond the paper's figures).

* selector ablation — full conditional-entropy greedy vs the marginal-
  entropy shortcut vs random, isolating the value of modeling
  correlations + expert accuracy in the objective;
* cost-model ablation — section III-D's per-worker answer costs.
"""

from repro.experiments import (
    format_experiment,
    run_ablation_cost_model,
    run_ablation_selectors,
    save_json,
)


def test_bench_ablation_selectors(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_ablation_selectors, args=(bench_scale,), rounds=1, iterations=1
    )

    approx_k1 = result.by_label("Approx (k=1)").quality
    marginal_k1 = result.by_label("MaxEntropy (k=1)").quality
    random_k1 = result.by_label("Random (k=1)").quality
    assert approx_k1[-1] >= random_k1[-1] - 1e-9
    # The [41] special case: identical at k=1.
    assert abs(approx_k1[-1] - marginal_k1[-1]) < 1e-9
    # At k=3 the full objective is at least as good as the shortcut.
    approx_k3 = result.by_label("Approx (k=3)").quality
    marginal_k3 = result.by_label("MaxEntropy (k=3)").quality
    assert approx_k3[-1] >= marginal_k3[-1] - 1.0

    save_json(result, results_dir / "ablation_selectors.json")
    print()
    print(format_experiment(result))


def test_bench_ablation_cost_model(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_ablation_cost_model, args=(bench_scale,), rounds=1, iterations=1
    )

    unit = result.by_label("unit cost").quality
    costly = result.by_label("cost = 1.5*Pr_cr").quality
    # Paying more per answer cannot help at equal nominal budget.
    assert unit[-1] >= costly[-1] - 1.0

    save_json(result, results_dir / "ablation_cost_model.json")
    print()
    print(format_experiment(result))
