"""Benchmark: Figure 3 — varying the per-round query count k.

Paper shape: smaller k gives better quality/accuracy at equal budget;
the differences shrink as the budget grows.
"""

from repro.experiments import format_experiment, run_figure3, save_json


def test_bench_figure3(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_figure3,
        args=(bench_scale,),
        kwargs={"k_values": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )

    k1 = result.by_label("k=1")
    k3 = result.by_label("k=3")
    # Smaller k at least matches larger k in final quality (with slack
    # for simulation noise).
    assert k1.quality[-1] >= k3.quality[-1] - 2.0
    # Every k must improve quality over its own starting point.
    for series in result.series:
        assert series.quality[-1] > series.quality[0]

    save_json(result, results_dir / "figure3.json")
    print()
    print(format_experiment(result))
