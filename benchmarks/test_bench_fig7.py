"""Benchmark: Figure 7 — HC vs NO-HC (flat checking, uniform prior).

Paper shape: for the same budget, the hierarchical design improves the
data quality much faster than brute-force checking by the whole crowd.
"""

from repro.experiments import format_experiment, run_figure7, save_json


def test_bench_figure7(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_figure7, args=(bench_scale,), rounds=1, iterations=1
    )

    hc = result.by_label("HC").quality
    flat = result.by_label("NO HC").quality
    # HC leads at every sampled budget, by a wide margin at the end.
    assert all(h > f for h, f in zip(hc, flat))
    hc_gain = hc[-1] - hc[0]
    flat_gain = flat[-1] - flat[0]
    assert hc[-1] - flat[-1] > 10.0
    assert hc_gain >= flat_gain - 1.0

    save_json(result, results_dir / "figure7.json")
    print()
    print(format_experiment(result))
