"""Benchmark: Figure 4 — varying the expert threshold theta.

Paper shape: larger theta (purer, smaller CE) achieves higher quality
per answer early; all thetas improve with budget.
"""

from repro.experiments import format_experiment, run_figure4, save_json


def test_bench_figure4(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_figure4,
        args=(bench_scale,),
        kwargs={"thetas": (0.8, 0.85, 0.9)},
        rounds=1,
        iterations=1,
    )

    for series in result.series:
        assert series.quality[-1] > series.quality[0]
    # theta=0.9 uses only the most accurate checkers: its early quality
    # per unit budget should not trail the loosest threshold's.
    tight = result.by_label("theta=0.9").quality
    loose = result.by_label("theta=0.8").quality
    assert tight[0] >= loose[0] - 2.0

    save_json(result, results_dir / "figure4.json")
    print()
    print(format_experiment(result))
