"""Benchmark: the streaming runtime under chaos-degraded delivery.

Drives a :class:`~repro.stream.runtime.StreamingCampaign` over a
reorder/duplicate/stall delivery schedule with expert churn and records
streaming-level metrics to ``BENCH_stream.json`` at the repository root
(plus a copy under ``benchmarks/results/``):

* sustained throughput in delivered events per second of wall-clock;
* event-to-belief latency percentiles (p50 / p95 / p99) — the time
  from a delivery slot starting to its boundary checkpoint committing;
* admission accounting (admitted / duplicates / late drops / groups
  sealed / forced seals / out-of-band updates).

Before measuring, the run re-asserts the robustness contract at bench
scale: the same chaos-streamed campaign killed mid-stream resumes from
its journal byte-identical to the uninterrupted run.

Set ``BENCH_STREAM_SMOKE=1`` for the reduced CI version.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import make_synthetic_dataset
from repro.stream import (
    StreamChaos,
    StreamSpec,
    StreamingCampaign,
    generate_event_stream,
    make_arrivals,
)

SMOKE = os.environ.get("BENCH_STREAM_SMOKE", "") not in ("", "0")
NUM_GROUPS = 3 if SMOKE else 20
BUDGET = 40.0 if SMOKE else 400.0

from _writer import write_bench

REPO_ROOT = Path(__file__).parent.parent


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def _build(tmp_path, journal_name):
    dataset = make_synthetic_dataset(
        num_groups=NUM_GROUPS, group_size=3, answers_per_fact=6, seed=1
    )
    spec = StreamSpec(
        arrival="bursty",
        rate=200.0,
        votes_per_fact=3,
        group_size=3,
        target_votes=2,
        churn=0.1,
        seed=7,
        chaos=StreamChaos(
            reorder=0.15, duplicate=0.1, stall=0.05, drop=0.02, seed=3
        ),
    )
    events = generate_event_stream(
        dataset,
        theta=spec.theta,
        votes_per_fact=spec.votes_per_fact,
        arrivals=make_arrivals(spec.arrival, spec.rate),
        seed=spec.seed,
        churn_rate=spec.churn,
        window=spec.window,
    )
    experts = dataset.split_crowd(spec.theta)[0]
    campaign = StreamingCampaign(
        events,
        experts,
        BUDGET,
        spec=spec,
        journal_path=tmp_path / journal_name,
    )
    return campaign, events, experts


def test_bench_stream(results_dir, tmp_path, monkeypatch):
    for name in ("REPRO_STREAM_CHAOS", "REPRO_STREAM_CHAOS_SEED"):
        monkeypatch.delenv(name, raising=False)

    # -- contract first: chaos kill/resume is byte-identical ----------
    reference, events, experts = _build(tmp_path, "ref.jsonl")
    reference.run()
    assert reference.finished
    reference_bytes = (tmp_path / "ref.jsonl").read_bytes()

    killed, _, _ = _build(tmp_path, "killed.jsonl")
    killed.run(max_events=killed.total_deliveries // 2)
    resumed = StreamingCampaign.resume(
        tmp_path / "killed.jsonl", events, experts=experts
    )
    resumed.run()
    assert resumed.finished
    assert (tmp_path / "killed.jsonl").read_bytes() == reference_bytes, (
        "chaos-streamed resume diverged from the uninterrupted run"
    )

    # -- then the measured run ----------------------------------------
    campaign, _, _ = _build(tmp_path, "bench.jsonl")
    started = time.perf_counter()
    stats = campaign.run()
    wall_seconds = time.perf_counter() - started
    assert campaign.finished
    latencies = campaign.event_latencies
    assert len(latencies) == stats["cursor"]

    result = {
        "scale": {
            "num_groups": NUM_GROUPS,
            "budget": BUDGET,
            "deliveries": stats["deliveries"],
            "smoke": SMOKE,
        },
        "wall_seconds": wall_seconds,
        "events_per_second": stats["cursor"] / wall_seconds,
        "event_to_belief_latency_seconds": {
            "p50": _percentile(latencies, 50),
            "p95": _percentile(latencies, 95),
            "p99": _percentile(latencies, 99),
            "max": max(latencies),
        },
        "admission": {
            key: stats[key]
            for key in (
                "admitted",
                "duplicates",
                "late_admitted",
                "late_dropped",
                "groups_sealed",
                "forced_seals",
                "out_of_band",
                "joins",
                "leaves",
            )
        },
        "spent_budget": campaign.spent_budget,
        "resume_byte_identical": True,
    }
    write_bench("stream", result, results_dir)
    print()
    print(
        f"{stats['cursor']} deliveries in {wall_seconds:.2f}s "
        f"({result['events_per_second']:.0f} ev/s), "
        f"p95 event-to-belief "
        f"{result['event_to_belief_latency_seconds']['p95'] * 1e3:.2f}ms"
    )
