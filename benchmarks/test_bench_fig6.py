"""Benchmark: Figure 6 — varying the belief initialization.

Paper shape: EBCC/DS/BCC initializations dominate the
MV/ZC/GLAD/BWA/CRH group early; the gap narrows as budget grows; all
initializations end up accurate.
"""

import numpy as np

from repro.experiments import format_experiment, run_figure6, save_json

STRONG = ("EBCC", "DS", "BCC")
WEAK = ("MV", "ZC", "GLAD", "BWA", "CRH")


def test_bench_figure6(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_figure6, args=(bench_scale,), rounds=1, iterations=1
    )

    # The gap between initializations narrows with budget.
    def spread(index: int) -> float:
        values = [series.quality[index] for series in result.series]
        return max(values) - min(values)

    assert spread(-1) <= spread(0) + 1.0
    # Every initialization ends with high accuracy ("more than 89.3%"
    # in the paper; we allow scale slack).
    for series in result.series:
        assert series.accuracy[-1] > 0.85, series.label

    save_json(result, results_dir / "figure6.json")
    print()
    print(format_experiment(result))
