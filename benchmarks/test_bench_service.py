"""Benchmark: the multi-tenant campaign service under load.

Drives a :class:`~repro.service.CampaignService` through a mixed
workload — more campaigns than budget and slots can hold, spread over
several tenants, including one deliberately over-subscribed burst — and
records service-level metrics to ``BENCH_service.json`` at the
repository root (plus a copy under ``benchmarks/results/``):

* round-latency percentiles (p50 / p95 / p99) across every scheduled
  round of every tenant;
* throughput as completed campaigns per minute of service wall-clock;
* backpressure counters (admitted / rejected / shed) from the
  admission controller;
* the shared ledger's final accounting, asserted leak-free.

Alongside the numbers, the run re-asserts the service's core contract
at benchmark scale: every completed campaign's result is bit-identical
to the same campaign run solo, and no ledger reservation survives the
shutdown.

Set ``BENCH_SERVICE_SMOKE=1`` for the reduced CI version (fewer and
smaller campaigns).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import run_parallel_hc_session
from repro.service import (
    CampaignService,
    CampaignSpec,
    CampaignStatus,
    ServicePolicy,
    ServiceSaturatedError,
    TenantQuota,
)
from repro.simulation.session import SessionConfig

SMOKE = os.environ.get("BENCH_SERVICE_SMOKE", "") not in ("", "0")
NUM_CAMPAIGNS = 4 if SMOKE else 12
NUM_TENANTS = 2 if SMOKE else 3
NUM_GROUPS = 4 if SMOKE else 8
BUDGET = 12.0 if SMOKE else 24.0
SLOTS = 2 if SMOKE else 4
JOBS = 2

from _writer import write_bench

REPO_ROOT = Path(__file__).parent.parent


def _dataset(seed: int):
    return make_synthetic_dataset(
        num_groups=NUM_GROUPS,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=10, num_expert=2),
        seed=seed,
    )


def _config(seed: int, journal_path=None) -> SessionConfig:
    return SessionConfig(
        budget=BUDGET, k=2, seed=seed, journal_path=journal_path
    )


def _signature(result):
    return (
        [tuple(record.query_fact_ids) for record in result.history],
        [record.budget_spent for record in result.history],
        [state.probabilities.tobytes() for state in result.belief],
    )


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values), q))


def test_bench_service(results_dir, tmp_path, monkeypatch):
    for name in ("REPRO_CHAOS", "REPRO_CHAOS_SEED", "REPRO_SHARD_DEADLINE"):
        monkeypatch.delenv(name, raising=False)

    datasets = {index: _dataset(seed=200 + index)
                for index in range(NUM_CAMPAIGNS)}

    # Solo references for the bit-identity assertion.
    solo = {}
    for index, dataset in datasets.items():
        solo_config = _config(
            seed=index, journal_path=tmp_path / f"solo-{index}.jsonl"
        )
        solo[index] = _signature(
            run_parallel_hc_session(
                dataset, solo_config, jobs=JOBS, inline=True
            )
        )

    # A pool sized for all planned campaigns plus ~20% headroom, but
    # not for the over-subscription burst below.
    pool_budget = BUDGET * NUM_CAMPAIGNS * 1.2
    service = CampaignService(
        pool_budget,
        policy=ServicePolicy(slots=SLOTS, queue_limit=NUM_CAMPAIGNS),
        default_quota=TenantQuota(weight=1.0),
        journal_root=tmp_path / "svc",
    )

    started = time.perf_counter()
    handles = {}
    for index, dataset in datasets.items():
        handles[index] = service.submit(
            CampaignSpec(
                tenant=f"tenant-{index % NUM_TENANTS}",
                name=f"campaign-{index}",
                dataset=dataset,
                config=_config(seed=index),
                jobs=JOBS,
                # Stagger weights so the scheduler's weighted-fair path
                # is exercised, not just round-robin.
                weight=1.0 + (index % NUM_TENANTS),
            )
        )

    # Over-subscription burst: these cannot all deposit; the service
    # must reject them cleanly rather than stall or over-commit.
    burst_rejected = 0
    for extra in range(NUM_CAMPAIGNS):
        try:
            service.submit(
                CampaignSpec(
                    tenant="burst",
                    name=f"extra-{extra}",
                    dataset=datasets[extra % NUM_CAMPAIGNS],
                    config=_config(seed=1000 + extra),
                    jobs=JOBS,
                )
            )
        except ServiceSaturatedError:
            burst_rejected += 1

    rounds_run = service.run_until_idle()
    wall_seconds = time.perf_counter() - started
    assert burst_rejected >= 1

    completed = 0
    for index, handle in handles.items():
        assert handle.status is CampaignStatus.COMPLETED, (
            index, handle.error
        )
        assert _signature(service.result(handle)) == solo[index], (
            f"campaign {index} diverged from its solo run"
        )
        completed += 1

    latencies = service.round_latencies()
    assert len(latencies) == rounds_run
    stats = service.stats()
    assert service.ledger.audit() == [], "leaked ledger reservations"
    for campaign_id, entry in stats["campaigns"].items():
        assert entry["leaked_reservations"] == 0, campaign_id
    service.close()
    assert service.ledger.open_reservations == 0

    result = {
        "scale": {
            "campaigns": NUM_CAMPAIGNS,
            "tenants": NUM_TENANTS,
            "num_groups": NUM_GROUPS,
            "budget_per_campaign": BUDGET,
            "budget_pool": pool_budget,
            "slots": SLOTS,
            "jobs": JOBS,
            "smoke": SMOKE,
        },
        "rounds": rounds_run,
        "wall_seconds": wall_seconds,
        "campaigns_completed": completed,
        "campaigns_per_minute": completed / wall_seconds * 60.0,
        "round_latency_seconds": {
            "p50": _percentile(latencies, 50),
            "p95": _percentile(latencies, 95),
            "p99": _percentile(latencies, 99),
            "max": max(latencies),
        },
        "admission": stats["admission"],
        "ledger": stats["ledger"],
        "identical_to_solo": True,
    }
    write_bench("service", result, results_dir)
    print()
    print(
        f"{completed} campaigns / {rounds_run} rounds in "
        f"{wall_seconds:.2f}s "
        f"({result['campaigns_per_minute']:.1f} campaigns/min)"
    )
    print(
        "round latency p50/p95/p99: "
        f"{result['round_latency_seconds']['p50'] * 1e3:.1f} / "
        f"{result['round_latency_seconds']['p95'] * 1e3:.1f} / "
        f"{result['round_latency_seconds']['p99'] * 1e3:.1f} ms"
    )
    print(f"admission: {stats['admission']}")
