"""Benchmark: per-round expert panel size (DESIGN.md ablation E).

Shape: at a fixed budget, smaller panels cover more queries and — with
Bayesian fusion — reach better quality than the paper's send-to-all-CE
design on this workload.
"""

from repro.experiments import (
    format_experiment,
    run_ablation_panel_size,
    save_json,
)


def test_bench_panel_size(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_ablation_panel_size,
        args=(bench_scale,),
        kwargs={"panel_sizes": (1, 2, 3)},
        rounds=1,
        iterations=1,
    )

    for series in result.series:
        assert series.quality[-1] > series.quality[0]
    if {"panel=1", "panel=3"} <= set(result.labels):
        small = result.by_label("panel=1").quality
        full = result.by_label("panel=3").quality
        # Coverage beats redundancy at equal budget (allow slack).
        assert small[-1] >= full[-1] - 2.0

    save_json(result, results_dir / "ablation_panel_size.json")
    print()
    print(format_experiment(result))
