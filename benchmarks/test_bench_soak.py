"""Benchmark: durable-storage soak under combined chaos and SIGKILL.

Runs the long-haul soak harness — multi-tenant campaign waves on a
chaos-injected filesystem, SIGKILLed on a seeded schedule, recovered
with ``CampaignService.recover`` — and records the recovery economics
to ``BENCH_soak.json`` at the repository root (plus a copy under
``benchmarks/results/``):

* recoveries per minute of wall-clock and kill cycles survived;
* mean-time-to-recovery (directory sweep + salvage + reattach);
* records verified, bytes salvaged, and the damage taxonomy observed;
* the byte-identity verdict — every interrupted wave must converge to
  exactly the bytes of its uninterrupted chaos-free reference.

The harness raises :class:`~repro.storage.soak.SoakError` on any
divergence, so a written result file *is* the robustness assertion.

Set ``BENCH_SOAK_SMOKE=1`` for the reduced CI version.
"""

from __future__ import annotations

import os

from repro.storage.soak import run_soak

SMOKE = os.environ.get("BENCH_SOAK_SMOKE", "") not in ("", "0")
MINUTES = 0.05 if SMOKE else 0.5
KILL_EVERY = 0.4 if SMOKE else 0.8
MIN_KILLS = 1 if SMOKE else 5
TENANTS = 1 if SMOKE else 2

from _writer import write_bench


def test_bench_soak(results_dir, tmp_path, monkeypatch):
    for name in ("REPRO_STORAGE_CHAOS", "REPRO_STORAGE_CHAOS_SEED"):
        monkeypatch.delenv(name, raising=False)

    result = run_soak(
        minutes=MINUTES,
        kill_every=KILL_EVERY,
        seed=7,
        tenants=TENANTS,
        out_dir=tmp_path / "artifacts",
        min_kills=MIN_KILLS,
    )
    assert result["byte_identical"] is True
    assert result["kills"] >= MIN_KILLS
    assert result["failed_cycles"] == 0

    result["scale"] = {
        "minutes": MINUTES,
        "kill_every_s": KILL_EVERY,
        "tenants": TENANTS,
        "smoke": SMOKE,
    }
    write_bench("soak", result, results_dir)
    print()
    mttr = result["mttr_s"]
    print(
        f"{result['waves']} waves, {result['kills']} kills survived "
        f"({result['recoveries_per_min']:.1f} recoveries/min, "
        f"mean MTTR {mttr['mean'] * 1e3:.0f}ms, "
        f"max {mttr['max'] * 1e3:.0f}ms), "
        f"{result['records_verified']} records verified, "
        f"{result['bytes_salvaged']} bytes salvaged, byte-identical"
    )
