"""Benchmark: Figure 5 — OPT vs Approx vs Random checking-task selection.

Paper shape: OPT and Approx quality curves are nearly identical
(margin < 0.1 in the paper's units) and both far above Random.
"""

from repro.experiments import format_experiment, run_figure5, save_json


def test_bench_figure5(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_figure5,
        args=(bench_scale,),
        kwargs={"k_values": (2, 3), "opt_num_groups": 20},
        rounds=1,
        iterations=1,
    )

    for k in (2, 3):
        opt = result.by_label(f"OPT (k={k})").quality
        approx = result.by_label(f"Approx (k={k})").quality
        random = result.by_label(f"Random (k={k})").quality
        # Approx tracks OPT far more closely than Random does.
        opt_gap = abs(opt[-1] - approx[-1])
        random_gap = abs(opt[-1] - random[-1])
        assert opt_gap <= random_gap + 1e-9
        assert approx[-1] >= random[-1] - 1e-9

    save_json(result, results_dir / "figure5.json")
    print()
    print(format_experiment(result))
