"""Shared configuration for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a
reduced-but-shape-preserving scale, asserts the qualitative findings,
and prints the regenerated rows (run with ``-s`` to see them inline;
they are also written as JSON under ``benchmarks/results/``).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import DatasetSpec, ExperimentScale

#: Scale used by the figure benchmarks: large enough for stable shapes,
#: small enough that the whole harness completes in a few minutes.
BENCH_SCALE = ExperimentScale(
    dataset=DatasetSpec(num_groups=60, group_size=5, answers_per_fact=8),
    budgets=(30, 60, 90, 120, 150, 180, 210, 240, 270, 300),
    seed=0,
)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> ExperimentScale:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR
