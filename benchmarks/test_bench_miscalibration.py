"""Benchmark: robustness to worker-accuracy estimation error.

DESIGN.md ablation: the theta-split and all belief updates use
gold-task *estimates* of worker accuracy while the simulated humans
answer at their true rates.  More gold tasks -> closer to the
exact-accuracy reference curve.
"""

from repro.experiments import (
    format_experiment,
    run_ablation_miscalibration,
    save_json,
)


def test_bench_miscalibration(benchmark, bench_scale, results_dir):
    result = benchmark.pedantic(
        run_ablation_miscalibration,
        args=(bench_scale,),
        kwargs={"gold_counts": (20, 50, 200)},
        rounds=1,
        iterations=1,
    )

    exact = result.by_label("exact accuracies").quality
    # Every calibrated curve still improves with budget.
    for series in result.series:
        assert series.quality[-1] > series.quality[0]
    # Exact accuracies are never substantially worse than estimates.
    for label in result.labels:
        if label == "exact accuracies":
            continue
        estimated = result.by_label(label).quality
        assert exact[-1] >= estimated[-1] - 3.0, label

    save_json(result, results_dir / "ablation_miscalibration.json")
    print()
    print(format_experiment(result))
