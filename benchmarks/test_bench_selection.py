"""Benchmark: eager vs lazy greedy checking-task selection.

Runs the same multi-round checking campaign twice — once with the
eager ``GreedySelector`` (the paper's Algorithm 2 as written, O(N k)
gain evaluations per round) and once with the CELF
``LazyGreedySelector`` — asserts the selected query sets are identical
round for round, and records wall-clock and entropy-evaluation counts
to ``BENCH_selection.json`` at the repository root (and a copy under
``benchmarks/results/``).

Scale: 60 groups x 5 facts by default (the figure-benchmark scale);
set ``BENCH_SELECTION_SMOKE=1`` to run a 12-group smoke version (used
by the CI benchmark job).
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np

from repro.core import (
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    LazyGreedySelector,
    update_with_answer_set,
)

SMOKE = os.environ.get("BENCH_SELECTION_SMOKE", "") not in ("", "0")
NUM_GROUPS = 12 if SMOKE else 60
GROUP_SIZE = 5
ROUNDS = 4 if SMOKE else 8
K = 5

from _writer import write_bench

REPO_ROOT = Path(__file__).parent.parent


def _fresh_belief() -> FactoredBelief:
    rng = np.random.default_rng(0)
    groups = []
    for index in range(NUM_GROUPS):
        start = index * GROUP_SIZE
        facts = FactSet.from_ids(range(start, start + GROUP_SIZE))
        groups.append(
            BeliefState(facts, rng.dirichlet(np.ones(2 ** GROUP_SIZE)))
        )
    return FactoredBelief(groups)


def _run_campaign(selector, experts: Crowd) -> tuple[list[list[int]], float]:
    """Drive ``ROUNDS`` selection rounds with deterministic expert
    answers between them; return the per-round selections and the
    wall-clock spent inside ``selector.select`` only."""
    belief = _fresh_belief()
    answer_rng = np.random.default_rng(42)
    checker = Crowd.from_accuracies([0.9], prefix="bench")[0]
    selections: list[list[int]] = []
    seconds = 0.0
    for _ in range(ROUNDS):
        started = time.perf_counter()
        selected = selector.select(belief, experts, K)
        seconds += time.perf_counter() - started
        selections.append(selected)
        touched = set()
        for fact_id in selected:
            group_index = belief.group_index_of(fact_id)
            answer = AnswerSet(
                worker=checker,
                answers={fact_id: bool(answer_rng.integers(2))},
            )
            belief.replace_group(
                group_index,
                update_with_answer_set(belief[group_index], answer),
            )
            touched.add(group_index)
        invalidate = getattr(selector, "invalidate_groups", None)
        if callable(invalidate):
            invalidate(touched)
    return selections, seconds


def test_bench_selection(results_dir):
    experts = Crowd.from_accuracies([0.85, 0.9, 0.95], prefix="e")
    eager = GreedySelector()
    lazy = LazyGreedySelector()

    eager_selections, eager_seconds = _run_campaign(eager, experts)
    lazy_selections, lazy_seconds = _run_campaign(lazy, experts)

    # The tentpole guarantee: CELF returns *identical* query sets.
    assert lazy_selections == eager_selections
    assert all(selections for selections in eager_selections)

    # And it must do measurably less entropy work: the eager engine
    # pays O(N) scalar kernels per round, the lazy one a batch kernel
    # per touched group plus a handful of re-evaluations.
    assert lazy.stats.total_evaluations < eager.stats.total_evaluations / 2
    assert lazy.stats.entropy_evaluations < eager.stats.entropy_evaluations

    result = {
        "scale": {
            "num_groups": NUM_GROUPS,
            "group_size": GROUP_SIZE,
            "num_facts": NUM_GROUPS * GROUP_SIZE,
            "rounds": ROUNDS,
            "k": K,
            "smoke": SMOKE,
        },
        "eager": {
            "seconds": eager_seconds,
            "stats": eager.stats.as_dict(),
        },
        "lazy": {
            "seconds": lazy_seconds,
            "stats": lazy.stats.as_dict(),
        },
        "speedup": eager_seconds / lazy_seconds if lazy_seconds else None,
        "evaluation_ratio": (
            eager.stats.total_evaluations / lazy.stats.total_evaluations
            if lazy.stats.total_evaluations
            else None
        ),
        "identical_selections": True,
    }
    write_bench("selection", result, results_dir)
    print()
    print(
        f"eager: {eager_seconds:.3f}s, "
        f"{eager.stats.total_evaluations} evaluations | "
        f"lazy: {lazy_seconds:.3f}s, "
        f"{lazy.stats.total_evaluations} evaluations "
        f"({result['speedup']:.1f}x wall-clock, "
        f"{result['evaluation_ratio']:.1f}x fewer evaluations)"
    )
