"""Benchmark: serial vs sharded (multi-process) campaign execution.

Runs the same checking campaign three times — serially through
``run_hc_session`` and on 2- and 4-worker :class:`ParallelCampaignRunner`
process pools — asserts the runs are *bit-identical* (same per-round
selections, same budget trajectory, same final belief arrays), and
records wall-clock to ``BENCH_engine.json`` at the repository root (and
a copy under ``benchmarks/results/``).

The answer source is a :class:`KeyedExpertPanel` whose per-query latency
simulates real crowd turnaround; sharded collection overlaps those
latencies across shard processes, which is the speedup being measured.
Worker startup (process spawn + interpreter imports) is one-time cost
and is reported separately as ``startup_seconds``: on a many-core
machine it overlaps, on the 1-core CI box it serializes, and either way
it amortizes over a campaign while the campaign-phase speedup does not.

Set ``BENCH_ENGINE_SMOKE=1`` for the reduced CI version (2 workers,
short campaign, equivalence assertions only — no speedup floor).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.core.hc import RunResult
from repro.datasets.synthetic import make_synthetic_dataset
from repro.engine import KeyedExpertPanel, ParallelCampaignRunner
from repro.simulation.session import SessionConfig, run_hc_session

SMOKE = os.environ.get("BENCH_ENGINE_SMOKE", "") not in ("", "0")
NUM_GROUPS = 8 if SMOKE else 16
GROUP_SIZE = 5
K = 8
BUDGET = 180.0 if SMOKE else 360.0
LATENCY = 0.05 if SMOKE else 0.3
JOB_COUNTS = (2,) if SMOKE else (2, 4)

REPO_ROOT = Path(__file__).parent.parent


def _dataset():
    return make_synthetic_dataset(
        num_groups=NUM_GROUPS, group_size=GROUP_SIZE, seed=0
    )


def _panel(dataset) -> KeyedExpertPanel:
    return KeyedExpertPanel(dataset.ground_truth, seed=1, latency=LATENCY)


def _signature(result: RunResult):
    """Everything two equivalent runs must agree on, bit for bit."""
    return (
        [list(record.query_fact_ids) for record in result.history],
        [record.budget_spent for record in result.history],
        [state.probabilities.tobytes() for state in result.belief],
    )


def test_bench_engine(results_dir):
    dataset = _dataset()
    config = SessionConfig(budget=BUDGET, k=K, seed=1)

    started = time.perf_counter()
    serial = run_hc_session(dataset, config, answer_source=_panel(dataset))
    serial_seconds = time.perf_counter() - started
    reference = _signature(serial)
    rounds = len(serial.history) - 1
    assert rounds >= 3

    runs = {}
    for jobs in JOB_COUNTS:
        runner = ParallelCampaignRunner(
            dataset,
            config,
            jobs=jobs,
            answer_source=_panel(dataset),
            inline=False,
        )
        started = time.perf_counter()
        runner.prepare()
        startup_seconds = time.perf_counter() - started
        started = time.perf_counter()
        parallel = runner.run()
        campaign_seconds = time.perf_counter() - started

        # The tentpole guarantee: identical selections, identical budget
        # trajectory, bit-identical final beliefs, for any worker count.
        assert _signature(parallel) == reference
        assert parallel.final_labels == serial.final_labels
        runs[jobs] = {
            "jobs": runner.jobs_used,
            "startup_seconds": startup_seconds,
            "campaign_seconds": campaign_seconds,
            "speedup": serial_seconds / campaign_seconds,
        }

    if not SMOKE:
        # Four shard workers must at least halve campaign wall-clock by
        # overlapping collection latency (startup excluded: it is
        # one-time and amortizes; campaign time does not).
        assert runs[4]["speedup"] >= 2.0

    result = {
        "scale": {
            "num_groups": NUM_GROUPS,
            "group_size": GROUP_SIZE,
            "num_facts": NUM_GROUPS * GROUP_SIZE,
            "k": K,
            "budget": BUDGET,
            "rounds": rounds,
            "latency_per_query": LATENCY,
            "smoke": SMOKE,
        },
        "serial": {"campaign_seconds": serial_seconds},
        "parallel": {str(jobs): stats for jobs, stats in runs.items()},
        "identical_results": True,
    }
    payload = json.dumps(result, indent=2)
    (REPO_ROOT / "BENCH_engine.json").write_text(payload)
    (results_dir / "BENCH_engine.json").write_text(payload)
    print()
    print(f"serial: {serial_seconds:.2f}s over {rounds} rounds")
    for jobs, stats in runs.items():
        print(
            f"jobs={jobs}: campaign {stats['campaign_seconds']:.2f}s "
            f"({stats['speedup']:.2f}x), "
            f"startup {stats['startup_seconds']:.2f}s"
        )
