"""Benchmark: serial vs sharded (multi-process) campaign execution.

Runs the same checking campaign three times — serially through
``run_hc_session`` and on 2- and 4-worker :class:`ParallelCampaignRunner`
process pools — asserts the runs are *bit-identical* (same per-round
selections, same budget trajectory, same final belief arrays), and
records wall-clock to ``BENCH_engine.json`` at the repository root (and
a copy under ``benchmarks/results/``).

The campaign scale is 160 groups x 8 facts (1280 facts, 10x the
pre-kernel benchmark): the bit-packed log-space kernel and the
pre-serialized shard transport are what keep startup and per-round
compute flat enough to measure latency overlap at this size.

The answer source is a :class:`KeyedExpertPanel` whose per-query latency
simulates real crowd turnaround; sharded collection scatters each
round's queries in balanced ``(fact, ask_index)`` chunks, so the shard
processes overlap those latencies — that overlap is the speedup being
measured.  Worker startup (process spawn + interpreter imports) is
one-time cost and is reported separately as ``startup_seconds`` with
its own ceiling: the pre-serialized transport pickles the shared
panel/source payload once, so startup must stay flat as jobs grow.

Set ``BENCH_ENGINE_SMOKE=1`` for the reduced CI version: the same
10x dataset, but a short low-latency campaign on a 2-worker pool —
equivalence assertions and the peak-RSS guard only, no speedup floor.
"""

from __future__ import annotations

import os
import resource
import time
from pathlib import Path

from repro.core.hc import RunResult
from repro.datasets import WorkerPoolSpec
from repro.datasets.synthetic import make_synthetic_dataset
from repro.engine import KeyedExpertPanel, ParallelCampaignRunner
from repro.simulation.session import SessionConfig, run_hc_session

SMOKE = os.environ.get("BENCH_ENGINE_SMOKE", "") not in ("", "0")
NUM_GROUPS = 160
GROUP_SIZE = 8
K = 16
BUDGET = 256.0 if SMOKE else 768.0
LATENCY = 0.02 if SMOKE else 0.2
JOB_COUNTS = (2,) if SMOKE else (2, 4)

#: Ceilings enforced on the full (non-smoke) run.
MAX_STARTUP_SECONDS = 1.5
MIN_SPEEDUP_JOBS4 = 3.0

#: Peak-RSS guard (enforced in smoke mode too — it is what the CI
#: engine-smoke leg is for).  The coordinator at 160x8 holds 160 dense
#: 256-state groups plus the pool's belief mirror — a few MB of arrays
#: on top of the interpreter + numpy baseline; 600 MB is an order of
#: magnitude of headroom that still catches an accidental per-shard
#: belief copy or a dense-matrix blowup in the kernel.
MAX_PEAK_RSS_MB = 600

from _writer import write_bench

REPO_ROOT = Path(__file__).parent.parent


def _dataset():
    return make_synthetic_dataset(
        num_groups=NUM_GROUPS,
        group_size=GROUP_SIZE,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=30, num_expert=8),
        seed=0,
    )


def _panel(dataset) -> KeyedExpertPanel:
    return KeyedExpertPanel(dataset.ground_truth, seed=1, latency=LATENCY)


def _signature(result: RunResult):
    """Everything two equivalent runs must agree on, bit for bit."""
    return (
        [list(record.query_fact_ids) for record in result.history],
        [record.budget_spent for record in result.history],
        [state.probabilities.tobytes() for state in result.belief],
    )


def _peak_rss_mb() -> float:
    """Coordinator-process peak RSS in MB (Linux ru_maxrss is in KB)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def test_bench_engine(results_dir):
    dataset = _dataset()
    config = SessionConfig(budget=BUDGET, k=K, seed=1)

    started = time.perf_counter()
    serial = run_hc_session(dataset, config, answer_source=_panel(dataset))
    serial_seconds = time.perf_counter() - started
    reference = _signature(serial)
    rounds = len(serial.history) - 1
    assert rounds >= (1 if SMOKE else 3)

    runs = {}
    for jobs in JOB_COUNTS:
        runner = ParallelCampaignRunner(
            dataset,
            config,
            jobs=jobs,
            answer_source=_panel(dataset),
            inline=False,
        )
        started = time.perf_counter()
        runner.prepare()
        startup_seconds = time.perf_counter() - started
        started = time.perf_counter()
        parallel = runner.run()
        campaign_seconds = time.perf_counter() - started

        # The tentpole guarantee: identical selections, identical budget
        # trajectory, bit-identical final beliefs, for any worker count.
        assert _signature(parallel) == reference
        assert parallel.final_labels == serial.final_labels
        runs[jobs] = {
            "jobs": runner.jobs_used,
            "startup_seconds": startup_seconds,
            "campaign_seconds": campaign_seconds,
            "speedup": serial_seconds / campaign_seconds,
        }

    peak_rss_mb = _peak_rss_mb()
    assert peak_rss_mb < MAX_PEAK_RSS_MB

    if not SMOKE:
        # Startup is one-time (pre-serialized shared payload; flat in
        # jobs) but must stay sub-interactive even at 4 workers on the
        # 1-core CI box, where the spawns serialize.
        assert runs[4]["startup_seconds"] < MAX_STARTUP_SECONDS
        # Four shard workers must overlap enough collection latency for
        # a 3x campaign speedup (startup excluded: it amortizes over a
        # campaign; campaign time does not).  Balanced scatter makes
        # the per-shard sleep ~k/4 queries; compute stays serial on one
        # core, which is what keeps this below the ideal 4x.
        assert runs[4]["speedup"] >= MIN_SPEEDUP_JOBS4

    result = {
        "scale": {
            "num_groups": NUM_GROUPS,
            "group_size": GROUP_SIZE,
            "num_facts": NUM_GROUPS * GROUP_SIZE,
            "k": K,
            "budget": BUDGET,
            "rounds": rounds,
            "latency_per_query": LATENCY,
            "smoke": SMOKE,
        },
        "serial": {"campaign_seconds": serial_seconds},
        "parallel": {str(jobs): stats for jobs, stats in runs.items()},
        "peak_rss_mb": peak_rss_mb,
        "identical_results": True,
    }
    write_bench("engine", result, results_dir)
    print()
    print(f"serial: {serial_seconds:.2f}s over {rounds} rounds")
    for jobs, stats in runs.items():
        print(
            f"jobs={jobs}: campaign {stats['campaign_seconds']:.2f}s "
            f"({stats['speedup']:.2f}x), "
            f"startup {stats['startup_seconds']:.2f}s"
        )
    print(f"peak RSS: {peak_rss_mb:.0f} MB")
