"""Benchmark: observability overhead on the checking campaign.

Runs the same lazy-greedy checking campaign with ``OBS`` disabled and
with metrics + tracing fully enabled (including a trace JSONL file),
asserts the selections are identical (the zero-perturbation contract at
bench scale) and that the enabled run costs < 3% extra wall-clock.
Records both timings to ``BENCH_obs.json`` and leaves the enabled
run's trace (``BENCH_obs.trace.jsonl``) and metrics snapshot
(``metrics-obs.json``) at the repository root for CI artifact upload.

Scale: 40 groups x 5 facts by default; set ``BENCH_OBS_SMOKE=1`` for
the 12-group version the CI ``obs-smoke`` job runs.  Each mode runs
``REPEATS`` times interleaved and the per-mode minimum is compared, so
a single noisy iteration cannot fail the overhead gate.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.obs import OBS
from repro.simulation import SessionConfig, run_hc_session

SMOKE = os.environ.get("BENCH_OBS_SMOKE", "") not in ("", "0")
NUM_GROUPS = 24 if SMOKE else 60
GROUP_SIZE = 6
BUDGET = 360.0 if SMOKE else 960.0
REPEATS = 3 if SMOKE else 5
MAX_OVERHEAD = 0.03

from _writer import write_bench

REPO_ROOT = Path(__file__).parent.parent
TRACE_PATH = REPO_ROOT / "BENCH_obs.trace.jsonl"
METRICS_PATH = REPO_ROOT / "metrics-obs.json"


def _dataset():
    return make_synthetic_dataset(
        num_groups=NUM_GROUPS,
        group_size=GROUP_SIZE,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=20, num_expert=3),
        seed=11,
    )


def _run_campaign(dataset):
    """One full session; returns (per-round selections, seconds)."""
    config = SessionConfig(budget=BUDGET, k=4, seed=7, theta=0.85)
    started = time.perf_counter()
    result = run_hc_session(dataset, config)
    seconds = time.perf_counter() - started
    selections = [
        list(record.query_fact_ids) for record in result.history
    ]
    return selections, seconds


def test_bench_obs_overhead(results_dir):
    dataset = _dataset()
    TRACE_PATH.unlink(missing_ok=True)

    disabled_times: list[float] = []
    enabled_times: list[float] = []
    disabled_selections = enabled_selections = None
    # Interleave the modes so clock drift hits both equally; compare
    # per-mode minima, the standard noise-robust wall-clock estimator.
    for repeat in range(REPEATS):
        OBS.reset()
        selections, seconds = _run_campaign(dataset)
        disabled_times.append(seconds)
        disabled_selections = selections

        OBS.reset()
        OBS.enable(trace_path=TRACE_PATH if repeat == 0 else None)
        selections, seconds = _run_campaign(dataset)
        if repeat == 0:
            OBS.flush(METRICS_PATH)
        enabled_times.append(seconds)
        enabled_selections = selections
    snapshot = OBS.snapshot()
    OBS.reset()

    # Zero perturbation at bench scale: identical selections per round.
    assert enabled_selections == disabled_selections

    # The enabled run must have actually recorded the campaign phases.
    phases = {
        series["labels"]["phase"]
        for series in snapshot["metrics"]["repro_phase_seconds"]["series"]
    }
    assert {"select", "collect", "update"} <= phases
    assert TRACE_PATH.exists() and TRACE_PATH.stat().st_size > 0
    assert METRICS_PATH.exists()

    disabled_best = min(disabled_times)
    enabled_best = min(enabled_times)
    overhead = enabled_best / disabled_best - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"observability overhead {overhead:.1%} exceeds "
        f"{MAX_OVERHEAD:.0%} (disabled {disabled_best:.3f}s, "
        f"enabled {enabled_best:.3f}s)"
    )

    result = {
        "scale": {
            "num_groups": NUM_GROUPS,
            "group_size": GROUP_SIZE,
            "budget": BUDGET,
            "repeats": REPEATS,
            "smoke": SMOKE,
        },
        "disabled_seconds": disabled_times,
        "enabled_seconds": enabled_times,
        "disabled_best": disabled_best,
        "enabled_best": enabled_best,
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "phases_recorded": sorted(phases),
        "identical_selections": True,
    }
    write_bench("obs", result, results_dir)
    print()
    print(
        f"disabled: {disabled_best:.3f}s | enabled: {enabled_best:.3f}s "
        f"({overhead:+.2%} overhead, gate <{MAX_OVERHEAD:.0%})"
    )
