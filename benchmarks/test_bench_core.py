"""Micro-benchmarks of the core primitives.

These time the inner loops every experiment is built from: conditional
entropy evaluation, one greedy selection round, and one Bayesian belief
update.  Useful for tracking performance regressions; no paper claims
attached.
"""

import numpy as np
import pytest

from repro.core import (
    AnswerFamily,
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    conditional_entropy,
    update_with_family,
)


@pytest.fixture(scope="module")
def belief_5_facts():
    rng = np.random.default_rng(0)
    facts = FactSet.from_ids(range(5))
    return BeliefState(facts, rng.dirichlet(np.ones(32)))


@pytest.fixture(scope="module")
def experts():
    return Crowd.from_accuracies([0.92, 0.95, 0.9], prefix="e")


@pytest.fixture(scope="module")
def factored_200_groups():
    rng = np.random.default_rng(1)
    groups = []
    for index in range(200):
        facts = FactSet.from_ids(range(index * 5, index * 5 + 5))
        groups.append(BeliefState(facts, rng.dirichlet(np.ones(32))))
    return FactoredBelief(groups)


def test_bench_conditional_entropy(benchmark, belief_5_facts, experts):
    value = benchmark(
        conditional_entropy, belief_5_facts, [0, 1, 2], experts
    )
    assert 0.0 <= value <= 5.0


def test_bench_greedy_cold_selection(benchmark, factored_200_groups, experts):
    """Cold-cache greedy over 1000 candidate facts (first round cost)."""

    def cold_select():
        return GreedySelector().select(factored_200_groups, experts, 1)

    selected = benchmark(cold_select)
    assert len(selected) == 1


def test_bench_greedy_warm_selection(benchmark, factored_200_groups, experts):
    """Warm-cache greedy (steady-state per-round cost in the HC loop)."""
    selector = GreedySelector()
    selector.select(factored_200_groups, experts, 1)  # warm the cache

    selected = benchmark(selector.select, factored_200_groups, experts, 1)
    assert len(selected) == 1


def test_bench_belief_update(benchmark, belief_5_facts, experts):
    family = AnswerFamily(
        answer_sets=tuple(
            AnswerSet(worker=worker, answers={0: True, 1: False})
            for worker in experts
        )
    )
    posterior = benchmark(update_with_family, belief_5_facts, family)
    assert posterior.probabilities.sum() == pytest.approx(1.0)
