"""Micro-benchmarks of the eight aggregation baselines.

Times each truth-inference algorithm on the paper-scale answer matrix
(1000 facts x 8 answers) and sanity-checks its accuracy, so a
performance or quality regression in any baseline shows up here.
"""

import pytest

from repro.aggregation import BASELINE_NAMES, make_aggregator
from repro.experiments import PAPER_SCALE, build_dataset


@pytest.fixture(scope="module")
def dataset():
    return build_dataset(PAPER_SCALE.dataset)


@pytest.mark.parametrize("name", BASELINE_NAMES)
def test_bench_aggregator(benchmark, dataset, name):
    aggregator_matrix = dataset.annotations
    truth = dataset.truth_vector()

    def run():
        return make_aggregator(name).fit(aggregator_matrix)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.accuracy(truth) > 0.8, name
