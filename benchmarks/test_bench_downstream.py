"""Benchmark: downstream-training impact of label quality.

The paper's introduction: noisy labels "damnify the downstream model
training".  Trains the same classifier on HC's labels and on each
baseline's labels (noisy preliminary crowd) and compares test accuracy;
HC's cleaner labels must not train a worse model.
"""

from repro.experiments import (
    format_downstream,
    run_downstream_comparison,
)


def test_bench_downstream(benchmark, results_dir):
    comparison = benchmark.pedantic(
        run_downstream_comparison,
        kwargs={
            "num_groups": 40,
            "budget": 200,
            "methods": ("MV", "EBCC"),
            "num_feature_seeds": 8,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    # HC produces the most accurate training labels...
    hc_label_accuracy = comparison.train_label_accuracy["HC"]
    for method in ("MV", "EBCC"):
        assert hc_label_accuracy >= comparison.train_label_accuracy[method]
    # ...and those labels train a model at least as good as the
    # noisiest baseline's (averaged over feature worlds).
    assert (
        comparison.model_accuracy_mean["HC"]
        >= comparison.model_accuracy_mean["MV"] - 0.02
    )
    # Nobody beats the clean-label ceiling by more than noise.
    for method in comparison.labels:
        assert (
            comparison.model_accuracy_mean[method]
            <= comparison.clean_ceiling_mean + 0.05
        )

    import json

    (results_dir / "downstream.json").write_text(
        json.dumps(comparison.to_dict(), indent=2)
    )
    print()
    print(format_downstream(comparison))
