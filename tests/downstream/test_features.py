"""Unit tests for the downstream feature generator."""

import numpy as np
import pytest

from repro.downstream import FeatureSet, FeatureSpec, generate_features


class TestFeatureSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureSpec(num_features=0)
        with pytest.raises(ValueError):
            FeatureSpec(noise_scale=0.0)
        with pytest.raises(ValueError):
            FeatureSpec(separation=-1.0)


class TestGenerateFeatures:
    @pytest.fixture
    def truth(self):
        rng = np.random.default_rng(0)
        return {fact_id: bool(rng.random() < 0.5) for fact_id in range(400)}

    def test_shapes(self, truth):
        feature_set = generate_features(
            truth, FeatureSpec(num_features=5), rng=0
        )
        assert feature_set.features.shape == (400, 5)
        assert feature_set.labels.shape == (400,)
        assert len(feature_set.fact_ids) == 400

    def test_labels_match_truth(self, truth):
        feature_set = generate_features(truth, rng=0)
        for position, fact_id in enumerate(feature_set.fact_ids):
            assert feature_set.labels[position] == int(truth[fact_id])

    def test_classes_are_separated(self, truth):
        spec = FeatureSpec(num_features=4, separation=4.0, noise_scale=1.0)
        feature_set = generate_features(truth, spec, rng=1)
        positive = feature_set.features[feature_set.labels == 1]
        negative = feature_set.features[feature_set.labels == 0]
        gap = np.linalg.norm(positive.mean(axis=0) - negative.mean(axis=0))
        assert gap == pytest.approx(4.0, abs=0.5)

    def test_zero_separation_inseparable(self, truth):
        spec = FeatureSpec(num_features=4, separation=0.0)
        feature_set = generate_features(truth, spec, rng=2)
        positive = feature_set.features[feature_set.labels == 1]
        negative = feature_set.features[feature_set.labels == 0]
        gap = np.linalg.norm(positive.mean(axis=0) - negative.mean(axis=0))
        assert gap < 0.5

    def test_deterministic(self, truth):
        a = generate_features(truth, rng=3)
        b = generate_features(truth, rng=3)
        assert np.array_equal(a.features, b.features)


class TestFeatureSetSplit:
    def test_partition(self):
        truth = {fact_id: True for fact_id in range(100)}
        feature_set = generate_features(truth, rng=0)
        train, test = feature_set.split(0.7, np.random.default_rng(1))
        assert len(train.fact_ids) == 70
        assert len(test.fact_ids) == 30
        assert not (set(train.fact_ids) & set(test.fact_ids))

    def test_extreme_fraction_keeps_both_sides(self):
        truth = {fact_id: True for fact_id in range(10)}
        feature_set = generate_features(truth, rng=0)
        train, test = feature_set.split(0.99, np.random.default_rng(0))
        assert len(train.fact_ids) >= 1
        assert len(test.fact_ids) >= 1

    def test_invalid_fraction(self):
        truth = {0: True, 1: False}
        feature_set = generate_features(truth, rng=0)
        with pytest.raises(ValueError):
            feature_set.split(1.0, np.random.default_rng(0))

    def test_mismatched_construction_rejected(self):
        with pytest.raises(ValueError):
            FeatureSet(
                fact_ids=(0, 1),
                features=np.zeros((3, 2)),
                labels=np.zeros(2),
            )
