"""Unit tests for the downstream evaluation harness."""

import numpy as np
import pytest

from repro.downstream import (
    FeatureSpec,
    GaussianNaiveBayes,
    compare_labelings,
    generate_features,
    train_and_score,
)


@pytest.fixture
def truth():
    rng = np.random.default_rng(1)
    return {fact_id: bool(rng.random() < 0.5) for fact_id in range(300)}


@pytest.fixture
def feature_set(truth):
    return generate_features(
        truth, FeatureSpec(num_features=4, separation=3.0), rng=0
    )


class TestTrainAndScore:
    def test_clean_labels_zero_damage(self, truth, feature_set):
        result = train_and_score(feature_set, truth, label="clean", rng=0)
        assert result.damage == pytest.approx(0.0)
        assert result.train_label_accuracy == 1.0

    def test_noisy_labels_hurt(self, truth, feature_set):
        rng = np.random.default_rng(2)
        noisy = {
            fact_id: (not value if rng.random() < 0.4 else value)
            for fact_id, value in truth.items()
        }
        result = train_and_score(feature_set, noisy, label="noisy", rng=0)
        assert result.train_label_accuracy < 0.75
        assert result.model_accuracy <= result.clean_label_accuracy

    def test_missing_labels_rejected(self, truth, feature_set):
        partial = dict(list(truth.items())[:10])
        with pytest.raises(ValueError, match="missing"):
            train_and_score(feature_set, partial, rng=0)

    def test_soft_weights_accepted(self, truth, feature_set):
        weights = {fact_id: 0.9 for fact_id in truth}
        result = train_and_score(
            feature_set, truth, soft_weights=weights, rng=0
        )
        assert 0.0 <= result.model_accuracy <= 1.0

    def test_custom_model_factory(self, truth, feature_set):
        result = train_and_score(
            feature_set, truth, model_factory=GaussianNaiveBayes, rng=0
        )
        assert result.model_accuracy > 0.8

    def test_invalid_fraction(self, truth, feature_set):
        with pytest.raises(ValueError):
            train_and_score(feature_set, truth, train_fraction=0.0)


class TestCompareLabelings:
    def test_shared_world_same_ceiling(self, truth):
        results = compare_labelings(
            truth,
            {"a": truth, "b": truth},
            seed=3,
        )
        assert results[0].clean_label_accuracy == pytest.approx(
            results[1].clean_label_accuracy
        )
        assert results[0].model_accuracy == pytest.approx(
            results[1].model_accuracy
        )

    def test_better_labels_no_worse_model(self, truth):
        rng = np.random.default_rng(4)
        slightly_noisy = {
            fact_id: (not value if rng.random() < 0.05 else value)
            for fact_id, value in truth.items()
        }
        very_noisy = {
            fact_id: (not value if rng.random() < 0.45 else value)
            for fact_id, value in truth.items()
        }
        results = {
            result.label: result
            for result in compare_labelings(
                truth,
                {"good": slightly_noisy, "bad": very_noisy},
                spec=FeatureSpec(num_features=4, separation=3.0),
                seed=5,
            )
        }
        assert (
            results["good"].model_accuracy
            >= results["bad"].model_accuracy
        )


class TestDownstreamComparisonRunner:
    def test_end_to_end_small(self):
        from repro.experiments import (
            format_downstream,
            run_downstream_comparison,
        )

        comparison = run_downstream_comparison(
            num_groups=12,
            budget=60,
            methods=("MV",),
            num_feature_seeds=2,
            seed=1,
        )
        assert set(comparison.labels) == {"HC", "MV"}
        assert (
            comparison.train_label_accuracy["HC"]
            >= comparison.train_label_accuracy["MV"]
        )
        text = format_downstream(comparison)
        assert "HC" in text and "MV" in text and "ceiling" in text

    def test_to_dict_serializable(self):
        import json

        from repro.experiments import run_downstream_comparison

        comparison = run_downstream_comparison(
            num_groups=8, budget=30, methods=("MV",),
            num_feature_seeds=1, seed=2,
        )
        json.dumps(comparison.to_dict())

    def test_invalid_seeds(self):
        from repro.experiments import run_downstream_comparison

        with pytest.raises(ValueError):
            run_downstream_comparison(num_feature_seeds=0)
