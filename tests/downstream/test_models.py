"""Unit tests for the from-scratch downstream classifiers."""

import numpy as np
import pytest

from repro.downstream import GaussianNaiveBayes, LogisticRegression


def _separable_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    features = rng.normal(size=(n, 3)) + (labels * 2 - 1)[:, None] * 1.5
    return features, labels


@pytest.mark.parametrize(
    "model_factory", [LogisticRegression, GaussianNaiveBayes]
)
class TestBothModels:
    def test_learns_separable_data(self, model_factory):
        features, labels = _separable_data()
        model = model_factory().fit(features, labels)
        assert model.accuracy(features, labels) > 0.9

    def test_predict_proba_rows_sum_to_one(self, model_factory):
        features, labels = _separable_data()
        model = model_factory().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0)

    def test_predict_before_fit_raises(self, model_factory):
        with pytest.raises(RuntimeError):
            model_factory().predict(np.zeros((2, 3)))

    def test_input_validation(self, model_factory):
        model = model_factory()
        with pytest.raises(ValueError):
            model.fit(np.zeros(5), np.zeros(5))  # 1-D features
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 2)), np.zeros(4))  # length mismatch
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.array([0, 1, 2]))  # non-binary

    def test_sample_weight_validation(self, model_factory):
        features, labels = _separable_data(50)
        model = model_factory()
        with pytest.raises(ValueError):
            model.fit(features, labels, sample_weight=np.ones(3))
        with pytest.raises(ValueError):
            model.fit(features, labels, sample_weight=-np.ones(50))
        with pytest.raises(ValueError):
            model.fit(features, labels, sample_weight=np.zeros(50))

    def test_zero_weight_examples_ignored(self, model_factory):
        """Examples with weight 0 must not influence the model: flip
        their labels and verify predictions are unchanged."""
        features, labels = _separable_data(200, seed=1)
        weights = np.ones(200)
        weights[:50] = 0.0
        corrupted = labels.copy()
        corrupted[:50] = 1 - corrupted[:50]
        clean_model = model_factory().fit(
            features[50:], labels[50:]
        )
        weighted_model = model_factory().fit(
            features, corrupted, sample_weight=weights
        )
        assert np.array_equal(
            clean_model.predict(features), weighted_model.predict(features)
        )

    def test_asymmetric_label_noise_hurts(self, model_factory):
        """Flipping half of one class's training labels (asymmetric
        noise, which biases the decision boundary) must cost test
        accuracy — the premise of the downstream experiments.
        Symmetric noise is largely absorbed by consistent estimators,
        which the experiment module documents."""
        features, labels = _separable_data(600, seed=2)
        train_x, test_x = features[:400], features[400:]
        train_y, test_y = labels[:400], labels[400:]
        rng = np.random.default_rng(3)
        noisy = train_y.copy()
        flip = (train_y == 1) & (rng.random(400) < 0.5)
        noisy[flip] = 0
        clean_accuracy = (
            model_factory().fit(train_x, train_y).accuracy(test_x, test_y)
        )
        noisy_accuracy = (
            model_factory().fit(train_x, noisy).accuracy(test_x, test_y)
        )
        assert clean_accuracy > noisy_accuracy


class TestLogisticRegressionSpecifics:
    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(ValueError):
            LogisticRegression(num_iterations=0)
        with pytest.raises(ValueError):
            LogisticRegression(l2=-1.0)

    def test_coefficients_align_with_separating_direction(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 2, 500)
        # Only feature 0 is informative.
        features = rng.normal(size=(500, 4))
        features[:, 0] += (labels * 2 - 1) * 2.0
        model = LogisticRegression().fit(features, labels)
        coefficients = np.abs(model.coefficients_)
        assert coefficients[0] > coefficients[1:].max()


class TestGaussianNaiveBayesSpecifics:
    def test_var_smoothing_validation(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=0.0)

    def test_single_class_training_survives(self):
        features = np.random.default_rng(0).normal(size=(20, 2))
        labels = np.ones(20, dtype=int)
        model = GaussianNaiveBayes().fit(features, labels)
        assert np.all(model.predict(features) == 1)

    def test_recovers_class_means(self):
        features, labels = _separable_data(2000, seed=5)
        model = GaussianNaiveBayes().fit(features, labels)
        assert model.means_[1].mean() > model.means_[0].mean()
