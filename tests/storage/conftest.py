"""Shared guards for the storage suites.

Every test here manipulates the process-wide chaos installation, so
each one starts and ends with a pristine (uninstalled) state — a
leaked installation would silently inject faults into every other
suite in the run.
"""

from __future__ import annotations

import pytest

from repro.storage import uninstall_storage_chaos


@pytest.fixture(autouse=True)
def _pristine_chaos(monkeypatch):
    # The CI storage-chaos matrix leg sets REPRO_STORAGE_CHAOS for the
    # byte-identity suites; these tests install their own plans, so the
    # ambient one must not double-inject underneath them.
    monkeypatch.delenv("REPRO_STORAGE_CHAOS", raising=False)
    monkeypatch.delenv("REPRO_STORAGE_CHAOS_SEED", raising=False)
    uninstall_storage_chaos()
    yield
    uninstall_storage_chaos()
