"""The storage-fault injector and the durable write paths under it.

Two halves: the plan itself (seeded determinism, validation, env
plumbing, install precedence) and its integration with
:func:`~repro.core.serialization.append_journal_record` — transient
faults retry to a byte-identical journal, hard faults fail stop with
the file rolled back, bit-flips pass silently and are caught later by
the v8 framing.
"""

from __future__ import annotations

import pytest

from repro.core.serialization import (
    SerializationError,
    StorageFailure,
    append_journal_record,
    read_journal,
)
from repro.storage import (
    STORAGE_CHAOS_ACTIONS,
    StorageChaos,
    active_storage_chaos,
    chaos_path_key,
    install_storage_chaos,
    storage_chaos,
    uninstall_storage_chaos,
)

pytestmark = pytest.mark.chaos


def _records():
    yield {"kind": "header", "version": 8}
    for index in range(6):
        yield {"kind": "round", "index": index, "payload": "x" * 40}


def _write_all(path):
    for record in _records():
        append_journal_record(path, record)


class TestPlan:
    def test_path_key_is_the_last_two_components(self):
        assert chaos_path_key("/a/b/tenant/run.jsonl") == "tenant/run.jsonl"
        assert chaos_path_key("run.jsonl") == "run.jsonl"

    def test_rates_are_validated(self):
        with pytest.raises(ValueError, match="rate"):
            StorageChaos(bitflip=-0.1)
        with pytest.raises(ValueError, match="exceed 1"):
            StorageChaos(short_write=0.6, fsync_error=0.6)
        with pytest.raises(ValueError, match="unknown storage chaos"):
            StorageChaos(schedule={("j.jsonl", 0): "meteor_strike"})

    def test_zero_rates_mean_disabled(self):
        plan = StorageChaos()
        assert not plan.enabled
        assert install_storage_chaos(plan) is None
        assert active_storage_chaos() is None

    def test_draws_are_deterministic_and_interleave_independent(self):
        plan = StorageChaos(short_write=0.2, bitflip=0.2, seed=11)
        twin = StorageChaos(short_write=0.2, bitflip=0.2, seed=11)
        actions = [plan.action_for("t/a.jsonl", i) for i in range(50)]
        # same plan, rebuilt: same stream — and drawing b's stream in
        # between must not disturb a's
        interleaved = []
        for i in range(50):
            twin.action_for("t/b.jsonl", i)
            interleaved.append(twin.action_for("t/a.jsonl", i))
        assert interleaved == actions
        assert any(action is not None for action in actions)

    def test_different_seeds_differ(self):
        plan_a = StorageChaos(bitflip=0.3, seed=1)
        plan_b = StorageChaos(bitflip=0.3, seed=2)
        draws_a = [plan_a.action_for("t/a.jsonl", i) for i in range(80)]
        draws_b = [plan_b.action_for("t/a.jsonl", i) for i in range(80)]
        assert draws_a != draws_b

    def test_flip_bit_changes_exactly_one_bit_in_the_interior(self):
        plan = StorageChaos(bitflip=1.0, seed=3)
        data = b'{"kind":"round","index":1}\n'
        flipped = plan.flip_bit(data, "t/a.jsonl", 0)
        assert flipped != data
        assert len(flipped) == len(data)
        assert flipped.endswith(b"\n")
        diff = [
            i for i, (a, b) in enumerate(zip(data, flipped)) if a != b
        ]
        assert len(diff) == 1
        assert bin(data[diff[0]] ^ flipped[diff[0]]).count("1") == 1

    def test_parse_and_from_env(self, monkeypatch):
        plan = StorageChaos.parse("short_write=0.05,bitflip=0.01", seed=9)
        assert plan.short_write == 0.05
        assert plan.bitflip == 0.01
        assert plan.seed == 9
        assert StorageChaos.from_env({}) is None
        env = {
            "REPRO_STORAGE_CHAOS": "fsync_error=0.1",
            "REPRO_STORAGE_CHAOS_SEED": "4",
        }
        from_env = StorageChaos.from_env(env)
        assert from_env is not None
        assert from_env.fsync_error == 0.1
        assert from_env.seed == 4

    def test_install_beats_env_and_none_force_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORAGE_CHAOS", "bitflip=1.0")
        assert active_storage_chaos() is not None
        with storage_chaos(StorageChaos(fsync_error=1.0, seed=1)) as state:
            assert active_storage_chaos() is state
            assert state.plan.fsync_error == 1.0
        with storage_chaos(None):
            assert active_storage_chaos() is None
        # context restored: the env plan applies again
        assert active_storage_chaos() is not None
        uninstall_storage_chaos()


class TestWritePathIntegration:
    def test_zero_rates_perturb_nothing(self, tmp_path):
        clean = tmp_path / "clean" / "run.jsonl"
        with storage_chaos(None):
            _write_all(clean)
        under_plan = tmp_path / "plan" / "run.jsonl"
        with storage_chaos(StorageChaos(seed=123)):
            _write_all(under_plan)
        assert under_plan.read_bytes() == clean.read_bytes()

    def test_transient_faults_retry_to_byte_identical(self, tmp_path):
        clean = tmp_path / "clean" / "run.jsonl"
        with storage_chaos(None):
            _write_all(clean)
        path = tmp_path / "chaotic" / "run.jsonl"
        key = chaos_path_key(path)
        plan = StorageChaos(
            schedule={
                (key, 1): "short_write",
                (key, 2): "fsync_error",
                (key, 5): "short_write",
            }
        )
        with storage_chaos(plan) as state:
            _write_all(path)
        assert path.read_bytes() == clean.read_bytes()
        assert read_journal(path) == list(_records())
        assert state.stats()["injected"] == {
            "short_write": 2,
            "fsync_error": 1,
        }
        # retries consumed extra write indices
        assert state.stats()["writes"] > len(list(_records()))

    def test_enospc_fails_stop_with_the_file_rolled_back(self, tmp_path):
        path = tmp_path / "t" / "run.jsonl"
        key = chaos_path_key(path)
        plan = StorageChaos(schedule={(key, 2): "enospc"})
        with storage_chaos(plan):
            append_journal_record(path, {"kind": "header", "version": 8})
            append_journal_record(path, {"kind": "round", "index": 0})
            before = path.read_bytes()
            with pytest.raises(StorageFailure, match="non-transient"):
                append_journal_record(path, {"kind": "round", "index": 1})
        # nothing torn: the journal still ends exactly where it did
        assert path.read_bytes() == before
        records = read_journal(path)
        assert [r["kind"] for r in records] == ["header", "round"]

    def test_exhausted_retries_fail_stop(self, tmp_path):
        path = tmp_path / "t" / "run.jsonl"
        key = chaos_path_key(path)
        # every attempt of the second append hits a transient fault
        plan = StorageChaos(
            schedule={(key, i): "short_write" for i in range(1, 10)}
        )
        with storage_chaos(plan):
            append_journal_record(path, {"kind": "header", "version": 8})
            before = path.read_bytes()
            with pytest.raises(StorageFailure, match="still failing"):
                append_journal_record(path, {"kind": "round", "index": 0})
        assert path.read_bytes() == before

    def test_bitflip_is_silent_then_caught_by_the_framing(self, tmp_path):
        path = tmp_path / "t" / "run.jsonl"
        key = chaos_path_key(path)
        plan = StorageChaos(schedule={(key, 2): "bitflip"})
        with storage_chaos(plan):
            _write_all(path)  # no exception: the corruption is silent
        with pytest.raises(SerializationError, match="corrupt journal"):
            read_journal(path)
        from repro.storage import recover_journal

        report = recover_journal(path)
        assert not report.clean
        assert report.sidecar is not None and report.sidecar.exists()
        survivors = read_journal(path)
        # write index 2 is the third line: header + first round survive
        assert survivors == list(_records())[:2]

    def test_every_action_name_is_exercised_by_the_write_path(self):
        # keep STORAGE_CHAOS_ACTIONS and _durable_append in sync: a new
        # action must be handled (this guards the tuple's spelling)
        assert STORAGE_CHAOS_ACTIONS == (
            "short_write",
            "fsync_error",
            "enospc",
            "rename_error",
            "bitflip",
        )
