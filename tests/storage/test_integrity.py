"""Deterministic journal damage detection and salvage.

Each test plants one specific damage class in a framed (v8) or legacy
(v7) journal and checks the :func:`~repro.storage.integrity.verify_journal`
verdict and the :func:`~repro.storage.integrity.recover_journal`
salvage against the contract: framed journals are truncated to the
longest verified prefix with the original bytes preserved in a
``.damaged`` sidecar (torn tails excepted), legacy journals are
trim-tail-only.  The two header cases at the bottom are regressions
found by the soak harness: a single bit-flip in the header's own
``_seq`` or ``version`` key must read as corruption, never demote the
journal to unverifiable legacy.
"""

from __future__ import annotations

import os
import stat

import pytest

from repro.core.serialization import (
    SerializationError,
    append_journal_record,
    read_journal,
    repair_journal,
)
from repro.storage import recover_journal, verify_journal


def _build(path, *, version=8, rounds=5):
    records = [{"kind": "header", "version": version}]
    records += [
        {"kind": "round", "index": i, "payload": {"value": i * 3}}
        for i in range(rounds - 1)
    ]
    records.append({"kind": "checkpoint", "index": rounds - 1})
    for record in records:
        append_journal_record(path, record)
    return records


def _journal(tmp_path, **kwargs):
    path = tmp_path / "tenant" / "run.jsonl"
    records = _build(path, **kwargs)
    return path, records, path.read_bytes()


class TestVerify:
    def test_clean_journal_reports_clean(self, tmp_path):
        path, records, _ = _journal(tmp_path)
        report = verify_journal(path)
        assert report.clean and report.tail_only
        assert report.framed and report.version == 8
        assert report.verified_records == len(records)
        assert report.records == records
        assert report.prefix_bytes == path.stat().st_size

    def test_empty_file_is_clean_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_bytes(b"")
        report = verify_journal(path)
        assert report.clean
        assert report.verified_records == 0

    def test_unsupported_version_is_bad_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        report = verify_journal(path)
        assert [d.kind for d in report.damage] == ["bad_header"]
        assert report.verified_records == 0


class TestFramedSalvage:
    def test_torn_tail_trimmed_without_sidecar(self, tmp_path):
        path, records, raw = _journal(tmp_path)
        path.write_bytes(raw[:-7])  # cut mid final line
        report = recover_journal(path)
        assert report.tail_only and not report.clean
        assert report.sidecar is None
        assert report.salvaged_bytes > 0
        assert path.read_bytes() == raw[: report.prefix_bytes]
        assert read_journal(path) == records[:-1]

    def test_interior_flip_truncates_and_keeps_evidence(self, tmp_path):
        path, records, raw = _journal(tmp_path)
        lines = raw.splitlines(keepends=True)
        lines[2] = lines[2].replace(b'"value":3', b'"value":7')
        damaged = b"".join(lines)
        path.write_bytes(damaged)
        with pytest.raises(SerializationError):
            read_journal(path)
        report = recover_journal(path)
        assert [d.kind for d in report.damage] == [
            "crc_mismatch",
            "unverified_suffix",
        ]
        assert report.damage[0].line == 3
        # salvaged: exactly the bytes before the damaged line
        assert path.read_bytes() == b"".join(lines[:2])
        assert read_journal(path) == records[:2]
        # evidence: the sidecar holds the damaged file verbatim
        assert report.sidecar is not None
        assert report.sidecar.read_bytes() == damaged
        # idempotent: a second pass is clean and leaves both alone
        again = recover_journal(path)
        assert again.clean and again.sidecar is None
        assert report.sidecar.read_bytes() == damaged

    def test_dropped_line_is_a_sequence_gap(self, tmp_path):
        path, records, raw = _journal(tmp_path)
        lines = raw.splitlines(keepends=True)
        del lines[2]
        path.write_bytes(b"".join(lines))
        report = recover_journal(path)
        assert report.damage[0].kind == "seq_gap"
        assert read_journal(path) == records[:2]

    def test_duplicated_line_is_a_sequence_duplicate(self, tmp_path):
        path, records, raw = _journal(tmp_path)
        lines = raw.splitlines(keepends=True)
        lines.insert(3, lines[2])
        path.write_bytes(b"".join(lines))
        report = recover_journal(path)
        assert report.damage[0].kind == "seq_duplicate"
        assert read_journal(path) == records[:3]

    def test_resume_grade_prefix_is_byte_prefix_of_original(self, tmp_path):
        # the salvage contract the whole recovery stack rests on: what
        # recover_journal leaves behind is bytes the writer produced
        path, _, raw = _journal(tmp_path)
        flipped = bytearray(raw)
        flipped[len(raw) // 2] ^= 0x10
        path.write_bytes(bytes(flipped))
        recover_journal(path)
        assert raw.startswith(path.read_bytes())


class TestLegacyJournals:
    def test_interior_damage_reported_but_never_cut(self, tmp_path):
        path, _, _ = _journal(tmp_path, version=7)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        lines[2] = b'{"kind": broken\n'
        damaged = b"".join(lines)
        path.write_bytes(damaged)
        report = recover_journal(path)
        assert not report.clean and not report.framed
        assert report.damage[0].kind == "parse_error"
        # refusal: unframed interior lines have nothing vouching for
        # them, so the file is left exactly as found — no sidecar
        assert path.read_bytes() == damaged
        assert report.sidecar is None
        assert report.salvaged_bytes == 0

    def test_torn_tail_still_trimmed(self, tmp_path):
        path, records, raw = _journal(tmp_path, version=7)
        path.write_bytes(raw[:-5])
        report = recover_journal(path)
        assert report.tail_only
        assert report.salvaged_bytes > 0
        assert path.read_bytes() == raw[: report.prefix_bytes]
        assert read_journal(path) == records[:-1]


class TestHeaderFlipRegressions:
    """A flipped bit in the header's self-description must not defeat
    the framing — both cases were caught live by ``repro soak``."""

    def test_flip_in_the_seq_key_reads_as_damage(self, tmp_path):
        path, _, raw = _journal(tmp_path)
        path.write_bytes(raw.replace(b'"_seq":0', b'"_suq":0', 1))
        report = verify_journal(path)
        assert report.framed, "frame fields present: still a v8 journal"
        assert not report.clean
        assert report.damage[0].line == 1
        assert report.verified_records == 0

    def test_flip_in_the_version_key_reads_as_damage(self, tmp_path):
        path, _, raw = _journal(tmp_path)
        path.write_bytes(raw.replace(b'"version":8', b'"versiol":8', 1))
        report = verify_journal(path)
        assert report.framed, "frame fields present: still a v8 journal"
        assert not report.clean
        assert report.damage[0].line == 1
        assert report.verified_records == 0


class TestDurability:
    def test_repair_journal_fsyncs_the_directory(self, tmp_path, monkeypatch):
        # regression: the truncation used to reach the file but not its
        # directory entry, so a crash right after repair could resurrect
        # the torn bytes
        path, _, raw = _journal(tmp_path)
        path.write_bytes(raw[:-5])
        synced_dirs = []
        real_fsync = os.fsync

        def spy(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                synced_dirs.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        assert repair_journal(path)
        assert synced_dirs, "repair must fsync the parent directory"

    def test_recover_journal_fsyncs_the_directory(self, tmp_path, monkeypatch):
        path, _, raw = _journal(tmp_path)
        flipped = bytearray(raw)
        flipped[len(raw) // 2] ^= 0x04
        path.write_bytes(bytes(flipped))
        synced_dirs = []
        real_fsync = os.fsync

        def spy(fd):
            if stat.S_ISDIR(os.fstat(fd).st_mode):
                synced_dirs.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(os, "fsync", spy)
        report = recover_journal(path)
        assert report.salvaged_bytes > 0
        assert synced_dirs, "salvage must fsync the parent directory"
