"""Seeded fuzzing of journal damage detection and salvage.

The deeper counterpart of ``tests/core/test_journal_fuzz.py``: instead
of crash truncation, these properties plant *storage*-grade damage —
single bit-flips at arbitrary byte positions, re-framed sequence
numbers with valid CRCs, redelivered (duplicated) line suffixes — and
hold :func:`~repro.storage.integrity.recover_journal` to its contract:

* whatever survives salvage is a byte-prefix of what the writer
  produced, and reads back as a record-prefix of the original log;
* anything beyond a plain torn tail leaves the damaged original in a
  ``.damaged`` sidecar before the file is cut;
* a second recovery pass is clean and changes nothing;
* legacy (v7, unframed) journals are never cut at interior damage —
  trim-tail-only, evidence left in place.

Derandomized, so CI failures replay exactly.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialization import (
    SerializationError,
    append_journal_record,
    frame_journal_line,
    read_journal,
)
from repro.storage import recover_journal, verify_journal

pytestmark = pytest.mark.chaos

BODY_KINDS = ("metadata", "round", "checkpoint", "incident", "final")

FUZZ = settings(
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

journal_kinds = st.lists(st.sampled_from(BODY_KINDS), min_size=2, max_size=10)


def _write_journal(path: Path, kinds, version: int = 8):
    records = [{"kind": "header", "version": version}]
    records += [
        {"kind": kind, "index": index, "payload": {"value": index * 3}}
        for index, kind in enumerate(kinds)
    ]
    for record in records:
        append_journal_record(path, record)
    return records


def _check_salvage(path: Path, raw: bytes, records):
    """The salvage contract, shared by every framed property."""
    report = recover_journal(path)
    assert not report.clean
    salvaged = path.read_bytes()
    assert raw.startswith(salvaged), "salvage must keep writer bytes only"
    if report.verified_records:
        assert read_journal(path) == records[: report.verified_records]
    if not report.tail_only:
        assert report.sidecar is not None and report.sidecar.exists()
    # idempotent: the second pass sees a clean journal
    again = recover_journal(path)
    assert again.clean
    assert path.read_bytes() == salvaged
    return report


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_any_single_bit_flip_is_detected_and_salvaged(kinds, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t" / "fuzz.jsonl"
        records = _write_journal(path, kinds)
        raw = path.read_bytes()
        position = data.draw(
            st.integers(0, len(raw) - 1), label="position"
        )
        bit = data.draw(st.integers(0, 7), label="bit")
        flipped = bytearray(raw)
        flipped[position] ^= 1 << bit
        path.write_bytes(bytes(flipped))
        report = _check_salvage(path, raw, records)
        # the verified prefix never includes the flipped byte
        assert report.prefix_bytes <= position + 1


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_reframed_sequence_numbers_read_as_gap_or_duplicate(kinds, data):
    # valid JSON, valid CRC — only the sequence number lies: the
    # signature of a dropped or replayed line rather than a bit-flip
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t" / "fuzz.jsonl"
        records = _write_journal(path, kinds)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        victim = data.draw(
            st.integers(1, len(lines) - 1), label="victim"
        )
        delta = data.draw(
            st.integers(-victim, 5).filter(lambda d: d != 0),
            label="delta",
        )
        lines[victim] = (
            frame_journal_line(records[victim], victim + delta) + "\n"
        ).encode("utf-8")
        path.write_bytes(b"".join(lines))
        with pytest.raises(SerializationError):
            read_journal(path)
        report = _check_salvage(path, raw, records)
        expected = "seq_gap" if delta > 0 else "seq_duplicate"
        assert report.damage[0].kind == expected
        assert report.damage[0].line == victim + 1
        assert report.verified_records == victim


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_redelivered_suffix_is_trimmed_back_to_the_original(kinds, data):
    # a resumed writer replaying lines it already wrote: every byte is
    # individually valid, but the sequence numbers repeat
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t" / "fuzz.jsonl"
        records = _write_journal(path, kinds)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        start = data.draw(
            st.integers(1, len(lines) - 1), label="start"
        )
        path.write_bytes(raw + b"".join(lines[start:]))
        report = _check_salvage(path, raw, records)
        assert report.damage[0].kind == "seq_duplicate"
        # nothing the writer meant to keep was lost
        assert path.read_bytes() == raw
        assert read_journal(path) == records


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_legacy_journals_are_never_cut_at_interior_damage(kinds, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "t" / "fuzz.jsonl"
        _write_journal(path, kinds, version=7)
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        victim = data.draw(
            st.integers(0, len(lines) - 2), label="victim"
        )
        lines[victim] = b'{"kind": torn-open\n'
        damaged = b"".join(lines)
        path.write_bytes(damaged)
        report = recover_journal(path)
        assert not report.clean and not report.framed
        # reported, not cut: unframed lines carry no integrity frame,
        # so truncating at an interior line could discard good records
        assert path.read_bytes() == damaged
        assert report.sidecar is None
        assert report.salvaged_bytes == 0
