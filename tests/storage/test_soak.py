"""The soak harness itself (smoke scale).

The full acceptance runs (`repro soak`, minutes of wall clock, five or
more SIGKILL cycles) live in CI's dedicated job; here the harness is
held to its structural contract at the smallest useful scale:

* a zero-rate chaos spec perturbs nothing — no damage, no salvage, no
  failed cycles, byte-identity trivially intact;
* a short chaotic run produces a well-formed result payload and writes
  the ``soak_result.json`` artifact;
* parameter validation fails fast, before any process is forked.
"""

from __future__ import annotations

import json

import pytest

from repro.storage.soak import run_soak

pytestmark = pytest.mark.chaos


def test_zero_rate_chaos_perturbs_nothing(tmp_path):
    result = run_soak(
        minutes=0.01,
        kill_every=30.0,  # never fires within the run
        seed=11,
        tenants=1,
        chaos_spec="",
        out_dir=tmp_path / "artifacts",
    )
    assert result["byte_identical"] is True
    assert result["waves"] >= 1
    assert result["kills"] == 0
    assert result["failed_cycles"] == 0
    assert result["damage"] == {}
    assert result["bytes_salvaged"] == 0
    assert result["records_verified"] > 0


def test_chaotic_run_reports_and_persists_metrics(tmp_path):
    out = tmp_path / "artifacts"
    result = run_soak(
        minutes=0.01,
        kill_every=30.0,
        seed=3,
        tenants=1,
        out_dir=out,
    )
    assert result["byte_identical"] is True
    for key in (
        "waves",
        "kills",
        "recoveries",
        "failed_cycles",
        "campaigns_completed",
        "records_verified",
        "bytes_salvaged",
        "recoveries_per_min",
        "mttr_s",
        "damage",
        "injected",
    ):
        assert key in result, key
    # chaos actually ran: the injector reports its work even when every
    # fault was healed (transient retries leave no damage behind)
    assert sum(result["injected"].values()) > 0
    persisted = json.loads((out / "soak_result.json").read_text())
    assert persisted["waves"] == result["waves"]


def test_parameters_validate_before_forking(tmp_path):
    with pytest.raises(ValueError, match="minutes"):
        run_soak(minutes=0.0, out_dir=tmp_path)
    with pytest.raises(ValueError, match="kill_every"):
        run_soak(minutes=1.0, kill_every=0.0, out_dir=tmp_path)
    with pytest.raises(ValueError, match="tenants"):
        run_soak(minutes=1.0, tenants=0, out_dir=tmp_path)
    with pytest.raises(ValueError, match="unknown"):
        run_soak(
            minutes=1.0, chaos_spec="meteor=0.5", out_dir=tmp_path
        )
