"""Unit tests for the one-call HC session pipeline."""

import pytest

from repro.core import MaxMarginalEntropySelector, RandomSelector
from repro.simulation import (
    SessionConfig,
    SimulatedExpertPanel,
    run_hc_session,
)


class TestSessionConfig:
    def test_paper_defaults(self):
        config = SessionConfig()
        assert config.theta == 0.9
        assert config.k == 1
        assert config.initializer == "EBCC"


class TestRunHcSession:
    def test_end_to_end(self, small_dataset):
        config = SessionConfig(budget=30, seed=0)
        result = run_hc_session(small_dataset, config)
        assert result.history[0].budget_spent == 0
        assert result.history[-1].budget_spent <= 30
        assert result.history[-1].accuracy is not None

    def test_quality_improves(self, small_dataset):
        config = SessionConfig(budget=60, seed=1)
        result = run_hc_session(small_dataset, config)
        assert result.history[-1].quality > result.history[0].quality

    def test_custom_selector(self, small_dataset):
        config = SessionConfig(budget=24, seed=0)
        result = run_hc_session(
            small_dataset, config, selector=RandomSelector(rng=0)
        )
        assert len(result.history) > 1

    def test_custom_aggregator(self, small_dataset):
        from repro.aggregation import MajorityVote

        config = SessionConfig(budget=12, seed=0)
        result = run_hc_session(
            small_dataset, config, aggregator=MajorityVote(smoothing=1.0)
        )
        assert result.history[0].accuracy is not None

    def test_custom_answer_source(self, small_dataset):
        source = SimulatedExpertPanel(small_dataset.ground_truth, rng=9)
        config = SessionConfig(budget=12, seed=0)
        run_hc_session(small_dataset, config, answer_source=source)
        assert source.answers_served > 0

    def test_impossible_theta_rejected(self, small_dataset):
        config = SessionConfig(theta=0.999, budget=10)
        with pytest.raises(ValueError, match="no worker reaches"):
            run_hc_session(small_dataset, config)

    def test_seed_reproducibility(self, small_dataset):
        config = SessionConfig(budget=30, seed=7)
        a = run_hc_session(small_dataset, config)
        b = run_hc_session(small_dataset, config)
        assert [r.quality for r in a.history] == [
            r.quality for r in b.history
        ]
        assert a.final_labels == b.final_labels

    def test_k_greater_than_one(self, small_dataset):
        config = SessionConfig(budget=36, k=3, seed=0)
        result = run_hc_session(
            small_dataset, config, selector=MaxMarginalEntropySelector()
        )
        assert any(
            len(record.query_fact_ids) == 3
            for record in result.history[1:]
        )
