"""Unit tests for the adaptive stopping rule (related work [38])."""

import numpy as np
import pytest

from repro.core import Crowd
from repro.simulation import StoppingRule, collect_adaptive_annotations


class TestStoppingRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            StoppingRule(threshold_scale=-1.0)
        with pytest.raises(ValueError):
            StoppingRule(min_answers=0)
        with pytest.raises(ValueError):
            StoppingRule(min_answers=5, max_answers=3)

    def test_min_answers_enforced(self):
        rule = StoppingRule(min_answers=3, threshold_scale=0.0)
        assert not rule.should_stop(2, 0)
        assert rule.should_stop(3, 0)

    def test_max_answers_forces_stop(self):
        rule = StoppingRule(threshold_scale=100.0, max_answers=6)
        assert rule.should_stop(3, 3)

    def test_decisive_gap_stops_early(self):
        """Eq. 36: gap > C*sqrt(t) - eps*t."""
        rule = StoppingRule(threshold_scale=2.0, drift=0.3)
        # t=4, gap=4: 4 > 2*2 - 1.2 = 2.8 -> stop.
        assert rule.should_stop(4, 0)
        # t=4, gap=0: 0 > 2.8 is false -> continue.
        assert not rule.should_stop(2, 2)

    def test_drift_guarantees_termination(self):
        """Even a perfectly contested stream stops once eps*t dominates."""
        rule = StoppingRule(threshold_scale=2.0, drift=0.5,
                            max_answers=100)
        t = 2
        while not rule.should_stop(t // 2, t - t // 2):
            t += 2
            assert t <= 100
        assert t < 100  # stopped via the rule, not the hard cap


class TestCollectAdaptiveAnnotations:
    @pytest.fixture
    def crowd(self):
        return Crowd.from_accuracies([0.85] * 20)

    def test_respects_bounds(self, crowd):
        truth = {fact_id: bool(fact_id % 2) for fact_id in range(30)}
        rule = StoppingRule(min_answers=2, max_answers=9)
        matrix = collect_adaptive_annotations(truth, crowd, rule, rng=0)
        counts = matrix.answers_per_task()
        assert np.all(counts >= 2)
        assert np.all(counts <= 9)

    def test_accurate_crowd_stops_early(self):
        """With near-oracle workers, unanimous early votes end
        collection well below the cap on average."""
        crowd = Crowd.from_accuracies([0.98] * 20)
        truth = {fact_id: True for fact_id in range(40)}
        rule = StoppingRule(min_answers=2, max_answers=15)
        matrix = collect_adaptive_annotations(truth, crowd, rule, rng=1)
        assert matrix.answers_per_task().mean() < 6

    def test_noisy_crowd_needs_more_answers(self):
        accurate = Crowd.from_accuracies([0.95] * 20)
        noisy = Crowd.from_accuracies([0.55] * 20)
        truth = {fact_id: True for fact_id in range(40)}
        rule = StoppingRule(min_answers=2, max_answers=15)
        matrix_accurate = collect_adaptive_annotations(
            truth, accurate, rule, rng=2
        )
        matrix_noisy = collect_adaptive_annotations(
            truth, noisy, rule, rng=2
        )
        assert (
            matrix_noisy.answers_per_task().mean()
            > matrix_accurate.answers_per_task().mean()
        )

    def test_max_answers_beyond_crowd_rejected(self, crowd):
        rule = StoppingRule(max_answers=50)
        with pytest.raises(ValueError, match="crowd size"):
            collect_adaptive_annotations({0: True}, crowd, rule)

    def test_deterministic_with_seed(self, crowd):
        truth = {fact_id: bool(fact_id % 3) for fact_id in range(10)}
        a = collect_adaptive_annotations(truth, crowd, rng=4)
        b = collect_adaptive_annotations(truth, crowd, rng=4)
        assert a.annotations == b.annotations

    def test_aggregatable_output(self, crowd):
        """The adaptive matrix feeds straight into any aggregator."""
        from repro.aggregation import make_aggregator

        truth = {fact_id: bool(fact_id % 2) for fact_id in range(60)}
        matrix = collect_adaptive_annotations(truth, crowd, rng=5)
        result = make_aggregator("DS").fit(matrix)
        truth_vector = [int(truth[f]) for f in range(60)]
        assert result.accuracy(truth_vector) > 0.85
