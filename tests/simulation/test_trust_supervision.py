"""End-to-end tests for trust supervision in the resilient runtime.

Acceptance criteria from the trust-supervision issue:

* a trust-supervised session beats the unsupervised baseline when one
  expert degrades to (near) coin-flip mid-campaign, with the quarantine
  visible in ``ResilientRunResult.incidents``;
* honest crowds (true accuracy >= theta + margin) finish a 50-round
  campaign with zero quarantines across 20 seeds;
* a worker dropped to accuracy 0.5 at round 10 is quarantined within a
  bounded number of rounds;
* gold probes are operational QA cost, never charged to the budget;
* kill-and-resume with trust enabled stays byte-identical.
"""

import json

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
)
from repro.core.trust import TrustPolicy, select_gold_probes
from repro.simulation import (
    DegradingExpertPanel,
    FaultModel,
    FaultyExpertPanel,
    ResilientCheckingSession,
    RetryPolicy,
    SimulatedExpertPanel,
)

pytestmark = pytest.mark.chaos

TRUTH = {i: (i % 2 == 0) for i in range(12)}


def _belief() -> FactoredBelief:
    groups = []
    for g in range(6):
        ids = [2 * g, 2 * g + 1]
        marginals = [0.55 if TRUTH[i] else 0.45 for i in ids]
        groups.append(
            BeliefState.from_marginals(FactSet.from_ids(ids), marginals)
        )
    return FactoredBelief(groups)


def _session(
    experts,
    *,
    budget=72,
    trust_policy=None,
    gold_facts=None,
    reserve=None,
    **kwargs,
):
    kwargs.setdefault("k", 2)
    kwargs.setdefault("ground_truth", TRUTH)
    kwargs.setdefault(
        "retry_policy", RetryPolicy(max_attempts=5, max_reassignments=1)
    )
    return ResilientCheckingSession(
        _belief(),
        experts,
        budget,
        reserve_experts=reserve,
        trust_policy=trust_policy,
        gold_facts=gold_facts,
        **kwargs,
    )


def _degrading_panel(seed, accuracy=0.05, after=1):
    return DegradingExpertPanel(
        TRUTH,
        degraded_worker_id="e0",
        degraded_accuracy=accuracy,
        degrade_after_collects=after,
        rng=seed,
    )


def _run_supervised(seed):
    policy = TrustPolicy(probe_rate=0.8, min_observations=3.0, seed=1)
    return _session(
        Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e"),
        reserve=Crowd.from_accuracies([0.93, 0.93], prefix="r"),
        trust_policy=policy,
        gold_facts=select_gold_probes(TRUTH, fraction=0.25, seed=1),
    ).run(_degrading_panel(seed))


def _run_baseline(seed):
    return _session(
        Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e"),
        reserve=Crowd.from_accuracies([0.93, 0.93], prefix="r"),
    ).run(_degrading_panel(seed))


class TestTrustBeatsBaseline:
    """One expert turns near-adversarial right after the first round;
    supervision quarantines them, the baseline absorbs the poison."""

    def test_quarantine_recovers_the_campaign(self):
        supervised = _run_supervised(4)
        baseline = _run_baseline(4)

        assert supervised.history[-1].accuracy == 1.0
        assert supervised.history[-1].accuracy > baseline.history[-1].accuracy

        quarantines = [
            event
            for event in supervised.incidents
            if event.kind == "quarantine"
        ]
        assert quarantines, "quarantine must be visible in incidents"
        assert quarantines[0].worker_id == "e0"
        assert supervised.trust is not None
        assert supervised.trust.quarantines >= 1
        # the degraded expert's posterior reflects the collapse
        e0 = next(
            s for s in supervised.trust.workers if s.worker_id == "e0"
        )
        assert e0.mean < e0.declared

    def test_trust_never_hurts_across_seeds(self):
        supervised = []
        baseline = []
        for seed in range(5):
            supervised.append(_run_supervised(seed).history[-1].accuracy)
            baseline.append(_run_baseline(seed).history[-1].accuracy)
        for ours, theirs in zip(supervised, baseline):
            assert ours >= theirs
        assert sum(supervised) > sum(baseline)

    def test_baseline_has_no_trust_report(self):
        result = _run_baseline(0)
        assert result.trust is None


class TestProbeAccounting:
    """Gold probes are operational QA cost, not expert budget."""

    def test_probes_are_never_charged_to_the_budget(self):
        experts = Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e")
        policy = TrustPolicy(probe_rate=1.0, seed=0)
        result = _session(
            experts,
            budget=60,
            trust_policy=policy,
            gold_facts=select_gold_probes(TRUTH, fraction=0.25, seed=0),
        ).run(SimulatedExpertPanel(TRUTH, rng=0))

        probe_events = [
            event
            for event in result.incidents
            if event.kind == "gold_probe"
        ]
        assert probe_events, "probe_rate=1.0 must inject probes"
        # k=2 queries x 3 experts: never more than 6 units per round,
        # no matter how many probe answers rode along
        for record in result.history:
            assert record.cost <= 2 * len(experts)
        assert result.history[-1].budget_spent <= 60


class TestHonestCrowdProperty:
    """No false-positive quarantines for crowds comfortably above theta."""

    def test_zero_quarantines_across_20_seeds(self):
        gold = select_gold_probes(TRUTH, fraction=0.25, seed=0)
        for seed in range(20):
            experts = Crowd.from_accuracies(
                [0.95, 0.96, 0.95], prefix="e"
            )
            result = _session(
                experts,
                budget=300,
                trust_policy=TrustPolicy(probe_rate=0.5, seed=seed),
                gold_facts=gold,
                reserve=Crowd.from_accuracies([0.95, 0.95], prefix="r"),
            ).run(SimulatedExpertPanel(TRUTH, rng=seed), max_rounds=50)
            assert result.trust is not None
            assert result.trust.quarantines == 0, (
                f"honest crowd quarantined at seed {seed}"
            )
            assert result.trust.quarantined_worker_ids == ()


class TestDegradedWorkerDetection:
    """A worker dropping to a coin flip mid-campaign is caught within a
    bounded number of rounds."""

    DETECTION_BOUND = 15  # rounds after the drop

    @pytest.mark.parametrize("seed", range(5))
    def test_coin_flip_worker_quarantined_in_bounded_rounds(self, seed):
        drop_round = 10
        panel = _degrading_panel(seed, accuracy=0.5, after=drop_round)
        result = _session(
            Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e"),
            budget=400,
            trust_policy=TrustPolicy(probe_rate=1.0, seed=seed),
            gold_facts=select_gold_probes(TRUTH, fraction=0.25, seed=0),
            reserve=Crowd.from_accuracies([0.95, 0.95], prefix="r"),
        ).run(panel, max_rounds=drop_round + self.DETECTION_BOUND)

        quarantine_rounds = [
            event.round_index
            for event in result.incidents
            if event.kind == "quarantine" and event.worker_id == "e0"
        ]
        assert quarantine_rounds, "degraded worker was never quarantined"
        assert quarantine_rounds[0] <= drop_round + self.DETECTION_BOUND


class TestJournalResumeWithTrust:
    """Kill-and-resume with trust enabled stays byte-identical: belief,
    history, and the trust posteriors all match an uninterrupted run."""

    FAULTS = dict(no_show=0.2, timeout=0.2, partial=0.2)

    def _panel(self):
        return FaultyExpertPanel(
            _degrading_panel(7, accuracy=0.3, after=2),
            FaultModel(**self.FAULTS, seed=3),
        )

    def _fresh(self, path):
        return _session(
            Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e"),
            budget=60,
            trust_policy=TrustPolicy(probe_rate=0.6, seed=1),
            gold_facts=select_gold_probes(TRUTH, fraction=0.25, seed=1),
            reserve=Crowd.from_accuracies([0.93, 0.93], prefix="r"),
            journal_path=path,
            retry_policy=RetryPolicy(max_attempts=3, max_reassignments=1),
        )

    @pytest.mark.parametrize("cut", [1, 3])
    def test_kill_and_resume_is_byte_identical(self, tmp_path, cut):
        reference = self._fresh(tmp_path / "ref.jsonl").run(self._panel())

        interrupted = self._fresh(tmp_path / "kill.jsonl")
        interrupted.run(self._panel(), max_rounds=cut)
        del interrupted  # the crash

        resumed = ResilientCheckingSession.resume(
            tmp_path / "kill.jsonl",
            retry_policy=RetryPolicy(max_attempts=3, max_reassignments=1),
        )
        result = resumed.run(self._panel())

        assert len(result.history) == len(reference.history)
        for ours, theirs in zip(result.history, reference.history):
            assert ours.query_fact_ids == theirs.query_fact_ids
            assert ours.cost == theirs.cost
            assert ours.budget_spent == theirs.budget_spent
            assert ours.quality == theirs.quality
        for ours, theirs in zip(result.belief, reference.belief):
            assert np.array_equal(ours.probabilities, theirs.probabilities)
        # the trust layer resumed exactly: posteriors, breakers, counters
        assert result.trust == reference.trust
        assert result.incidents == reference.incidents

    def test_mid_round_crash_does_not_double_count_incidents(self, tmp_path):
        """Truncating the journal right after a mid-round checkpoint
        leaves event records trailing it.  The replay redoes that work
        and re-journals those events, so resume must not also preload
        them — the incident log would double-count every replayed
        no-show, probe score, and backoff."""
        reference = self._fresh(tmp_path / "ref.jsonl").run(self._panel())

        lines = (tmp_path / "ref.jsonl").read_text().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        cut = None
        for index in range(len(kinds) - 1):
            if kinds[index] == "checkpoint" and kinds[index + 1] == "event":
                cut = index + 2  # keep the checkpoint + one trailing event
        assert cut is not None, "scenario never journaled mid-round events"

        crashed = tmp_path / "crashed.jsonl"
        torn = lines[cut][:12]  # a torn final line, dropped by the reader
        crashed.write_text("\n".join(lines[:cut] + [torn]))

        resumed = ResilientCheckingSession.resume(
            crashed,
            retry_policy=RetryPolicy(max_attempts=3, max_reassignments=1),
        )
        result = resumed.run(self._panel())

        assert result.incidents == reference.incidents
        assert result.trust == reference.trust
        for ours, theirs in zip(result.belief, reference.belief):
            assert np.array_equal(ours.probabilities, theirs.probabilities)
