"""Chaos and crash-recovery tests for the resilient campaign runtime."""

import numpy as np
import pytest

from repro.core import (
    AnswerSet,
    BeliefState,
    CostModel,
    Crowd,
    FactSet,
    FactoredBelief,
    PartialAnswerFamily,
    SerializationError,
    Worker,
    read_journal,
)
from repro.simulation import (
    FaultModel,
    FaultyExpertPanel,
    ResilientCheckingSession,
    ResilientRunResult,
    RetryPolicy,
    SimulatedExpertPanel,
)

pytestmark = pytest.mark.chaos

TRUTH = {0: True, 1: False, 2: True, 3: True, 4: False, 5: True}


def _belief() -> FactoredBelief:
    return FactoredBelief(
        [
            BeliefState.from_marginals(
                FactSet.from_ids([0, 1]), [0.55, 0.55]
            ),
            BeliefState.from_marginals(
                FactSet.from_ids([2, 3]), [0.45, 0.6]
            ),
            BeliefState.from_marginals(
                FactSet.from_ids([4, 5]), [0.6, 0.45]
            ),
        ]
    )


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.95, 0.95, 0.9], prefix="e")


@pytest.fixture
def reserve():
    return Crowd.from_accuracies([0.93, 0.93], prefix="r")


def _session(experts, reserve=None, **kwargs):
    kwargs.setdefault("k", 2)
    kwargs.setdefault("budget", 60)
    kwargs.setdefault("ground_truth", TRUTH)
    kwargs.setdefault(
        "retry_policy", RetryPolicy(max_attempts=5, max_reassignments=1)
    )
    return ResilientCheckingSession(
        _belief(), experts, reserve_experts=reserve, **kwargs
    )


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0
        )
        rng = np.random.default_rng(0)
        delays = [policy.delay_for(a, rng) for a in range(5)]
        assert delays == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            base_delay=2.0, multiplier=1.0, max_delay=10.0, jitter=0.5
        )
        rng = np.random.default_rng(0)
        for _ in range(100):
            assert 1.0 <= policy.delay_for(0, rng) <= 3.0


class TestChaosSweep:
    """Acceptance criterion: fault rates up to 0.3 never raise, keep
    valid marginals, and never end below the no-checking baseline."""

    @pytest.mark.parametrize(
        "kind", ["no_show", "timeout", "spam", "adversarial", "partial"]
    )
    @pytest.mark.parametrize("rate", [0.1, 0.3])
    def test_single_fault_kind(self, experts, reserve, kind, rate):
        for seed in range(3):
            model = FaultModel(**{kind: rate}, seed=seed)
            panel = FaultyExpertPanel(
                SimulatedExpertPanel(TRUTH, rng=seed), model
            )
            result = _session(experts, reserve).run(panel)
            self._check(result)

    def test_combined_faults(self, experts, reserve):
        for seed in range(3):
            model = FaultModel(
                no_show=0.1,
                timeout=0.1,
                spam=0.05,
                adversarial=0.05,
                partial=0.1,
                seed=seed,
            )
            panel = FaultyExpertPanel(
                SimulatedExpertPanel(TRUTH, rng=seed), model
            )
            result = _session(experts, reserve).run(panel)
            self._check(result)
            assert result.incidents  # faults this dense leave a trace

    @staticmethod
    def _check(result: ResilientRunResult) -> None:
        for group in result.belief:
            probs = group.probabilities
            assert np.all(probs >= 0.0)
            assert np.all(probs <= 1.0 + 1e-12)
            assert probs.sum() == pytest.approx(1.0)
        baseline = result.history[0].accuracy
        assert result.history[-1].accuracy >= baseline

    def test_budget_never_negative_under_chaos(self, experts, reserve):
        model = FaultModel(
            no_show=0.3, timeout=0.2, partial=0.3, seed=11
        )
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=11), model
        )
        session = _session(experts, reserve)
        session.run(panel)
        assert session.remaining_budget >= 0.0
        assert session.spent_budget <= 60.0
        spent = [record.budget_spent for record in session.history]
        assert spent == sorted(spent)  # monotone non-decreasing


class TestRetryAndReassignment:
    def test_backoff_sleeps_with_growing_delays(self, experts):
        """Persistent timeouts trigger backoff through the sleep hook."""
        slept = []
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=0),
            FaultModel(timeout=1.0, seed=0),
        )
        policy = RetryPolicy(
            max_attempts=4,
            max_reassignments=0,
            base_delay=1.0,
            multiplier=2.0,
            max_delay=100.0,
            jitter=0.0,
        )
        session = _session(
            experts, retry_policy=policy, sleep=slept.append
        )
        result = session.run(panel)
        assert result.halted
        assert slept == [1.0, 2.0, 4.0]

    def test_permanent_failure_halts_with_abandoned_incident(self, experts):
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=0),
            FaultModel(timeout=1.0, seed=0),
        )
        session = _session(
            experts,
            retry_policy=RetryPolicy(max_attempts=2, max_reassignments=0),
        )
        result = session.run(panel)
        assert result.halted
        assert session.is_finished
        kinds = [event.kind for event in result.incidents]
        assert kinds.count("timeout") == 2
        assert kinds[-1] == "abandoned"
        # nothing was charged for the failed round
        assert session.spent_budget == 0.0

    def test_reassignment_swaps_in_reserves(self, experts, reserve):
        """A panel that always no-shows is replaced by reserves, which
        then answer and let the round complete."""
        model = FaultModel(
            per_worker={
                worker_id: FaultModel(no_show=1.0)
                for worker_id in experts.worker_ids
            }
        )
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=0), model
        )
        session = _session(
            experts,
            reserve,
            retry_policy=RetryPolicy(max_attempts=2, max_reassignments=1),
        )
        result = session.run(panel, max_rounds=1)
        assert not result.halted
        kinds = [event.kind for record in result.history
                 for event in record.fault_events]
        assert "reassignment" in kinds
        reassigned = session.experts.worker_ids
        assert set(reserve.worker_ids) <= set(reassigned)
        assert session.spent_budget > 0.0

    def test_reassignment_exhausted_reserves_halts(self, experts):
        model = FaultModel(no_show=1.0)
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=0), model
        )
        session = _session(
            experts,
            Crowd([Worker("r0", 0.9)]),
            retry_policy=RetryPolicy(max_attempts=1, max_reassignments=3),
        )
        result = session.run(panel)
        assert result.halted
        kinds = [event.kind for event in result.incidents]
        assert "reassignment" in kinds
        assert kinds[-1] == "abandoned"

    def test_expensive_reserves_are_budget_clipped(self, experts):
        """When reassigned workers cost more than the budget allows, the
        priciest answers are dropped instead of overdrawing."""
        reserve = Crowd([Worker("pricey", 0.99)])
        cost_model = CostModel(per_worker={"pricey": 1000.0})
        model = FaultModel(
            per_worker={
                worker_id: FaultModel(no_show=1.0)
                for worker_id in experts.worker_ids
            }
        )
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=0), model
        )
        session = _session(
            experts,
            reserve,
            cost_model=cost_model,
            retry_policy=RetryPolicy(max_attempts=1, max_reassignments=1),
        )
        result = session.run(panel, max_rounds=1)
        kinds = [event.kind for event in result.incidents] + [
            event.kind
            for record in result.history
            for event in record.fault_events
        ]
        assert "budget_clip" in kinds
        assert session.remaining_budget >= 0.0

    def test_partial_answers_are_accepted_and_charged(self, experts):
        panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=4),
            FaultModel(partial=0.5, seed=4),
        )
        session = _session(experts)
        result = session.run(panel, max_rounds=3)
        assert not result.halted
        completed = [r for r in result.history if r.round_index >= 0]
        assert completed
        for record in completed:
            # partial rounds cost at most the full-round price
            assert record.cost <= len(record.query_fact_ids) * len(experts)


class TestTemperedDegradation:
    def test_contradiction_is_tempered_not_fatal(self):
        """Two infallible workers contradicting each other yield zero
        evidence; the runtime must temper instead of crashing."""
        belief = FactoredBelief(
            [
                BeliefState.from_marginals(FactSet.from_ids([0]), [0.6]),
            ]
        )
        panel = Crowd([Worker("yes", 1.0), Worker("no", 1.0)])

        class Contradictory:
            def collect(self, query_fact_ids, experts):
                return PartialAnswerFamily(
                    intended_query_fact_ids=tuple(query_fact_ids),
                    intended_worker_ids=experts.worker_ids,
                    answer_sets=tuple(
                        AnswerSet(
                            worker=worker,
                            answers={
                                f: worker.worker_id == "yes"
                                for f in query_fact_ids
                            },
                        )
                        for worker in experts
                    ),
                )

        session = ResilientCheckingSession(
            belief, panel, budget=4, k=1, ground_truth={0: True}
        )
        result = session.run(Contradictory(), max_rounds=2)
        kinds = [
            event.kind
            for record in result.history
            for event in record.fault_events
        ]
        assert "tempered_update" in kinds
        for group in result.belief:
            assert group.probabilities.sum() == pytest.approx(1.0)


class TestJournalResume:
    """Acceptance criterion: kill-and-resume restores the session so the
    subsequent rounds are byte-identical to an uninterrupted run."""

    FAULTS = dict(no_show=0.2, timeout=0.2, spam=0.1, partial=0.2)

    def _panel(self):
        return FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=7),
            FaultModel(**self.FAULTS, seed=3),
        )

    def _fresh(self, experts, reserve, path):
        return _session(
            experts,
            reserve,
            journal_path=path,
            retry_policy=RetryPolicy(max_attempts=3, max_reassignments=1),
        )

    @pytest.mark.parametrize("cut", [1, 2, 4])
    def test_kill_and_resume_is_byte_identical(
        self, experts, reserve, tmp_path, cut
    ):
        reference = self._fresh(
            experts, reserve, tmp_path / "ref.jsonl"
        ).run(self._panel())

        interrupted = self._fresh(experts, reserve, tmp_path / "kill.jsonl")
        interrupted.run(self._panel(), max_rounds=cut)
        del interrupted  # the crash

        resumed = ResilientCheckingSession.resume(
            tmp_path / "kill.jsonl",
            retry_policy=RetryPolicy(max_attempts=3, max_reassignments=1),
        )
        result = resumed.run(self._panel())

        assert len(result.history) == len(reference.history)
        for ours, theirs in zip(result.history, reference.history):
            assert ours.query_fact_ids == theirs.query_fact_ids
            assert ours.cost == theirs.cost
            assert ours.budget_spent == theirs.budget_spent
            assert ours.quality == theirs.quality
        for ours, theirs in zip(result.belief, reference.belief):
            assert np.array_equal(
                ours.probabilities, theirs.probabilities
            )
        # the incident log resumes without loss or double counting
        assert result.incidents == reference.incidents

    def test_torn_final_line_still_resumes(
        self, experts, reserve, tmp_path
    ):
        reference = self._fresh(
            experts, reserve, tmp_path / "ref.jsonl"
        ).run(self._panel())

        path = tmp_path / "torn.jsonl"
        self._fresh(experts, reserve, path).run(self._panel(), max_rounds=3)
        raw = path.read_bytes()
        path.write_bytes(raw[:-40])  # crash mid-append

        resumed = ResilientCheckingSession.resume(
            path,
            retry_policy=RetryPolicy(max_attempts=3, max_reassignments=1),
        )
        result = resumed.run(self._panel())
        for ours, theirs in zip(result.belief, reference.belief):
            assert np.array_equal(
                ours.probabilities, theirs.probabilities
            )

    def test_truncated_journal_resumes_to_identical_bytes(
        self, experts, reserve, tmp_path
    ):
        """Not just identical state: the resumed *journal file* must end
        up byte-for-byte equal to an uninterrupted run's (repair drops
        the torn fragment, trim drops the in-flight round's records,
        and replay re-journals them identically)."""
        reference_path = tmp_path / "ref.jsonl"
        self._fresh(experts, reserve, reference_path).run(self._panel())
        reference_bytes = reference_path.read_bytes()

        lines = reference_bytes.splitlines(keepends=True)
        for cut in (2, len(lines) // 2, len(lines) - 1):
            path = tmp_path / f"cut{cut}.jsonl"
            path.write_bytes(b"".join(lines[:cut]) + lines[cut][:-10])
            resumed = ResilientCheckingSession.resume(
                path,
                retry_policy=RetryPolicy(
                    max_attempts=3, max_reassignments=1
                ),
            )
            resumed.run(self._panel())
            assert path.read_bytes() == reference_bytes, f"cut={cut}"

    def test_journal_records_header_checkpoints_and_events(
        self, experts, reserve, tmp_path
    ):
        path = tmp_path / "audit.jsonl"
        self._fresh(experts, reserve, path).run(
            self._panel(), max_rounds=3
        )
        records = read_journal(path)
        kinds = {record["kind"] for record in records}
        assert records[0]["kind"] == "header"
        assert records[0]["version"] == 8
        assert "checkpoint" in kinds
        checkpoints = [r for r in records if r["kind"] == "checkpoint"]
        # every checkpoint carries full durable state
        for checkpoint in checkpoints:
            assert "session" in checkpoint
            assert "rng" in checkpoint
            assert "panel" in checkpoint

    def test_resume_requires_a_checkpoint(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text('{"kind":"header","version":2}\n')
        with pytest.raises(SerializationError, match="checkpoint"):
            ResilientCheckingSession.resume(path)

    def test_resume_of_finished_run_is_a_no_op(
        self, experts, reserve, tmp_path
    ):
        path = tmp_path / "done.jsonl"
        reference = self._fresh(experts, reserve, path).run(self._panel())
        resumed = ResilientCheckingSession.resume(path)
        result = resumed.run(self._panel())
        assert len(result.history) == len(reference.history)
        assert resumed.is_finished
