"""Unit tests for the fault-injection layer."""

import numpy as np
import pytest

from repro.core import (
    AnswerFamily,
    AnswerSet,
    Crowd,
    PartialAnswerFamily,
    Worker,
)
from repro.simulation import (
    AnswerCollectionTimeout,
    FaultModel,
    FaultyExpertPanel,
    ScriptedAnswerSource,
    SimulatedExpertPanel,
)

pytestmark = pytest.mark.chaos

TRUTH = {0: True, 1: False, 2: True}


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.95, 0.9], prefix="e")


def _scripted(experts):
    script = {
        (worker.worker_id, fact_id): TRUTH[fact_id]
        for worker in experts
        for fact_id in TRUTH
    }
    return ScriptedAnswerSource(script)


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="no_show"):
            FaultModel(no_show=1.5)
        with pytest.raises(ValueError, match="timeout"):
            FaultModel(timeout=-0.1)

    def test_exclusive_behaviors_must_fit(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FaultModel(no_show=0.5, spam=0.4, adversarial=0.3)

    def test_per_worker_override(self):
        model = FaultModel(
            no_show=0.1, per_worker={"e1": FaultModel(no_show=0.9)}
        )
        assert model.rates_for("e1").no_show == 0.9
        assert model.rates_for("e0").no_show == 0.1

    def test_parse(self):
        model = FaultModel.parse("no_show=0.1, spam=0.05,timeout=0.2", seed=4)
        assert model.no_show == 0.1
        assert model.spam == 0.05
        assert model.timeout == 0.2
        assert model.seed == 4

    def test_parse_rejects_unknown_fault(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultModel.parse("latency=0.5")

    def test_parse_rejects_bad_rate(self):
        with pytest.raises(ValueError, match="bad rate"):
            FaultModel.parse("no_show=lots")


class TestFaultyExpertPanel:
    def test_zero_rates_are_a_passthrough(self, experts):
        """With all rates zero the wrapper must return the inner family
        unchanged (drop-in replacement)."""
        inner = _scripted(experts)
        panel = FaultyExpertPanel(inner, FaultModel())
        family = panel.collect([0, 1, 2], experts)
        assert isinstance(family, AnswerFamily)
        assert not isinstance(family, PartialAnswerFamily)
        assert len(family) == 2
        assert panel.drain_events() == []

    def test_no_show_drops_workers(self, experts):
        panel = FaultyExpertPanel(
            _scripted(experts), FaultModel(no_show=1.0, seed=0)
        )
        family = panel.collect([0, 1], experts)
        assert isinstance(family, PartialAnswerFamily)
        assert family.is_empty
        assert sorted(family.missing_worker_ids) == ["e0", "e1"]
        kinds = [event.kind for event in panel.drain_events()]
        assert kinds == ["no_show", "no_show"]

    def test_adversarial_flips_answers(self, experts):
        panel = FaultyExpertPanel(
            _scripted(experts), FaultModel(adversarial=1.0, seed=0)
        )
        family = panel.collect([0, 1], experts)
        for answer_set in family:
            assert answer_set.answers == {0: not TRUTH[0], 1: not TRUTH[1]}
        assert all(
            event.kind == "adversarial" for event in panel.drain_events()
        )

    def test_partial_drops_individual_answers(self, experts):
        panel = FaultyExpertPanel(
            _scripted(experts), FaultModel(partial=0.5, seed=1)
        )
        family = panel.collect([0, 1, 2], experts)
        assert isinstance(family, PartialAnswerFamily)
        assert 0 < family.num_answers < 6
        events = panel.drain_events()
        assert events
        assert {event.kind for event in events} <= {"partial", "no_show"}

    def test_timeout_raises_and_records(self, experts):
        panel = FaultyExpertPanel(
            _scripted(experts), FaultModel(timeout=1.0, seed=0)
        )
        with pytest.raises(AnswerCollectionTimeout):
            panel.collect([0], experts)
        (event,) = panel.drain_events()
        assert event.kind == "timeout"
        assert event.fact_ids == (0,)

    def test_spam_answers_ignore_the_truth(self, experts):
        rng_panel = FaultyExpertPanel(
            SimulatedExpertPanel(TRUTH, rng=3),
            FaultModel(spam=1.0, seed=5),
        )
        seen = set()
        for _ in range(20):
            family = rng_panel.collect([0], experts)
            for answer_set in family:
                seen.add(answer_set.answers[0])
        assert seen == {True, False}

    def test_state_round_trip_replays_faults(self, experts):
        model = FaultModel(no_show=0.3, partial=0.3, seed=9)
        panel = FaultyExpertPanel(SimulatedExpertPanel(TRUTH, rng=2), model)
        state = panel.get_state()
        first = [panel.collect([0, 1, 2], experts) for _ in range(3)]
        panel.set_state(state)
        second = [panel.collect([0, 1, 2], experts) for _ in range(3)]
        for one, two in zip(first, second):
            assert [
                (a.worker.worker_id, dict(a.answers)) for a in one
            ] == [(a.worker.worker_id, dict(a.answers)) for a in two]
