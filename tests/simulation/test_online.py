"""Unit tests for the sans-IO online checking session."""

import numpy as np
import pytest

from repro.core import (
    AnswerFamily,
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    HierarchicalCrowdsourcing,
    Worker,
)
from repro.simulation import (
    OnlineCheckingSession,
    SessionStateError,
    SimulatedExpertPanel,
)

TRUTH = {0: True, 1: False, 2: True, 3: True}


def _belief() -> FactoredBelief:
    return FactoredBelief(
        [
            BeliefState.from_marginals(FactSet.from_ids([0, 1]), [0.7, 0.4]),
            BeliefState.from_marginals(FactSet.from_ids([2, 3]), [0.6, 0.8]),
        ]
    )


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.92, 0.95], prefix="e")


@pytest.fixture
def session(experts):
    return OnlineCheckingSession(
        _belief(), experts, budget=12, ground_truth=TRUTH
    )


class TestLifecycle:
    def test_initial_state(self, session):
        assert not session.is_finished
        assert session.pending_queries is None
        assert session.remaining_budget == 12
        assert len(session.history) == 1

    def test_full_loop_matches_batch_runner(self, experts):
        """Driving the session with the same panel seed must reproduce
        the batch HierarchicalCrowdsourcing run exactly."""
        panel_online = SimulatedExpertPanel(TRUTH, rng=7)
        session = OnlineCheckingSession(
            _belief(), experts, budget=12, ground_truth=TRUTH
        )
        while (queries := session.next_queries()) is not None:
            session.submit(panel_online.collect(queries, experts))

        panel_batch = SimulatedExpertPanel(TRUTH, rng=7)
        batch = HierarchicalCrowdsourcing(experts, k=1).run(
            _belief(), panel_batch, budget=12, ground_truth=TRUTH
        )
        assert [r.quality for r in session.history] == pytest.approx(
            [r.quality for r in batch.history]
        )
        assert session.final_labels() == batch.final_labels

    def test_finishes_on_budget(self, session, experts):
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        rounds = 0
        while (queries := session.next_queries()) is not None:
            session.submit(panel.collect(queries, experts))
            rounds += 1
        assert session.is_finished
        assert rounds == 6  # budget 12 / (1 query * 2 experts)
        assert session.next_queries() is None

    def test_certain_belief_finishes_immediately(self, experts):
        certain = FactoredBelief(
            [BeliefState.point_mass(FactSet.from_ids([0]), (True,))]
        )
        session = OnlineCheckingSession(certain, experts, budget=100)
        assert session.next_queries() is None
        assert session.is_finished


class TestStateMachine:
    def test_double_next_queries_rejected(self, session):
        session.next_queries()
        with pytest.raises(SessionStateError, match="pending"):
            session.next_queries()

    def test_submit_without_pending_rejected(self, session, experts):
        family = AnswerFamily(
            answer_sets=tuple(
                AnswerSet(worker=worker, answers={0: True})
                for worker in experts
            )
        )
        with pytest.raises(SessionStateError, match="no pending"):
            session.submit(family)

    def test_submit_wrong_facts_rejected(self, session, experts):
        queries = session.next_queries()
        wrong_fact = next(
            fact_id for fact_id in TRUTH if fact_id not in queries
        )
        family = AnswerFamily(
            answer_sets=tuple(
                AnswerSet(worker=worker, answers={wrong_fact: True})
                for worker in experts
            )
        )
        with pytest.raises(ValueError, match="covers"):
            session.submit(family)

    def test_submit_missing_expert_rejected(self, session, experts):
        queries = session.next_queries()
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(
                    worker=experts[0],
                    answers={fact_id: True for fact_id in queries},
                ),
            )
        )
        with pytest.raises(ValueError, match="missing experts"):
            session.submit(family)

    def test_abandon_pending(self, session, experts):
        first = session.next_queries()
        session.abandon_pending()
        assert session.pending_queries is None
        assert session.remaining_budget == 12  # nothing charged
        second = session.next_queries()
        assert second == first  # belief unchanged -> same selection

    def test_abandon_without_pending_rejected(self, session):
        with pytest.raises(SessionStateError):
            session.abandon_pending()

    def test_constructor_validation(self, experts):
        with pytest.raises(ValueError, match="must not be empty"):
            OnlineCheckingSession(_belief(), Crowd([]), budget=5)
        with pytest.raises(ValueError, match="k must be"):
            OnlineCheckingSession(_belief(), experts, budget=5, k=0)


class TestAccounting:
    def test_budget_charged_per_round(self, session, experts):
        panel = SimulatedExpertPanel(TRUTH, rng=1)
        queries = session.next_queries()
        record = session.submit(panel.collect(queries, experts))
        assert record.cost == len(queries) * len(experts)
        assert session.spent_budget == record.cost

    def test_caller_belief_untouched(self, experts):
        belief = _belief()
        before = [group.probabilities.copy() for group in belief]
        session = OnlineCheckingSession(belief, experts, budget=8)
        panel = SimulatedExpertPanel(TRUTH, rng=2)
        while (queries := session.next_queries()) is not None:
            session.submit(panel.collect(queries, experts))
        for group, original in zip(belief, before):
            assert np.allclose(group.probabilities, original)

    def test_history_accuracy_tracked(self, session, experts):
        panel = SimulatedExpertPanel(TRUTH, rng=3)
        queries = session.next_queries()
        session.submit(panel.collect(queries, experts))
        assert all(
            record.accuracy is not None for record in session.history
        )


class TestSelectorCacheLifecycle:
    """The session must release selector cache entries for groups it
    updates, so a long campaign's memory is bounded by the *current*
    belief rather than by every belief that ever existed."""

    def test_submit_invalidates_updated_groups(self, experts):
        from repro.core import LazyGreedySelector

        selector = LazyGreedySelector()
        session = OnlineCheckingSession(
            _belief(), experts, budget=40, ground_truth=TRUTH, selector=selector
        )
        panel = SimulatedExpertPanel(TRUTH, rng=5)
        sizes = []
        while (queries := session.next_queries()) is not None:
            session.submit(panel.collect(queries, experts))
            sizes.append(selector.cache_entries)
        assert sizes, "session must run at least one round"
        # 2 groups x 2 facts: bounded by priors + first-step gain
        # vectors + per-group query-set entries of the current states.
        assert max(sizes) <= 2 + 4 + 2 * 4

    def test_partial_submission_invalidates_staged_groups(self, experts):
        from repro.core import LazyGreedySelector

        selector = LazyGreedySelector()
        session = OnlineCheckingSession(
            _belief(), experts, budget=20, ground_truth=TRUTH,
            selector=selector, k=2,
        )
        panel = SimulatedExpertPanel(TRUTH, rng=6)
        queries = session.next_queries()
        assert selector.cache_entries > 0
        # Only one of the two panellists responds this round.
        session.submit_partial(panel.collect(queries, Crowd([experts[0]])))
        # The staged groups' superseded states are no longer cached.
        current = {id(session.belief[i]) for i in range(len(session.belief))}
        cached = {
            id(entry[0]) for entry in selector._first_gains.values()
        }
        assert cached <= current
