"""Unit tests for the simulated answer sources."""

import numpy as np
import pytest

from repro.core import Crowd, Worker
from repro.simulation import (
    CachedExpertPanel,
    ScriptedAnswerSource,
    SimulatedExpertPanel,
)

TRUTH = {0: True, 1: False, 2: True}


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.9, 0.8], prefix="e")


class TestSimulatedExpertPanel:
    def test_family_structure(self, experts):
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        family = panel.collect([0, 2], experts)
        assert len(family) == 2
        assert set(family.query_fact_ids) == {0, 2}

    def test_answers_served_counter(self, experts):
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        panel.collect([0, 1], experts)
        panel.collect([2], experts)
        assert panel.answers_served == 2 * 2 + 1 * 2

    def test_seed_reproducibility(self, experts):
        a = SimulatedExpertPanel(TRUTH, rng=5).collect([0, 1, 2], experts)
        b = SimulatedExpertPanel(TRUTH, rng=5).collect([0, 1, 2], experts)
        for set_a, set_b in zip(a, b):
            assert set_a.answers == set_b.answers

    def test_perfect_worker_always_truthful(self):
        oracle = Crowd([Worker("o", 1.0)])
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        for _repeat in range(10):
            family = panel.collect([0, 1, 2], oracle)
            answers = family.answer_sets[0].answers
            assert answers == TRUTH

    def test_adversarial_worker_always_lies(self):
        liar = Crowd([Worker("liar", 0.0)])
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        family = panel.collect([0, 1], liar)
        answers = family.answer_sets[0].answers
        assert answers == {0: False, 1: True}

    def test_empirical_accuracy_matches_model(self):
        worker = Crowd([Worker("w", 0.85)])
        panel = SimulatedExpertPanel(TRUTH, rng=1)
        correct = 0
        trials = 3000
        for _trial in range(trials):
            family = panel.collect([0], worker)
            correct += family.answer_sets[0].answer_for(0) == TRUTH[0]
        assert correct / trials == pytest.approx(0.85, abs=0.03)

    def test_fresh_sampling_varies_between_asks(self, experts):
        """Default panel re-samples: a 0.8 worker asked many times must
        not give identical answers every time."""
        worker = Crowd([Worker("w", 0.8)])
        panel = SimulatedExpertPanel(TRUTH, rng=2)
        answers = {
            panel.collect([0], worker).answer_sets[0].answer_for(0)
            for _ in range(100)
        }
        assert answers == {True, False}

    def test_unknown_fact_raises(self, experts):
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        with pytest.raises(KeyError):
            panel.collect([99], experts)


class TestCachedExpertPanel:
    def test_repeated_asks_identical(self):
        worker = Crowd([Worker("w", 0.7)])
        panel = CachedExpertPanel(TRUTH, rng=3)
        first = panel.collect([0], worker).answer_sets[0].answer_for(0)
        for _repeat in range(20):
            again = panel.collect([0], worker).answer_sets[0].answer_for(0)
            assert again == first

    def test_cache_is_per_worker(self):
        crowd = Crowd.from_accuracies([0.7, 0.7])
        panel = CachedExpertPanel(TRUTH, rng=4)
        family = panel.collect([0], crowd)
        # Both answers are cached independently.
        repeat = panel.collect([0], crowd)
        for first, second in zip(family, repeat):
            assert first.answers == second.answers


class TestScriptedAnswerSource:
    def test_replays_script(self, experts):
        script = {
            ("e0", 0): True, ("e1", 0): False,
        }
        source = ScriptedAnswerSource(script)
        family = source.collect([0], experts)
        assert family.votes_for(0) == [True, False]

    def test_records_requests(self, experts):
        source = ScriptedAnswerSource(
            {("e0", 1): True, ("e1", 1): True}
        )
        source.collect([1], experts)
        assert source.requests == [("e0", 1), ("e1", 1)]

    def test_unscripted_request_fails_loudly(self, experts):
        source = ScriptedAnswerSource({})
        with pytest.raises(KeyError):
            source.collect([0], experts)
