"""Property-based tests (hypothesis) on the core invariants.

These pin down the information-theoretic guarantees the paper's proofs
rely on, over randomized belief states, crowds and query sets rather
than hand-picked examples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnswerFamily,
    AnswerSet,
    BeliefState,
    Crowd,
    ExactSelector,
    FactSet,
    FactoredBelief,
    GreedySelector,
    Worker,
    conditional_entropy,
    conditional_entropy_naive,
    expected_quality_improvement,
    family_distribution,
    observation_entropy,
    pattern_marginal,
    shannon_entropy,
    update_with_family,
    worker_response_matrix,
)

# --------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------


@st.composite
def belief_states(draw, min_facts: int = 1, max_facts: int = 4):
    """Random normalizable belief over 1..4 facts."""
    num_facts = draw(st.integers(min_facts, max_facts))
    size = 1 << num_facts
    weights = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        ).filter(lambda values: sum(values) > 1e-6)
    )
    facts = FactSet.from_ids(range(num_facts))
    return BeliefState(facts, np.array(weights))


@st.composite
def crowds(draw, min_size: int = 1, max_size: int = 3):
    size = draw(st.integers(min_size, max_size))
    accuracies = draw(
        st.lists(
            st.floats(0.5, 1.0, allow_nan=False),
            min_size=size,
            max_size=size,
        )
    )
    return Crowd.from_accuracies(accuracies)


@st.composite
def beliefs_with_queries(draw):
    belief = draw(belief_states())
    ids = list(belief.facts.fact_ids)
    query = draw(
        st.lists(st.sampled_from(ids), unique=True, min_size=1,
                 max_size=min(3, len(ids)))
    )
    return belief, query


# --------------------------------------------------------------------
# probability-calculus invariants
# --------------------------------------------------------------------


class TestProbabilityInvariants:
    @given(belief_states())
    @settings(max_examples=60, deadline=None)
    def test_belief_always_normalized(self, belief):
        assert belief.probabilities.sum() == pytest.approx(1.0)

    @given(belief_states())
    @settings(max_examples=60, deadline=None)
    def test_marginals_in_unit_interval(self, belief):
        marginals = belief.marginals()
        assert np.all(marginals >= -1e-12)
        assert np.all(marginals <= 1 + 1e-12)

    @given(beliefs_with_queries(), crowds())
    @settings(max_examples=40, deadline=None)
    def test_family_distribution_is_distribution(self, pair, experts):
        belief, query = pair
        distribution = family_distribution(belief, query, experts)
        assert np.all(distribution >= -1e-12)
        assert distribution.sum() == pytest.approx(1.0)

    @given(beliefs_with_queries())
    @settings(max_examples=60, deadline=None)
    def test_pattern_marginal_is_distribution(self, pair):
        belief, query = pair
        marginal = pattern_marginal(belief, query)
        assert marginal.sum() == pytest.approx(1.0)
        assert np.all(marginal >= -1e-12)

    @given(
        st.integers(1, 4),
        st.floats(0.0, 1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_response_matrix_rows_stochastic(self, num_queries, accuracy):
        matrix = worker_response_matrix(num_queries, accuracy)
        assert np.allclose(matrix.sum(axis=1), 1.0)


# --------------------------------------------------------------------
# entropy / information invariants
# --------------------------------------------------------------------


class TestEntropyInvariants:
    @given(beliefs_with_queries(), crowds())
    @settings(max_examples=30, deadline=None)
    def test_conditional_entropy_identity_vs_naive(self, pair, experts):
        """The fast chain-rule implementation equals the Eq. 34 sum for
        arbitrary beliefs, queries and crowds."""
        belief, query = pair
        if len(query) * len(experts) > 6:
            query = query[:2]
        fast = conditional_entropy(belief, query, experts)
        naive = conditional_entropy_naive(belief, query, experts)
        assert fast == pytest.approx(naive, abs=1e-7)

    @given(beliefs_with_queries(), crowds())
    @settings(max_examples=40, deadline=None)
    def test_information_never_hurts(self, pair, experts):
        belief, query = pair
        assert conditional_entropy(
            belief, query, experts
        ) <= observation_entropy(belief) + 1e-9

    @given(beliefs_with_queries(), crowds())
    @settings(max_examples=40, deadline=None)
    def test_expected_gain_non_negative(self, pair, experts):
        belief, query = pair
        assert expected_quality_improvement(
            belief, query, experts
        ) >= -1e-9

    @given(belief_states(min_facts=2, max_facts=4), crowds(max_size=2))
    @settings(max_examples=25, deadline=None)
    def test_monotonicity_in_query_set(self, belief, experts):
        """H(O|AS^T) is non-increasing as T grows (submodular set fn)."""
        ids = list(belief.facts.fact_ids)
        previous = observation_entropy(belief)
        for size in range(1, min(3, len(ids)) + 1):
            current = conditional_entropy(belief, ids[:size], experts)
            assert current <= previous + 1e-9
            previous = current

    @given(belief_states())
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounds(self, belief):
        entropy = observation_entropy(belief)
        assert -1e-12 <= entropy <= belief.num_facts + 1e-9

    @given(
        st.lists(st.floats(1e-9, 1.0), min_size=2, max_size=32)
    )
    @settings(max_examples=60, deadline=None)
    def test_shannon_entropy_upper_bound(self, weights):
        entropy = shannon_entropy(np.array(weights))
        assert entropy <= np.log2(len(weights)) + 1e-9


# --------------------------------------------------------------------
# Bayesian-update invariants
# --------------------------------------------------------------------


class TestUpdateInvariants:
    @given(
        beliefs_with_queries(),
        crowds(max_size=2),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_posterior_normalized_and_supported(self, pair, experts, rand):
        belief, query = pair
        answer_sets = []
        for worker in experts:
            answers = {fact_id: rand.random() < 0.5 for fact_id in query}
            answer_sets.append(AnswerSet(worker=worker, answers=answers))
        family = AnswerFamily(answer_sets=tuple(answer_sets))
        try:
            posterior = update_with_family(belief, family)
        except Exception as error:
            from repro.core import InconsistentEvidenceError

            assert isinstance(error, InconsistentEvidenceError)
            return
        assert posterior.probabilities.sum() == pytest.approx(1.0)
        # Bayes cannot create support where the prior had none.
        prior_zero = belief.probabilities == 0.0
        assert np.all(posterior.probabilities[prior_zero] == 0.0)

    @given(beliefs_with_queries())
    @settings(max_examples=30, deadline=None)
    def test_coin_flip_worker_is_identity(self, pair):
        belief, query = pair
        flipper = Worker("c", 0.5)
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(
                    worker=flipper,
                    answers={fact_id: True for fact_id in query},
                ),
            )
        )
        posterior = update_with_family(belief, family)
        assert np.allclose(
            posterior.probabilities, belief.probabilities, atol=1e-12
        )


# --------------------------------------------------------------------
# selection invariants
# --------------------------------------------------------------------


class TestSelectionInvariants:
    @given(belief_states(min_facts=2, max_facts=3), crowds(max_size=2),
           st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_greedy_subset_of_facts_no_duplicates(self, belief, experts, k):
        factored = FactoredBelief([belief])
        selected = GreedySelector().select(factored, experts, k)
        assert len(selected) == len(set(selected))
        assert set(selected) <= set(factored.fact_ids)
        assert len(selected) <= k

    @given(belief_states(min_facts=2, max_facts=3), crowds(max_size=2))
    @settings(max_examples=15, deadline=None)
    def test_greedy_first_pick_matches_opt_k1(self, belief, experts):
        """For k=1 greedy IS optimal; both must reach the same objective."""
        factored = FactoredBelief([belief])
        greedy = GreedySelector().select(factored, experts, 1)
        opt = ExactSelector().select(factored, experts, 1)
        if not greedy:
            # No positive gain anywhere; OPT's pick must also be ~zero.
            gain = expected_quality_improvement(belief, opt, experts)
            assert gain <= 1e-9
            return
        greedy_value = conditional_entropy(belief, greedy, experts)
        opt_value = conditional_entropy(belief, opt, experts)
        assert greedy_value == pytest.approx(opt_value, abs=1e-9)
