"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BeliefState, Crowd, FactSet, FactoredBelief
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset

#: The observation distribution of the paper's Table I.
TABLE1 = {
    (False, False, False): 0.09,
    (True, False, False): 0.11,
    (False, True, False): 0.10,
    (True, True, False): 0.20,
    (False, False, True): 0.08,
    (True, False, True): 0.09,
    (False, True, True): 0.15,
    (True, True, True): 0.18,
}


@pytest.fixture
def three_facts() -> FactSet:
    return FactSet.from_ids([1, 2, 3])


@pytest.fixture
def table1_belief(three_facts: FactSet) -> BeliefState:
    """The belief state of the paper's Table I example."""
    return BeliefState.from_mapping(three_facts, TABLE1)


@pytest.fixture
def two_experts() -> Crowd:
    return Crowd.from_accuracies([0.9, 0.95], prefix="e")


@pytest.fixture
def single_expert() -> Crowd:
    return Crowd.from_accuracies([0.9], prefix="e")


@pytest.fixture
def factored_table1(table1_belief: BeliefState) -> FactoredBelief:
    return FactoredBelief([table1_belief])


@pytest.fixture(scope="session")
def small_dataset():
    """A small but realistic dataset, shared across the session."""
    return make_synthetic_dataset(
        num_groups=12,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(
            num_preliminary=15,
            num_expert=3,
            preliminary_accuracy=(0.6, 0.85),
            expert_accuracy=(0.9, 0.97),
        ),
        seed=123,
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)
