"""Stream event records: validation, immutability, serialization."""

from __future__ import annotations

import pytest

from repro.stream import StreamEvent, event_from_dict, event_to_dict
from repro.stream.events import EVENT_KINDS


def test_event_kinds_cover_the_streaming_protocol():
    assert EVENT_KINDS == {
        "new_fact",
        "prelim_label",
        "worker_join",
        "worker_leave",
    }


def test_validation_rejects_bad_fields():
    with pytest.raises(ValueError):
        StreamEvent(seq=-1, time=0.0, kind="new_fact", payload={})
    with pytest.raises(ValueError):
        StreamEvent(seq=0, time=-0.5, kind="new_fact", payload={})
    with pytest.raises(ValueError):
        StreamEvent(seq=0, time=0.0, kind="nonsense", payload={})


def test_payload_is_immutable():
    event = StreamEvent(
        seq=0, time=1.0, kind="new_fact", payload={"fact_id": 3}
    )
    with pytest.raises(TypeError):
        event.payload["fact_id"] = 4


def test_payload_is_copied_not_aliased():
    payload = {"fact_id": 3}
    event = StreamEvent(seq=0, time=1.0, kind="new_fact", payload=payload)
    payload["fact_id"] = 9
    assert event.payload["fact_id"] == 3


def test_dict_round_trip():
    event = StreamEvent(
        seq=5,
        time=2.5,
        kind="prelim_label",
        payload={
            "fact_id": 1,
            "worker_id": "w1",
            "accuracy": 0.8,
            "answer": True,
        },
    )
    clone = event_from_dict(event_to_dict(event))
    assert clone.seq == event.seq
    assert clone.time == event.time
    assert clone.kind == event.kind
    assert dict(clone.payload) == dict(event.payload)
