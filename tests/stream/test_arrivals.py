"""Arrival processes and the replayable event-log generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import generate_event_stream, make_arrivals
from repro.stream.arrivals import ARRIVAL_KINDS, StalledArrivals


@pytest.mark.parametrize("kind", ARRIVAL_KINDS)
def test_timestamps_are_non_decreasing_and_seeded(kind):
    arrivals = make_arrivals(kind, rate=25.0)
    first = arrivals.timestamps(200, np.random.default_rng(5))
    second = arrivals.timestamps(200, np.random.default_rng(5))
    assert first == second
    assert all(b >= a for a, b in zip(first, first[1:]))
    assert all(value > 0.0 for value in first)


def test_make_arrivals_rejects_unknown_kind():
    with pytest.raises(ValueError):
        make_arrivals("fractal", rate=10.0)


def test_invalid_rates_rejected():
    with pytest.raises(ValueError):
        make_arrivals("poisson", rate=0.0)
    with pytest.raises(ValueError):
        StalledArrivals(rate=10.0, stall_every=0)


def test_stalled_arrivals_inject_dead_air():
    arrivals = StalledArrivals(
        rate=100.0, stall_every=10, stall_duration=50.0
    )
    gaps = arrivals.gaps(100, np.random.default_rng(0))
    stall_gaps = gaps[9::10]
    normal = np.delete(gaps, np.arange(9, 100, 10))
    assert stall_gaps.mean() > normal.mean() * 10


def test_event_stream_is_replayable(dataset):
    kwargs = dict(theta=0.9, votes_per_fact=3, seed=11, churn_rate=0.2)
    first = generate_event_stream(dataset, **kwargs)
    second = generate_event_stream(dataset, **kwargs)
    assert first == second
    assert [event.seq for event in first] == list(range(len(first)))
    times = [event.time for event in first]
    assert times == sorted(times)


def test_event_stream_covers_every_fact_and_vote(dataset):
    events = generate_event_stream(dataset, votes_per_fact=2, seed=3)
    new_facts = [event for event in events if event.kind == "new_fact"]
    votes = [event for event in events if event.kind == "prelim_label"]
    assert len(new_facts) == dataset.num_facts
    assert {event.payload["fact_id"] for event in new_facts} == set(
        dataset.fact_ids
    )
    assert len(votes) == 2 * dataset.num_facts
    # every vote references a fact that exists in the dataset
    assert all(
        event.payload["fact_id"] in set(dataset.fact_ids) for event in votes
    )


def test_churn_weaves_worker_departures(dataset):
    events = generate_event_stream(dataset, seed=5, churn_rate=0.5)
    kinds = {event.kind for event in events}
    assert "worker_leave" in kinds
    # churn must never invent workers: every leave names a CE member
    experts, _ = dataset.split_crowd(0.9)
    known = {worker.worker_id for worker in experts}
    assert all(
        event.payload["worker_id"] in known
        for event in events
        if event.kind in ("worker_leave", "worker_join")
    )


def test_zero_churn_emits_no_membership_events(dataset):
    events = generate_event_stream(dataset, seed=5, churn_rate=0.0)
    assert all(
        event.kind in ("new_fact", "prelim_label") for event in events
    )
