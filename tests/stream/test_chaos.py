"""Seeded delivery degradation: stateless draws, deterministic plans."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.stream import StreamChaos, StreamEvent
from repro.stream.chaos import STREAM_CHAOS_ACTIONS


def _events(count: int) -> list[StreamEvent]:
    return [
        StreamEvent(
            seq=index,
            time=float(index),
            kind="new_fact",
            payload={"fact_id": index},
        )
        for index in range(count)
    ]


def test_rate_validation():
    with pytest.raises(ValueError):
        StreamChaos(drop=0.6, stall=0.5)
    with pytest.raises(ValueError):
        StreamChaos(reorder=-0.1)
    with pytest.raises(ValueError):
        StreamChaos(reorder=0.1, reorder_shift=0)


def test_disabled_chaos_is_identity():
    chaos = StreamChaos()
    assert not chaos.enabled
    events = _events(10)
    assert chaos.plan_delivery(events) == events


def test_action_draws_are_stateless_and_seeded():
    chaos = StreamChaos(drop=0.1, stall=0.2, reorder=0.2, duplicate=0.1, seed=9)
    twin = StreamChaos(drop=0.1, stall=0.2, reorder=0.2, duplicate=0.1, seed=9)
    actions = [chaos.action_for(seq) for seq in range(200)]
    assert actions == [twin.action_for(seq) for seq in range(200)]
    # draws are per-event, so evaluation order cannot matter
    assert actions[::-1] == [
        chaos.action_for(seq) for seq in reversed(range(200))
    ]
    assert set(actions) - {None} <= set(STREAM_CHAOS_ACTIONS)


def test_plan_delivery_is_deterministic():
    chaos = StreamChaos(reorder=0.3, duplicate=0.15, stall=0.1, seed=4)
    events = _events(60)
    assert chaos.plan_delivery(events) == chaos.plan_delivery(events)


def test_drop_removes_and_duplicate_doubles():
    events = _events(120)
    chaos = StreamChaos(drop=0.2, duplicate=0.2, seed=2)
    delivered = Counter(event.seq for event in chaos.plan_delivery(events))
    dropped = [
        event.seq
        for event in events
        if chaos.action_for(event.seq) == "drop"
    ]
    doubled = [
        event.seq
        for event in events
        if chaos.action_for(event.seq) == "duplicate"
    ]
    assert dropped and doubled  # the seed exercises both paths
    assert all(delivered[seq] == 0 for seq in dropped)
    assert all(delivered[seq] == 2 for seq in doubled)
    assert all(
        delivered[event.seq] == 1
        for event in events
        if event.seq not in set(dropped) | set(doubled)
    )


def test_reorder_is_a_permutation():
    events = _events(80)
    chaos = StreamChaos(reorder=0.4, stall=0.2, seed=6)
    delivered = chaos.plan_delivery(events)
    assert sorted(event.seq for event in delivered) == [
        event.seq for event in events
    ]
    assert [event.seq for event in delivered] != [
        event.seq for event in events
    ]


def test_dict_round_trip_and_parse():
    chaos = StreamChaos(
        drop=0.05, stall=0.1, reorder=0.2, duplicate=0.1, seed=3
    )
    assert StreamChaos.from_dict(chaos.to_dict()) == chaos
    parsed = StreamChaos.parse("reorder=0.2,duplicate=0.1", seed=5)
    assert parsed.reorder == 0.2
    assert parsed.duplicate == 0.1
    assert parsed.seed == 5


def test_from_env():
    assert StreamChaos.from_env(environ={}) is None
    chaos = StreamChaos.from_env(
        environ={
            "REPRO_STREAM_CHAOS": "stall=0.3",
            "REPRO_STREAM_CHAOS_SEED": "11",
        }
    )
    assert chaos is not None
    assert chaos.stall == 0.3
    assert chaos.seed == 11
