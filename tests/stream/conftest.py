"""Shared fixtures and helpers for the streaming-runtime suite.

The CI ``stream-chaos`` job sets ``REPRO_STREAM_CHAOS`` (and a seed)
before running this directory, so :func:`build_spec` honors the
environment plan when one is present and falls back to a fixed local
chaos mix otherwise — every test in the suite then exercises the same
degraded delivery the job's matrix prescribes.
"""

from __future__ import annotations

import pytest

from repro.datasets.synthetic import make_synthetic_dataset
from repro.stream import (
    StreamChaos,
    StreamSpec,
    generate_event_stream,
    make_arrivals,
)

#: Checking budget used by the resume/byte-identity campaigns.
BUDGET = 40.0


@pytest.fixture(scope="session")
def dataset():
    return make_synthetic_dataset(
        num_groups=3, group_size=3, answers_per_fact=6, seed=1
    )


def build_spec(**overrides) -> StreamSpec:
    """The suite's canonical streamed-campaign spec.

    ``REPRO_STREAM_CHAOS`` (the CI matrix) wins over the local default
    chaos mix; explicit ``chaos=...`` overrides win over both.
    """
    base = dict(
        rate=50.0,
        votes_per_fact=3,
        group_size=3,
        target_votes=2,
        churn=0.1,
        seed=7,
        chaos=StreamChaos.from_env()
        or StreamChaos(reorder=0.15, duplicate=0.1, stall=0.05, seed=3),
    )
    base.update(overrides)
    return StreamSpec(**base)


def events_for(dataset, spec: StreamSpec):
    return generate_event_stream(
        dataset,
        theta=spec.theta,
        votes_per_fact=spec.votes_per_fact,
        arrivals=make_arrivals(spec.arrival, spec.rate),
        seed=spec.seed,
        churn_rate=spec.churn,
        window=spec.window,
    )


def experts_for(dataset, spec: StreamSpec):
    return dataset.split_crowd(spec.theta)[0]
