"""StreamingCampaign event-loop behavior under degraded delivery."""

from __future__ import annotations

import pytest

from repro.stream import StreamChaos, StreamEvent, StreamingCampaign

from .conftest import BUDGET, build_spec, events_for, experts_for


def _run_campaign(dataset, spec, **kwargs):
    campaign = StreamingCampaign(
        events_for(dataset, spec),
        experts_for(dataset, spec),
        BUDGET,
        spec=spec,
        **kwargs,
    )
    campaign.run()
    return campaign


def test_every_delivery_slot_is_accounted_for(dataset):
    campaign = _run_campaign(dataset, build_spec())
    stats = campaign.stats()
    # every consumed slot was admitted, deduplicated, or dropped late
    assert (
        stats["admitted"] + stats["duplicates"] + stats["late_dropped"]
        == stats["cursor"]
    )
    assert stats["cursor"] == stats["deliveries"]
    assert campaign.finished
    assert stats["backlog"] == 0
    assert stats["late_admitted"] <= stats["admitted"]


def test_duplicates_are_admitted_exactly_once(dataset):
    # chaos pinned explicitly: the env matrix may inject a plan with
    # no duplication, and this test is *about* the dedup path
    spec = build_spec(
        chaos=StreamChaos(reorder=0.15, duplicate=0.2, seed=3)
    )
    campaign = _run_campaign(dataset, spec)
    stats = campaign.stats()
    assert stats["duplicates"] > 0  # the fixture chaos duplicates events
    # dedup means admissions never exceed the generated log length
    assert stats["admitted"] <= len(events_for(dataset, spec))


def test_stalled_arrivals_force_straggler_seals(dataset):
    spec = build_spec(
        arrival="stalled",
        rate=100.0,
        allowed_lateness=0.5,
        straggler_timeout=1.0,
        target_votes=10**6,  # unreachable: only timeouts can seal
        chaos=None,
        churn=0.0,
    )
    campaign = _run_campaign(dataset, spec)
    stats = campaign.stats()
    assert stats["groups_sealed"] > 0
    assert stats["forced_seals"] == stats["groups_sealed"]
    assert campaign.finished


def test_far_late_events_are_dropped(dataset):
    spec = build_spec(
        allowed_lateness=1.0,
        straggler_timeout=2.0,
        chaos=None,
        churn=0.0,
    )
    events = [
        StreamEvent(
            seq=0,
            time=100.0,
            kind="new_fact",
            payload={
                "fact_id": 0,
                "instance_id": "i0",
                "label": "positive",
                "truth": True,
            },
        ),
        # 98.5 s behind the watermark — far past the straggler grace
        StreamEvent(
            seq=1,
            time=0.5,
            kind="prelim_label",
            payload={"fact_id": 0, "worker_id": "w0", "answer": True},
        ),
    ]
    campaign = StreamingCampaign(
        events, experts_for(dataset, spec), BUDGET, spec=spec
    )
    campaign.run()
    stats = campaign.stats()
    assert stats["late_dropped"] == 1
    assert stats["admitted"] == 1


def test_vote_after_seal_becomes_out_of_band_update(dataset):
    spec = build_spec(
        group_size=1,
        target_votes=1,
        chaos=None,
        churn=0.0,
        rounds_per_event=1,
    )
    payload = {
        "fact_id": 0,
        "instance_id": "i0",
        "label": "positive",
        "truth": True,
    }
    events = [
        StreamEvent(seq=0, time=0.1, kind="new_fact", payload=payload),
        StreamEvent(
            seq=1,
            time=0.2,
            kind="prelim_label",
            payload={"fact_id": 0, "worker_id": "w0", "answer": True},
        ),
        # arrives after fact 0's single-fact group sealed
        StreamEvent(
            seq=2,
            time=0.3,
            kind="prelim_label",
            payload={
                "fact_id": 0,
                "worker_id": "w1",
                "accuracy": 0.7,
                "answer": False,
            },
        ),
    ]
    campaign = StreamingCampaign(
        events, experts_for(dataset, spec), BUDGET, spec=spec
    )
    campaign.run()
    stats = campaign.stats()
    assert stats["groups_sealed"] >= 1
    assert stats["out_of_band"] == 1
    assert campaign.session is not None
    kinds = [event.kind for event in campaign.session.incidents]
    assert "late_admit" in kinds
    assert "group_sealed" in kinds


def test_churn_flows_through_the_trust_supervisor(dataset):
    spec = build_spec(churn=0.4, chaos=None)
    campaign = _run_campaign(dataset, spec)
    stats = campaign.stats()
    assert stats["joins"] + stats["leaves"] > 0
    assert campaign.session is not None
    kinds = {event.kind for event in campaign.session.incidents}
    # at least one membership change happened after the session formed
    assert kinds & {"worker_join", "worker_leave"}


def test_run_respects_max_events_and_resumes_consumption(dataset):
    spec = build_spec()
    events = events_for(dataset, spec)
    campaign = StreamingCampaign(
        events, experts_for(dataset, spec), BUDGET, spec=spec
    )
    campaign.run(max_events=5)
    assert campaign.cursor == 5
    assert not campaign.finished
    assert campaign.backlog > 0
    campaign.run()
    assert campaign.drained
    assert campaign.finished


def test_result_reports_the_checking_outcome(dataset):
    campaign = _run_campaign(dataset, build_spec())
    result = campaign.result()
    assert result is not None
    assert set(result.final_labels) <= {
        int(fact_id) for fact_id in dataset.fact_ids
    }
    assert len(result.final_labels) > 0
    assert 0.0 < campaign.spent_budget <= BUDGET
