"""Streamed campaigns through the multi-tenant service.

Detach/reattach byte-identity, bootstrap-phase attach, backpressure
into the admission controller, and the retry-after hint on
queue-saturation rejections.
"""

from __future__ import annotations

import pytest

from repro.service import (
    CampaignService,
    CampaignSpec,
    CampaignStatus,
    ServicePolicy,
    ServiceSaturatedError,
)
from repro.engine.ledger import BudgetLedger
from repro.service.admission import AdmissionController
from repro.simulation.session import SessionConfig

from .conftest import build_spec


def stream_spec_for(dataset, tenant, name, *, stream, budget=30.0, seed=0):
    return CampaignSpec(
        tenant=tenant,
        name=name,
        dataset=dataset,
        config=SessionConfig(budget=budget, k=1, seed=seed),
        stream=stream,
    )


def test_streamed_campaign_is_inline_only(dataset):
    with pytest.raises(ValueError, match="inline-only"):
        CampaignSpec(
            tenant="t",
            name="c",
            dataset=dataset,
            config=SessionConfig(budget=10.0, k=1, seed=0),
            stream=build_spec(),
            inline=False,
        )


def test_streamed_campaign_completes_via_service(dataset, tmp_path):
    stream = build_spec()
    with CampaignService(
        100.0, journal_root=tmp_path / "svc"
    ) as service:
        handle = service.submit(
            stream_spec_for(dataset, "acme", "live", stream=stream)
        )
        service.run_until_idle()
        assert handle.status is CampaignStatus.COMPLETED
        result = service.result(handle)
        assert result is not None
        assert len(result.final_labels) > 0
        assert handle.spent > 0.0
        assert service.ledger.audit() == []
        stats = service.stats()
        assert stats["stream_backlog"] == 0  # drained
        assert "effective_queue_limit" in stats


def test_detach_restart_attach_is_byte_identical(dataset, tmp_path):
    stream = build_spec()

    def spec():
        return stream_spec_for(dataset, "acme", "resumed", stream=stream)

    with CampaignService(
        100.0, journal_root=tmp_path / "ref"
    ) as service:
        service.submit(
            stream_spec_for(dataset, "acme", "resumed", stream=stream)
        )
        service.run_until_idle()
    reference = (tmp_path / "ref/acme/resumed.jsonl").read_bytes()

    with CampaignService(
        100.0, journal_root=tmp_path / "svc"
    ) as service:
        handle = service.submit(spec())
        for _ in range(3):
            service.step()
        service.detach(handle)
        assert handle.status is CampaignStatus.DETACHED
    # a *fresh* service instance adopts the journal from disk
    with CampaignService(
        100.0, journal_root=tmp_path / "svc"
    ) as service:
        handle = service.attach(spec())
        service.run_until_idle()
        assert handle.status is CampaignStatus.COMPLETED
    assert (tmp_path / "svc/acme/resumed.jsonl").read_bytes() == reference


def test_bootstrap_phase_attach_before_any_session(dataset, tmp_path):
    # a group size larger than the early stream and an unreachable
    # straggler horizon keep the campaign in its pre-session bootstrap
    stream = build_spec(
        group_size=12, target_votes=2, straggler_timeout=1e9, chaos=None
    )

    def spec():
        return stream_spec_for(dataset, "acme", "boot", stream=stream)

    with CampaignService(
        100.0, journal_root=tmp_path / "svc"
    ) as service:
        handle = service.submit(spec())
        service.step()
        assert handle.spent == 0.0  # nothing sealed, nothing charged
        service.detach(handle)
    with CampaignService(
        100.0, journal_root=tmp_path / "svc"
    ) as service:
        handle = service.attach(spec())
        service.run_until_idle()
        assert handle.status is CampaignStatus.COMPLETED
        assert handle.spent > 0.0


def test_backlog_shrinks_the_effective_queue_limit():
    controller = AdmissionController(
        BudgetLedger(100.0), queue_limit=8, backlog_per_slot=10
    )
    assert controller.effective_queue_limit == 8
    controller.observe_backlog(35)
    assert controller.backlog == 35
    assert controller.effective_queue_limit == 5
    controller.observe_backlog(10_000)
    assert controller.effective_queue_limit == 1  # never below one
    controller.observe_backlog(0)
    assert controller.effective_queue_limit == 8
    with pytest.raises(ValueError):
        controller.observe_backlog(-1)


def test_stream_backlog_feeds_admission(dataset, tmp_path):
    stream = build_spec()
    with CampaignService(
        100.0,
        policy=ServicePolicy(slots=1, queue_limit=8),
        journal_root=tmp_path / "svc",
    ) as service:
        service.submit(
            stream_spec_for(dataset, "acme", "feed", stream=stream)
        )
        service.step()
        stats = service.stats()
        # mid-stream: undelivered events register as queue pressure
        assert stats["stream_backlog"] > 0
        assert stats["effective_queue_limit"] <= 8
        service.run_until_idle()
        assert service.stats()["stream_backlog"] == 0


def test_queue_rejection_carries_a_retry_hint(dataset, tmp_path):
    with CampaignService(
        1000.0,
        policy=ServicePolicy(slots=1, queue_limit=2),
        journal_root=tmp_path / "svc",
    ) as service:
        for index in range(2):
            service.submit(
                stream_spec_for(
                    dataset,
                    "acme",
                    f"c{index}",
                    stream=build_spec(),
                    seed=index,
                )
            )
        with pytest.raises(ServiceSaturatedError) as excinfo:
            service.submit(
                stream_spec_for(
                    dataset, "acme", "overflow", stream=build_spec(), seed=9
                )
            )
        assert excinfo.value.reason == "queue"
        assert excinfo.value.retry_after_rounds >= 1
        service.run_until_idle()


def test_ledger_rejection_has_no_retry_hint(dataset, tmp_path):
    with CampaignService(
        20.0, journal_root=tmp_path / "svc"
    ) as service:
        service.submit(
            stream_spec_for(
                dataset, "acme", "big", stream=build_spec(), budget=18.0
            )
        )
        with pytest.raises(ServiceSaturatedError) as excinfo:
            service.submit(
                stream_spec_for(
                    dataset,
                    "acme",
                    "broke",
                    stream=build_spec(),
                    budget=18.0,
                    seed=1,
                )
            )
        assert excinfo.value.reason == "ledger"
        assert excinfo.value.retry_after_rounds == 0
        service.run_until_idle()
