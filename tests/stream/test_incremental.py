"""Watermarks and the incremental initializer.

The load-bearing property: a group sealed from streamed votes is
**bit-identical** to the batch initialization
(:func:`~repro.core.update.initialize_from_votes`) computed on the same
vote prefix — no float drift between streaming and batch bootstrap.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.facts import Fact, FactSet
from repro.core.update import initialize_from_votes
from repro.stream import StreamingBeliefBuilder, WatermarkTracker

# ----------------------------------------------------------------------
# watermark


def test_watermark_trails_max_admitted_time():
    tracker = WatermarkTracker(allowed_lateness=2.0)
    assert tracker.watermark == -2.0
    tracker.observe(10.0)
    assert tracker.watermark == 8.0
    assert tracker.lateness_of(7.0) == pytest.approx(1.0)
    assert tracker.lateness_of(9.0) == pytest.approx(-1.0)


def test_watermark_is_monotone():
    tracker = WatermarkTracker(allowed_lateness=1.0)
    tracker.observe(5.0)
    tracker.observe(3.0)  # admitting a late event must not rewind
    assert tracker.max_time == 5.0


def test_watermark_state_round_trip():
    tracker = WatermarkTracker(allowed_lateness=3.5)
    tracker.observe(12.25)
    clone = WatermarkTracker.from_state(tracker.state())
    assert clone.watermark == tracker.watermark
    assert clone.allowed_lateness == tracker.allowed_lateness


# ----------------------------------------------------------------------
# builder mechanics


def test_duplicate_facts_and_sealed_votes_are_rejected():
    builder = StreamingBeliefBuilder(group_size=1, target_votes=1)
    assert builder.add_fact(7, time=0.0)
    assert not builder.add_fact(7, time=1.0)
    assert builder.add_vote(7, True)
    (sealed,) = builder.sealable(watermark=0.0)
    state, forced = sealed
    assert not forced
    assert builder.is_sealed(7)
    assert not builder.add_vote(7, False)
    assert not builder.add_fact(7, time=2.0)


def test_normal_seal_waits_for_the_vote_target():
    builder = StreamingBeliefBuilder(group_size=2, target_votes=2)
    builder.add_fact(1, time=0.0)
    builder.add_fact(2, time=0.1)
    builder.add_vote(1, True)
    builder.add_vote(1, True)
    builder.add_vote(2, True)
    assert builder.sealable(watermark=5.0) == []
    builder.add_vote(2, False)
    ((state, forced),) = builder.sealable(watermark=5.0)
    assert not forced
    assert [fact.fact_id for fact in state.facts] == [1, 2]


def test_straggler_timeout_forces_a_short_unvoted_seal():
    builder = StreamingBeliefBuilder(
        group_size=3, target_votes=2, straggler_timeout=10.0
    )
    builder.add_fact(1, time=0.0)
    builder.add_fact(2, time=1.0)
    # only one vote ever arrives, and only for fact 1
    builder.add_vote(1, True)
    assert builder.sealable(watermark=9.0) == []
    ((state, forced),) = builder.sealable(watermark=10.0)
    assert forced
    assert [fact.fact_id for fact in state.facts] == [1, 2]
    # the unvoted fact initialized at the uninformative 0.5 fraction
    batch = initialize_from_votes(
        FactSet(
            [
                Fact(fact_id=1, instance_id="", label="positive"),
                Fact(fact_id=2, instance_id="", label="positive"),
            ]
        ),
        {1: 1.0, 2: 0.5},
        smoothing=0.01,
    )
    assert np.array_equal(state.probabilities, batch.probabilities)


def test_builder_state_round_trip_preserves_sealing():
    builder = StreamingBeliefBuilder(group_size=2, target_votes=1)
    builder.add_fact(1, instance_id="a", label="positive", time=0.0)
    builder.add_fact(2, instance_id="b", label="negative", time=0.5)
    builder.add_vote(1, True)
    builder.add_vote(2, False)
    clone = StreamingBeliefBuilder.from_state(builder.state())
    ((original, _),) = builder.sealable(watermark=0.0)
    ((restored, _),) = clone.sealable(watermark=0.0)
    assert np.array_equal(original.probabilities, restored.probabilities)
    assert [f.fact_id for f in original.facts] == [
        f.fact_id for f in restored.facts
    ]


# ----------------------------------------------------------------------
# the bit-identity property


@settings(derandomize=True, max_examples=50, deadline=None)
@given(st.data())
def test_incremental_initialization_equals_batch(data):
    num_facts = data.draw(st.integers(1, 5), label="num_facts")
    votes = {
        fact_id: data.draw(
            st.lists(st.booleans(), max_size=5), label=f"votes[{fact_id}]"
        )
        for fact_id in range(num_facts)
    }
    builder = StreamingBeliefBuilder(
        group_size=num_facts, target_votes=0, smoothing=0.01
    )
    for fact_id in range(num_facts):
        builder.add_fact(
            fact_id, instance_id=f"i{fact_id}", label="positive", time=0.0
        )
        for answer in votes[fact_id]:
            builder.add_vote(fact_id, answer)
    ((streamed, forced),) = [
        entry for entry in builder.sealable(watermark=0.0)
    ] or [(None, None)]
    assert streamed is not None and not forced
    fractions = {
        fact_id: (
            sum(votes[fact_id]) / len(votes[fact_id])
            if votes[fact_id]
            else 0.5
        )
        for fact_id in range(num_facts)
    }
    batch = initialize_from_votes(
        FactSet(
            [
                Fact(
                    fact_id=fact_id,
                    instance_id=f"i{fact_id}",
                    label="positive",
                )
                for fact_id in range(num_facts)
            ]
        ),
        fractions,
        smoothing=0.01,
    )
    assert np.array_equal(streamed.probabilities, batch.probabilities)


@settings(derandomize=True, max_examples=25, deadline=None)
@given(
    chunks=st.integers(1, 3),
    group_size=st.integers(1, 3),
    seed=st.integers(0, 2**16),
)
def test_chunked_sealing_matches_per_chunk_batch(chunks, group_size, seed):
    """Sealing head chunks one at a time equals batch-building each
    chunk from the same votes — mid-campaign group formation does not
    perturb initialization."""
    rng = np.random.default_rng(seed)
    total = chunks * group_size
    votes = {
        fact_id: [bool(rng.random() < 0.7) for _ in range(3)]
        for fact_id in range(total)
    }
    builder = StreamingBeliefBuilder(group_size=group_size, target_votes=3)
    streamed = []
    for fact_id in range(total):
        builder.add_fact(fact_id, instance_id=f"i{fact_id}", time=0.0)
        for answer in votes[fact_id]:
            builder.add_vote(fact_id, answer)
        streamed.extend(
            state for state, _forced in builder.sealable(watermark=0.0)
        )
    assert len(streamed) == chunks
    for index, state in enumerate(streamed):
        ids = list(range(index * group_size, (index + 1) * group_size))
        batch = initialize_from_votes(
            FactSet(
                [
                    Fact(
                        fact_id=fact_id,
                        instance_id=f"i{fact_id}",
                        label="positive",
                    )
                    for fact_id in ids
                ]
            ),
            {
                fact_id: sum(votes[fact_id]) / len(votes[fact_id])
                for fact_id in ids
            },
            smoothing=0.01,
        )
        assert np.array_equal(state.probabilities, batch.probabilities)
