"""Exactly-once resume: kill a streamed campaign, continue byte-identical.

The acceptance bar from the issue: a chaos-streamed campaign
(reorder + duplicate + stall delivery, expert churn) killed at **every**
event-boundary checkpoint must resume and produce a journal
byte-identical to an uninterrupted run.  Three escalating forms here:

* an in-process kill at every boundary (the exhaustive sweep),
* a real ``SIGKILL`` of a subprocess mid-campaign,
* a torn trailing record (the partial line a kill mid-``write`` leaves).
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.stream import StreamingCampaign

from .conftest import BUDGET, build_spec, events_for, experts_for

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _reference_journal(dataset, spec, path: Path) -> bytes:
    campaign = StreamingCampaign(
        events_for(dataset, spec),
        experts_for(dataset, spec),
        BUDGET,
        spec=spec,
        journal_path=path,
    )
    campaign.run()
    assert campaign.finished
    return path.read_bytes()


@pytest.mark.chaos
def test_kill_at_every_event_boundary_resumes_byte_identical(
    dataset, tmp_path
):
    spec = build_spec()
    events = events_for(dataset, spec)
    experts = experts_for(dataset, spec)
    reference = _reference_journal(dataset, spec, tmp_path / "ref.jsonl")
    for boundary in range(len(events) + 1):
        path = tmp_path / f"kill_{boundary}.jsonl"
        first = StreamingCampaign(
            events, experts, BUDGET, spec=spec, journal_path=path
        )
        first.run(max_events=boundary)
        # "kill": drop the object on the floor, resume from disk alone
        resumed = StreamingCampaign.resume(path, events, experts=experts)
        resumed.run()
        assert resumed.finished
        assert path.read_bytes() == reference, (
            f"journal diverged after kill at boundary {boundary}"
        )


_CHILD_SCRIPT = textwrap.dedent(
    """
    import os
    import signal
    import sys

    from repro.datasets.synthetic import make_synthetic_dataset
    from repro.stream import (
        StreamChaos,
        StreamSpec,
        StreamingCampaign,
        generate_event_stream,
        make_arrivals,
    )

    journal, kill_after = sys.argv[1], int(sys.argv[2])
    dataset = make_synthetic_dataset(
        num_groups=3, group_size=3, answers_per_fact=6, seed=1
    )
    spec = StreamSpec(
        rate=50.0,
        votes_per_fact=3,
        group_size=3,
        target_votes=2,
        churn=0.1,
        seed=7,
        chaos=StreamChaos.from_env()
        or StreamChaos(reorder=0.15, duplicate=0.1, stall=0.05, seed=3),
    )
    events = generate_event_stream(
        dataset,
        theta=spec.theta,
        votes_per_fact=spec.votes_per_fact,
        arrivals=make_arrivals(spec.arrival, spec.rate),
        seed=spec.seed,
        churn_rate=spec.churn,
        window=spec.window,
    )
    campaign = StreamingCampaign(
        events,
        dataset.split_crowd(spec.theta)[0],
        40.0,
        spec=spec,
        journal_path=journal,
    )
    campaign.run(max_events=kill_after)
    os.kill(os.getpid(), signal.SIGKILL)
    """
)


def test_sigkill_mid_campaign_resumes_byte_identical(dataset, tmp_path):
    spec = build_spec()
    events = events_for(dataset, spec)
    experts = experts_for(dataset, spec)
    reference = _reference_journal(dataset, spec, tmp_path / "ref.jsonl")
    journal = tmp_path / "killed.jsonl"
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, str(journal), "9"],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert journal.exists()
    resumed = StreamingCampaign.resume(journal, events, experts=experts)
    resumed.run()
    assert resumed.finished
    assert journal.read_bytes() == reference


def test_torn_trailing_record_is_repaired_on_resume(dataset, tmp_path):
    spec = build_spec()
    events = events_for(dataset, spec)
    experts = experts_for(dataset, spec)
    reference = _reference_journal(dataset, spec, tmp_path / "ref.jsonl")
    journal = tmp_path / "torn.jsonl"
    partial = StreamingCampaign(
        events, experts, BUDGET, spec=spec, journal_path=journal
    )
    partial.run(max_events=7)
    # a kill mid-write leaves a partial final line on disk
    with journal.open("ab") as handle:
        handle.write(b'{"kind": "checkp')
    resumed = StreamingCampaign.resume(journal, events, experts=experts)
    resumed.run()
    assert resumed.finished
    assert journal.read_bytes() == reference


def test_resume_of_a_finished_campaign_is_a_no_op(dataset, tmp_path):
    spec = build_spec()
    events = events_for(dataset, spec)
    journal = tmp_path / "done.jsonl"
    reference = _reference_journal(dataset, spec, journal)
    resumed = StreamingCampaign.resume(
        journal, events, experts=experts_for(dataset, spec)
    )
    assert resumed.finished
    resumed.run()
    assert journal.read_bytes() == reference


def test_sparse_kernel_stream_resumes_byte_identical(dataset, tmp_path):
    """The truncated belief kernel (``belief_epsilon > 0``) holds the
    same exactly-once bar: sealed groups build sparse through
    ``initialize_from_votes``, checkpoints serialize the sparse states
    (marked by their ``epsilon`` key), and a campaign killed at any
    event boundary resumes byte-identical to the uninterrupted run."""
    spec = build_spec(belief_epsilon=0.05)
    events = events_for(dataset, spec)
    experts = experts_for(dataset, spec)
    reference = _reference_journal(dataset, spec, tmp_path / "ref.jsonl")
    assert b'"epsilon":0.05' in reference  # the sparse kernel really ran
    # a thinned boundary sweep — the dense sweep covers the mechanics
    for boundary in range(0, len(events) + 1, 3):
        path = tmp_path / f"sparse_kill_{boundary}.jsonl"
        first = StreamingCampaign(
            events, experts, BUDGET, spec=spec, journal_path=path
        )
        first.run(max_events=boundary)
        resumed = StreamingCampaign.resume(path, events, experts=experts)
        resumed.run()
        assert resumed.finished
        assert path.read_bytes() == reference, (
            f"sparse journal diverged after kill at boundary {boundary}"
        )
