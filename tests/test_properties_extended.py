"""Property-based tests for the aggregation and downstream layers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregation import (
    AnswerMatrix,
    BASELINE_NAMES,
    make_aggregator,
)
from repro.analysis import majority_vote_error
from repro.core.budget import CheckingBudget, CostModel
from repro.core.workers import Crowd
from repro.downstream import GaussianNaiveBayes, LogisticRegression

# --------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------


@st.composite
def answer_matrices(draw):
    """Random sparse binary answer matrices (every task answered)."""
    num_tasks = draw(st.integers(2, 12))
    num_workers = draw(st.integers(2, 6))
    annotations = []
    for task in range(num_tasks):
        count = draw(st.integers(1, num_workers))
        workers = draw(
            st.permutations(list(range(num_workers)))
        )[:count]
        for worker in workers:
            label = draw(st.integers(0, 1))
            annotations.append((task, worker, label))
    return AnswerMatrix(
        annotations,
        num_tasks=num_tasks,
        num_workers=num_workers,
        num_classes=2,
    )


# --------------------------------------------------------------------
# aggregator invariants
# --------------------------------------------------------------------


class TestAggregatorInvariants:
    @pytest.mark.parametrize("name", BASELINE_NAMES)
    @given(matrix=answer_matrices())
    @settings(max_examples=8, deadline=None)
    def test_posteriors_always_valid(self, name, matrix):
        """Every aggregator must return normalized, finite posteriors on
        arbitrary (adversarial) answer matrices."""
        result = make_aggregator(name).fit(matrix)
        assert result.posteriors.shape == (matrix.num_tasks, 2)
        assert np.all(np.isfinite(result.posteriors))
        assert np.all(result.posteriors >= -1e-12)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    @pytest.mark.parametrize("name", BASELINE_NAMES)
    @given(matrix=answer_matrices())
    @settings(max_examples=5, deadline=None)
    def test_reliability_in_unit_interval(self, name, matrix):
        result = make_aggregator(name).fit(matrix)
        if result.worker_reliability is None:
            return
        assert np.all(result.worker_reliability >= -1e-9)
        assert np.all(result.worker_reliability <= 1 + 1e-9)

    @given(matrix=answer_matrices())
    @settings(max_examples=10, deadline=None)
    def test_unanimous_tasks_get_majority_label(self, matrix):
        """For MV, a task whose every vote is class c must predict c."""
        result = make_aggregator("MV").fit(matrix)
        votes = matrix.vote_counts()
        for task in range(matrix.num_tasks):
            if votes[task, 0] > 0 and votes[task, 1] == 0:
                assert result.predictions[task] == 0
            if votes[task, 1] > 0 and votes[task, 0] == 0:
                assert result.predictions[task] == 1


# --------------------------------------------------------------------
# theory invariants
# --------------------------------------------------------------------


class TestTheoryInvariants:
    @given(
        st.floats(0.0, 0.499),
        st.integers(1, 15).map(lambda n: 2 * n + 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_odd_crowds_never_hurt_below_half(self, error, workers):
        assert majority_vote_error(error, workers) <= error + 1e-12

    @given(st.floats(0.0, 1.0), st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_error_is_probability(self, error, workers):
        value = majority_vote_error(error, workers)
        assert -1e-12 <= value <= 1 + 1e-12

    @given(st.floats(0.01, 0.49), st.integers(1, 7))
    @settings(max_examples=40, deadline=None)
    def test_bigger_odd_crowd_no_worse(self, error, half):
        small = majority_vote_error(error, 2 * half - 1)
        large = majority_vote_error(error, 2 * half + 1)
        assert large <= small + 1e-12


# --------------------------------------------------------------------
# budget invariants
# --------------------------------------------------------------------


class TestBudgetInvariants:
    @given(
        st.floats(0.0, 1000.0),
        st.lists(st.floats(0.5, 1.0), min_size=1, max_size=5),
        st.integers(1, 10),
    )
    @settings(max_examples=60, deadline=None)
    def test_affordable_rounds_always_chargeable(
        self, total, accuracies, k
    ):
        """Whatever affordable_queries returns must be chargeable, and
        the loop must terminate with non-negative remaining budget."""
        experts = Crowd.from_accuracies(accuracies)
        budget = CheckingBudget(total)
        rounds = 0
        while True:
            affordable = budget.affordable_queries(experts, k)
            if affordable == 0:
                break
            budget.charge_round(affordable, experts)
            rounds += 1
            assert rounds < 10_000
        assert budget.remaining >= -1e-9
        assert budget.spent <= total + 1e-9

    @given(
        st.lists(st.floats(0.5, 1.0), min_size=1, max_size=4),
        st.floats(0.1, 3.0),
        st.integers(1, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_cost_model_round_cost_additive(self, accuracies, rate, k):
        experts = Crowd.from_accuracies(accuracies)
        model = CostModel.accuracy_proportional(experts, rate=rate)
        single = model.round_cost(1, experts)
        assert model.round_cost(k, experts) == pytest.approx(k * single)


# --------------------------------------------------------------------
# downstream model invariants
# --------------------------------------------------------------------


class TestDownstreamInvariants:
    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_models_never_nan(self, seed):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(40, 3)) * rng.uniform(0.01, 10)
        labels = rng.integers(0, 2, 40)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        for factory in (LogisticRegression, GaussianNaiveBayes):
            model = factory().fit(features, labels)
            probabilities = model.predict_proba(features)
            assert np.all(np.isfinite(probabilities))

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_duplicating_examples_equals_doubling_weight(self, seed):
        """2x weight on an example == including it twice (NB exact)."""
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(30, 2))
        labels = rng.integers(0, 2, 30)
        if labels.min() == labels.max():
            labels[0] = 1 - labels[0]
        weights = np.ones(30)
        weights[:5] = 2.0
        weighted = GaussianNaiveBayes().fit(
            features, labels, sample_weight=weights
        )
        duplicated = GaussianNaiveBayes().fit(
            np.vstack([features, features[:5]]),
            np.concatenate([labels, labels[:5]]),
        )
        probe = rng.normal(size=(10, 2))
        assert np.allclose(
            weighted.predict_proba(probe), duplicated.predict_proba(probe)
        )
