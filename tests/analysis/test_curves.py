"""Unit tests for repro.analysis.curves."""

import pytest

from repro.analysis import (
    area_under_curve,
    budget_to_reach,
    crossover_budget,
    dominance_fraction,
    improvement_rate,
)


class TestCrossoverBudget:
    def test_simple_crossover_interpolated(self):
        budgets = [0, 10, 20]
        a = [0.0, 0.5, 1.0]
        b = [0.4, 0.4, 0.4]
        # A - B: -0.4, +0.1, +0.6 -> crosses between 0 and 10 at 0.8 of
        # the way: 8.0.
        assert crossover_budget(budgets, a, b) == pytest.approx(8.0)

    def test_leading_from_start_returns_none(self):
        budgets = [0, 10]
        assert crossover_budget(budgets, [0.9, 0.9], [0.1, 0.2]) is None

    def test_never_crossing_returns_none(self):
        budgets = [0, 10]
        assert crossover_budget(budgets, [0.1, 0.2], [0.9, 0.9]) is None

    def test_exact_touch_counts(self):
        budgets = [0, 10]
        assert crossover_budget(
            budgets, [0.1, 0.5], [0.5, 0.5]
        ) == pytest.approx(10.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            crossover_budget([0, 1], [0.1], [0.2, 0.3])

    def test_unsorted_budgets_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            crossover_budget([1, 0], [0.1, 0.2], [0.3, 0.4])


class TestBudgetToReach:
    def test_interpolated(self):
        budgets = [0, 100]
        values = [0.5, 1.0]
        assert budget_to_reach(budgets, values, 0.75) == pytest.approx(50.0)

    def test_already_reached(self):
        assert budget_to_reach([0, 10], [0.9, 0.95], 0.8) == 0.0

    def test_never_reached(self):
        assert budget_to_reach([0, 10], [0.1, 0.2], 0.9) is None

    def test_flat_segment(self):
        assert budget_to_reach(
            [0, 10, 20], [0.1, 0.5, 0.5], 0.5
        ) == pytest.approx(10.0)


class TestAreaUnderCurve:
    def test_constant_curve(self):
        assert area_under_curve([0, 10], [0.7, 0.7]) == pytest.approx(0.7)

    def test_linear_curve_average(self):
        assert area_under_curve([0, 10], [0.0, 1.0]) == pytest.approx(0.5)

    def test_zero_span_rejected(self):
        with pytest.raises(ValueError):
            area_under_curve([5, 5], [0.1, 0.2])

    def test_comparability(self):
        """A curve that rises sooner has a larger normalized AUC."""
        budgets = [0, 10, 20]
        early = [0.9, 0.95, 0.95]
        late = [0.5, 0.6, 0.95]
        assert area_under_curve(budgets, early) > area_under_curve(
            budgets, late
        )


class TestImprovementRate:
    def test_rate(self):
        assert improvement_rate([0, 100], [-50.0, -10.0]) == pytest.approx(
            0.4
        )

    def test_negative_rate(self):
        assert improvement_rate([0, 10], [0.9, 0.8]) == pytest.approx(-0.01)


class TestDominanceFraction:
    def test_full_dominance(self):
        assert dominance_fraction([1, 2, 3], [0, 1, 2]) == 1.0

    def test_partial(self):
        assert dominance_fraction([1, 0, 3], [0, 1, 2]) == pytest.approx(
            2 / 3
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dominance_fraction([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            dominance_fraction([1], [1, 2])
