"""Unit tests for the closed-form theory helpers, validated against
simulation."""

import numpy as np
import pytest

from repro.analysis import (
    answers_to_reach_confidence,
    greedy_gain_guarantee,
    majority_vote_error,
    posterior_error_after_checks,
)


class TestMajorityVoteError:
    def test_paper_intro_formula_n3(self):
        """Intro: three workers with error e -> 3e^2(1-e) + e^3."""
        for error in (0.1, 0.3, 0.45):
            expected = 3 * error**2 * (1 - error) + error**3
            assert majority_vote_error(error, 3) == pytest.approx(expected)

    def test_crowd_beats_individual_below_half(self):
        """The intro's claim: aggregated error < individual error for
        e < 0.5."""
        for error in (0.1, 0.2, 0.4):
            assert majority_vote_error(error, 3) < error

    def test_crowd_hurts_above_half(self):
        assert majority_vote_error(0.7, 3) > 0.7

    def test_single_worker_identity(self):
        assert majority_vote_error(0.3, 1) == pytest.approx(0.3)

    def test_coin_flip_stays_half(self):
        for workers in (1, 2, 3, 7):
            assert majority_vote_error(0.5, workers) == pytest.approx(0.5)

    def test_even_crowd_tie_handling(self):
        # Two workers, error e: wrong iff both err (e^2) or tie (half of
        # 2e(1-e)) -> e^2 + e(1-e) = e.
        assert majority_vote_error(0.3, 2) == pytest.approx(0.3)

    def test_large_crowd_goes_to_zero(self):
        assert majority_vote_error(0.3, 101) < 1e-4

    def test_matches_simulation(self, rng):
        error, workers = 0.35, 5
        trials = 20000
        wrong = (rng.random((trials, workers)) < error).sum(axis=1)
        empirical = np.mean(wrong > workers // 2)
        assert majority_vote_error(error, workers) == pytest.approx(
            empirical, abs=0.01
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            majority_vote_error(1.5, 3)
        with pytest.raises(ValueError):
            majority_vote_error(0.3, 0)


class TestPosteriorErrorAfterChecks:
    def test_zero_checks_prior_mode(self):
        assert posterior_error_after_checks(0.7, 0.9, 0) == 0.0
        assert posterior_error_after_checks(0.3, 0.9, 0) == 1.0
        assert posterior_error_after_checks(0.5, 0.9, 0) == 0.5

    def test_oracle_expert_resolves(self):
        assert posterior_error_after_checks(0.3, 1.0, 1) == 0.0

    def test_error_decreases_with_checks(self):
        errors = [
            posterior_error_after_checks(0.6, 0.85, checks)
            for checks in (1, 3, 5, 9)
        ]
        assert errors == sorted(errors, reverse=True)

    def test_matches_simulation(self, rng):
        prior, accuracy, checks = 0.6, 0.85, 3
        trials = 20000
        correct_answers = (
            rng.random((trials, checks)) < accuracy
        ).sum(axis=1)
        log_odds = np.log(prior / (1 - prior)) + (
            2 * correct_answers - checks
        ) * np.log(accuracy / (1 - accuracy))
        empirical = np.mean(log_odds < 0) + 0.5 * np.mean(log_odds == 0)
        assert posterior_error_after_checks(
            prior, accuracy, checks
        ) == pytest.approx(empirical, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            posterior_error_after_checks(0.0, 0.9, 1)
        with pytest.raises(ValueError):
            posterior_error_after_checks(0.7, 0.9, -1)


class TestAnswersToReachConfidence:
    def test_already_confident(self):
        assert answers_to_reach_confidence(0.96, 0.9, 0.95) == 0

    def test_single_strong_answer(self):
        # 0.5 prior, 0.9 expert: posterior 0.9 >= 0.85 after one answer.
        assert answers_to_reach_confidence(0.5, 0.9, 0.85) == 1

    def test_weak_expert_needs_more(self):
        strong = answers_to_reach_confidence(0.5, 0.95, 0.99)
        weak = answers_to_reach_confidence(0.5, 0.7, 0.99)
        assert weak > strong

    def test_coin_flip_unreachable(self):
        assert answers_to_reach_confidence(0.6, 0.5, 0.9) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            answers_to_reach_confidence(0.5, 0.9, 0.4)


class TestGreedyGainGuarantee:
    def test_fraction(self):
        assert greedy_gain_guarantee(1.0) == pytest.approx(1 - 1 / np.e)

    def test_zero(self):
        assert greedy_gain_guarantee(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            greedy_gain_guarantee(-1.0)

    def test_guarantee_holds_on_real_instance(self, two_experts):
        """The measured greedy gain must respect its own bound on a
        random instance (ties the formula to the selectors)."""
        from repro.core import (
            BeliefState,
            ExactSelector,
            FactSet,
            FactoredBelief,
            GreedySelector,
            conditional_entropy,
            observation_entropy,
        )

        rng = np.random.default_rng(6)
        facts = FactSet.from_ids(range(4))
        belief = FactoredBelief(
            [BeliefState(facts, rng.dirichlet(np.ones(16)))]
        )
        prior = observation_entropy(belief[0])
        opt = ExactSelector().select(belief, two_experts, 2)
        greedy = GreedySelector().select(belief, two_experts, 2)
        opt_gain = prior - conditional_entropy(belief[0], opt, two_experts)
        greedy_gain = prior - conditional_entropy(
            belief[0], greedy, two_experts
        )
        assert greedy_gain >= greedy_gain_guarantee(opt_gain) - 1e-9
