"""Unit tests for multi-seed replication."""

import numpy as np
import pytest

from repro.analysis import (
    PairedComparison,
    compare_selectors,
    replicate_session,
)
from repro.core import GreedySelector, RandomSelector
from repro.simulation import SessionConfig


BUDGETS = (10, 20, 30)


class TestReplicateSession:
    def test_shapes(self, small_dataset):
        config = SessionConfig(budget=30, theta=0.9)
        series = replicate_session(
            small_dataset, config, BUDGETS, seeds=(0, 1, 2)
        )
        assert series.num_runs == 3
        assert len(series.accuracy_mean) == len(BUDGETS)
        assert len(series.quality_std) == len(BUDGETS)

    def test_no_seeds_rejected(self, small_dataset):
        config = SessionConfig(budget=10)
        with pytest.raises(ValueError):
            replicate_session(small_dataset, config, BUDGETS, seeds=())

    def test_std_zero_for_single_seed(self, small_dataset):
        config = SessionConfig(budget=20)
        series = replicate_session(
            small_dataset, config, BUDGETS, seeds=(5,)
        )
        assert all(value == 0.0 for value in series.accuracy_std)

    def test_identical_seeds_zero_std(self, small_dataset):
        config = SessionConfig(budget=20)
        series = replicate_session(
            small_dataset, config, BUDGETS, seeds=(7, 7)
        )
        assert all(value == 0.0 for value in series.quality_std)

    def test_mean_quality_improves_with_budget(self, small_dataset):
        config = SessionConfig(budget=60)
        series = replicate_session(
            small_dataset, config, (10, 60), seeds=(0, 1, 2)
        )
        assert series.quality_mean[-1] > series.quality_mean[0]

    def test_to_dict(self, small_dataset):
        config = SessionConfig(budget=10)
        series = replicate_session(
            small_dataset, config, BUDGETS, seeds=(0,), label="X"
        )
        data = series.to_dict()
        assert data["label"] == "X"
        assert data["num_runs"] == 1


class TestCompareSelectors:
    def test_paired_comparison_fields(self, small_dataset):
        config = SessionConfig(budget=30)
        comparison = compare_selectors(
            small_dataset,
            config,
            selector_a=GreedySelector,
            selector_b=lambda: RandomSelector(rng=0),
            seeds=(0, 1, 2),
            label_a="Approx",
            label_b="Random",
        )
        assert len(comparison.final_quality_diffs) == 3
        assert comparison.wins_a + comparison.wins_b <= 3

    def test_greedy_usually_beats_random(self, small_dataset):
        config = SessionConfig(budget=40)
        comparison = compare_selectors(
            small_dataset,
            config,
            selector_a=GreedySelector,
            selector_b=lambda: RandomSelector(rng=1),
            seeds=(0, 1, 2, 3),
        )
        assert comparison.mean_difference > -0.5
        assert comparison.wins_a >= comparison.wins_b


class TestPairedComparisonStats:
    def test_mean_and_wins(self):
        comparison = PairedComparison(
            label_a="a", label_b="b",
            final_quality_diffs=[1.0, -0.5, 2.0],
        )
        assert comparison.mean_difference == pytest.approx(2.5 / 3)
        assert comparison.wins_a == 2
        assert comparison.wins_b == 1
