"""Failure-injection and robustness tests for the HC loop.

What happens when the model's assumptions are violated: adversarial
"experts", wildly miscalibrated accuracies, contradictory evidence,
degenerate datasets.  The framework should degrade gracefully (never
crash, never silently produce invalid probabilities).
"""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    HierarchicalCrowdsourcing,
    Worker,
    total_quality,
)
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.simulation import (
    MismatchedExpertPanel,
    SessionConfig,
    SimulatedExpertPanel,
    run_hc_session,
)

TRUTH = {0: True, 1: False, 2: True, 3: False}


def _belief() -> FactoredBelief:
    return FactoredBelief(
        [
            BeliefState.from_marginals(FactSet.from_ids([0, 1]), [0.7, 0.3]),
            BeliefState.from_marginals(FactSet.from_ids([2, 3]), [0.6, 0.4]),
        ]
    )


class TestAdversarialExperts:
    def test_loop_survives_adversarial_checker(self):
        """A sub-0.5 'expert' (violating the error model) must not crash
        the loop; beliefs stay valid distributions."""
        liar = Crowd([Worker("liar", 0.2)])
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        runner = HierarchicalCrowdsourcing(liar, k=1)
        result = runner.run(_belief(), panel, budget=10,
                            ground_truth=TRUTH)
        for group in result.belief:
            assert group.probabilities.sum() == pytest.approx(1.0)
            assert np.all(group.probabilities >= 0)

    def test_known_adversary_is_informative(self):
        """If the operator KNOWS the worker lies (accuracy 0.2 on the
        Worker object), Bayes inverts the answers and quality still
        improves — a lie from a known liar is evidence."""
        liar = Crowd([Worker("liar", 0.2)])
        panel = SimulatedExpertPanel(TRUTH, rng=1)
        runner = HierarchicalCrowdsourcing(liar, k=1)
        belief = _belief()
        result = runner.run(belief, panel, budget=40, ground_truth=TRUTH)
        assert result.history[-1].quality > result.history[0].quality

    def test_unknown_adversary_degrades_quality_belief(self):
        """If the operator believes the liar is accurate (0.95) while
        they answer at 0.05, accuracy against the truth must suffer
        compared to an honest expert."""
        believed = Crowd([Worker("w", 0.95)])
        lying_panel = MismatchedExpertPanel(
            TRUTH, true_accuracies={"w": 0.05}, rng=2
        )
        honest_panel = SimulatedExpertPanel(TRUTH, rng=2)
        runner = HierarchicalCrowdsourcing(believed, k=1)
        lied_to = runner.run(
            _belief(), lying_panel, budget=20, ground_truth=TRUTH
        )
        honest = HierarchicalCrowdsourcing(believed, k=1).run(
            _belief(), honest_panel, budget=20, ground_truth=TRUTH
        )
        assert honest.history[-1].accuracy >= lied_to.history[-1].accuracy


class TestContradictoryEvidence:
    def test_persistent_contradiction_remains_normalized(self):
        """An expert repeatedly contradicting a near-certain belief must
        move it smoothly, never produce NaNs."""
        belief = FactoredBelief(
            [
                BeliefState.from_marginals(
                    FactSet.from_ids([0]), [0.999]
                )
            ]
        )
        contrarian = Crowd([Worker("c", 0.9)])
        panel = MismatchedExpertPanel(
            {0: True}, true_accuracies={"c": 0.0}, rng=0
        )
        runner = HierarchicalCrowdsourcing(contrarian, k=1)
        result = runner.run(belief, panel, budget=30)
        probabilities = result.belief[0].probabilities
        assert np.all(np.isfinite(probabilities))
        assert probabilities.sum() == pytest.approx(1.0)
        # Enough consistent contradiction flips the belief.
        assert result.belief.marginal(0) < 0.5


class TestDegenerateDatasets:
    def test_all_workers_identical_accuracy(self):
        pool = WorkerPoolSpec(
            num_preliminary=10,
            num_expert=2,
            preliminary_accuracy=(0.7, 0.7),
            expert_accuracy=(0.95, 0.95),
        )
        dataset = make_synthetic_dataset(
            num_groups=5, group_size=3, answers_per_fact=5,
            pool=pool, seed=0,
        )
        result = run_hc_session(
            dataset, SessionConfig(budget=20, seed=0)
        )
        assert result.history[-1].quality >= result.history[0].quality

    def test_minimum_crowd(self):
        """One preliminary worker, one expert — the smallest legal
        hierarchy."""
        pool = WorkerPoolSpec(
            num_preliminary=1,
            num_expert=1,
            preliminary_accuracy=(0.7, 0.7),
            expert_accuracy=(0.95, 0.95),
        )
        dataset = make_synthetic_dataset(
            num_groups=4, group_size=2, answers_per_fact=2,
            pool=pool, seed=1,
        )
        result = run_hc_session(
            dataset, SessionConfig(budget=10, initializer="MV", seed=1)
        )
        assert len(result.history) > 1

    def test_expert_only_answers_still_work_for_baselines(self):
        """theta so low every worker is an 'expert': session must refuse
        cleanly (no CP tier to initialize from)."""
        dataset = make_synthetic_dataset(
            num_groups=3, group_size=2, answers_per_fact=3, seed=2
        )
        with pytest.raises(ValueError, match="no preliminary"):
            run_hc_session(
                dataset, SessionConfig(theta=0.0, budget=10)
            )

    def test_greedy_on_huge_k_terminates(self):
        belief = _belief()
        experts = Crowd.from_accuracies([0.9])
        selected = GreedySelector().select(belief, experts, 10_000)
        assert len(selected) <= belief.num_facts


class TestNumericalStress:
    def test_extremely_peaked_belief_updates(self):
        """Posterior updates on a belief with 1e-12-scale probabilities
        stay finite and normalized."""
        facts = FactSet.from_ids([0, 1])
        probabilities = np.array([1e-12, 1e-12, 1e-12, 1.0])
        belief = BeliefState(facts, probabilities)
        expert = Crowd([Worker("e", 0.99)])
        panel = SimulatedExpertPanel({0: False, 1: False}, rng=0)
        runner = HierarchicalCrowdsourcing(expert, k=1)
        result = runner.run(
            FactoredBelief([belief]), panel, budget=20
        )
        final = result.belief[0].probabilities
        assert np.all(np.isfinite(final))
        assert final.sum() == pytest.approx(1.0)

    def test_quality_monotone_under_consistent_oracle(self):
        """A perfect expert answering truthfully can only improve
        quality round over round."""
        oracle = Crowd([Worker("o", 1.0)])
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        runner = HierarchicalCrowdsourcing(oracle, k=1)
        result = runner.run(_belief(), panel, budget=8,
                            ground_truth=TRUTH)
        qualities = result.qualities
        assert all(
            later >= earlier - 1e-9
            for earlier, later in zip(qualities, qualities[1:])
        )
