"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture
def data_dir(tmp_path):
    """A small generated dataset directory."""
    out = tmp_path / "data"
    code = main([
        "generate", "--out", str(out), "--groups", "6",
        "--group-size", "4", "--answers", "5", "--seed", "1",
    ])
    assert code == 0
    return out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestGenerate:
    def test_writes_files(self, data_dir):
        assert (data_dir / "answer.csv").exists()
        assert (data_dir / "truth.csv").exists()

    def test_output_message(self, tmp_path, capsys):
        main(["generate", "--out", str(tmp_path / "d"), "--groups", "2"])
        out = capsys.readouterr().out
        assert "annotations" in out and "facts" in out


class TestDescribe:
    def test_prints_summary(self, data_dir, capsys):
        code = main([
            "describe", "--data", str(data_dir), "--group-size", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "facts:" in out
        assert "tiering:" in out


class TestAggregate:
    def test_runs_and_reports_accuracy(self, data_dir, capsys):
        code = main([
            "aggregate", "--data", str(data_dir), "--method", "MV",
            "--group-size", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "accuracy" in out

    @pytest.mark.parametrize("method", ["DS", "EBCC", "MV-BETA"])
    def test_methods_by_name(self, data_dir, method, capsys):
        code = main([
            "aggregate", "--data", str(data_dir),
            "--method", method, "--group-size", "4",
        ])
        assert code == 0

    def test_unknown_method(self, data_dir):
        with pytest.raises(ValueError, match="unknown aggregator"):
            main([
                "aggregate", "--data", str(data_dir),
                "--method", "NOPE", "--group-size", "4",
            ])


class TestSession:
    def test_prints_trajectory(self, data_dir, capsys):
        code = main([
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "budget" in out
        assert "accuracy" in out
        # Trajectory ends at or under the requested budget.
        last_line = [l for l in out.splitlines() if l.strip()][-1]
        assert float(last_line.split()[0]) <= 20

    def test_trust_flag_prints_supervision_summary(
        self, data_dir, capsys
    ):
        code = main([
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
            "--trust", "--probe-rate", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "trust: quarantines=" in out
        assert "readmissions=" in out
        assert "posterior" in out and "breaker" in out
        # the trajectory still prints after the trust summary
        assert "budget" in out and "accuracy" in out

    def test_trust_flag_off_by_default(self, data_dir, capsys):
        main([
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
        ])
        assert "trust:" not in capsys.readouterr().out

    def test_jobs_runs_the_sharded_engine(self, data_dir, capsys):
        """--jobs 2 must print the same trajectory as the serial run
        (the engine is bit-identical, so the rows are too)."""
        arguments = [
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
        ]
        assert main(arguments) == 0
        serial = capsys.readouterr().out
        assert main(arguments + ["--jobs", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_shards_is_an_alias_for_jobs(self, data_dir):
        code = main([
            "session", "--data", str(data_dir), "--budget", "12",
            "--group-size", "4", "--theta", "0.85", "--shards", "3",
        ])
        assert code == 0

    def test_jobs_rejects_non_lazy_selectors(self, data_dir, capsys):
        code = main([
            "session", "--data", str(data_dir), "--budget", "12",
            "--group-size", "4", "--theta", "0.85",
            "--jobs", "2", "--selector", "random",
        ])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_journaled_jobs_run_resumes_with_jobs(
        self, data_dir, tmp_path, capsys
    ):
        journal = tmp_path / "campaign.jsonl"
        code = main([
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
            "--jobs", "2", "--journal", str(journal),
        ])
        assert code == 0
        capsys.readouterr()
        # A finished journal resumes as a no-op and reprints the final
        # trajectory through the parallel resume path.
        code = main([
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
            "--jobs", "2", "--resume", str(journal),
        ])
        assert code == 0
        assert "budget" in capsys.readouterr().out


class TestSupervisionFlags:
    def test_session_accepts_supervision_flags(self, data_dir, capsys):
        code = main([
            "session", "--data", str(data_dir), "--budget", "12",
            "--group-size", "4", "--theta", "0.85", "--jobs", "2",
            "--shard-deadline", "30", "--max-shard-restarts", "1",
        ])
        assert code == 0
        # A clean run has no interventions: no supervisor line.
        assert "supervisor:" not in capsys.readouterr().out

    def test_no_failover_aborts_under_injected_kills(
        self, data_dir, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "kill=1.0")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "0")
        with pytest.raises(Exception, match="failover is disabled"):
            main([
                "session", "--data", str(data_dir), "--budget", "12",
                "--group-size", "4", "--theta", "0.85", "--jobs", "2",
                "--max-shard-restarts", "0", "--no-failover",
            ])

    def test_supervisor_counters_print_after_recovery(
        self, data_dir, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHAOS", "kill=0.1")
        monkeypatch.setenv("REPRO_CHAOS_SEED", "1")
        arguments = [
            "session", "--data", str(data_dir), "--budget", "20",
            "--group-size", "4", "--theta", "0.85", "--rows", "4",
        ]
        assert main(arguments) == 0
        serial = capsys.readouterr().out
        assert main(arguments + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert "supervisor:" in parallel
        supervisor_line, trajectory = parallel.split("\n", 1)
        assert "restarts=" in supervisor_line or "failovers=" in supervisor_line
        # Recovery never changes the printed trajectory.
        assert trajectory == serial


class TestReproduce:
    def test_single_small_experiment(self, tmp_path, capsys):
        code = main([
            "reproduce", "--scale", "small",
            "--out", str(tmp_path / "results"),
            "--only", "figure7",
        ])
        assert code == 0
        assert (tmp_path / "results" / "figure7.json").exists()
        assert (tmp_path / "results" / "figure7.txt").exists()


@pytest.mark.chaos
class TestSoak:
    def test_smoke_survives_a_kill_cycle(self, tmp_path, capsys):
        import json

        code = main([
            "soak", "--minutes", "0.02", "--kill-every", "0.4",
            "--seed", "5", "--tenants", "1", "--min-kills", "1",
            "--out", str(tmp_path / "artifacts"),
        ])
        assert code == 0
        out, err = capsys.readouterr()
        result = json.loads(out)
        assert result["byte_identical"] is True
        assert result["kills"] >= 1
        assert result["failed_cycles"] == 0
        assert "soak ok" in err
        assert (
            tmp_path / "artifacts" / "soak_result.json"
        ).exists()

    def test_bad_chaos_spec_is_rejected_up_front(self, tmp_path):
        with pytest.raises(ValueError, match="unknown"):
            main([
                "soak", "--minutes", "0.01",
                "--storage-chaos", "meteor=1.0",
                "--out", str(tmp_path / "artifacts"),
            ])
