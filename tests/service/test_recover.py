"""Whole-service crash recovery: ``CampaignService.recover``.

The scenarios mirror what a host crash actually leaves behind: intact
journals mid-campaign (reattach), torn tails (trim, reattach), interior
corruption from a sick disk (salvage, reattach from the verified
prefix), corruption reaching into the bootstrap region (retire to the
sidecar, reset), and journals nobody offered a spec for (orphaned,
attachable later).  Throughout: byte-level determinism against solo
reference runs and exact ledger settlement.
"""

import pytest

from repro.core.serialization import read_journal
from repro.service import (
    CampaignService,
    CampaignSpec,
    CampaignStatus,
    RecoveryReport,
)

from .conftest import make_config, make_dataset, signature, solo_signature


def spec_for(tenant, name, dataset, config, **overrides):
    overrides.setdefault("jobs", 2)
    return CampaignSpec(
        tenant=tenant, name=name, dataset=dataset, config=config, **overrides
    )


def _crashed_service(tmp_path, steps=6, campaigns=2):
    """Run a few rounds of ``campaigns`` tenants, then drop the service
    without finishing — the journal directory is what a crash leaves."""
    root = tmp_path / "svc"
    specs = []
    for index in range(campaigns):
        dataset = make_dataset(seed=40 + index)
        config = make_config(seed=index, budget=20.0)
        specs.append(spec_for(f"tenant{index}", "job", dataset, config))
    service = CampaignService(100.0, journal_root=root)
    for spec in specs:
        service.submit(spec)
    for _ in range(steps):
        service.step()
    service.close()
    return root, specs


class TestRecoverScenarios:
    def test_reattaches_and_finishes_bit_identical(self, tmp_path):
        root, specs = _crashed_service(tmp_path)
        solo = {
            spec.campaign_id: solo_signature(
                spec.dataset, spec.config,
                tmp_path / f"solo-{spec.tenant}.jsonl",
            )
            for spec in specs
        }
        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(specs=specs)
            assert isinstance(report, RecoveryReport)
            assert report.clean
            assert {c.campaign_id for c in report.reattached} == {
                spec.campaign_id for spec in specs
            }
            # progress on the journal is money already spent
            assert all(c.base_spent > 0 for c in report.reattached)
            service.run_until_idle()
            for spec in specs:
                handle = service.handle(spec.campaign_id)
                assert handle.status is CampaignStatus.COMPLETED
                assert (
                    signature(service.result(handle))
                    == solo[spec.campaign_id]
                )
            assert service.ledger.audit(strict=True) == []

    def test_torn_tail_is_trimmed_then_reattached(self, tmp_path):
        root, specs = _crashed_service(tmp_path, steps=4, campaigns=1)
        path = root / "tenant0" / "job.jsonl"
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])  # crash mid-append
        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(specs=specs)
            [campaign] = report.reattached
            assert campaign.salvaged_bytes > 0
            assert campaign.damage == ("torn_tail",)
            assert campaign.sidecar is None
            service.run_until_idle()
            handle = service.handle(specs[0].campaign_id)
            assert handle.status is CampaignStatus.COMPLETED

    def test_interior_corruption_reattaches_from_the_prefix(self, tmp_path):
        root, specs = _crashed_service(tmp_path, steps=6, campaigns=1)
        path = root / "tenant0" / "job.jsonl"
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        # flip a bit in the final line: the prefix keeps checkpoints
        victim = len(lines) - 1
        broken = bytearray(lines[victim])
        broken[len(broken) // 2] ^= 0x08
        lines[victim] = bytes(broken)
        path.write_bytes(b"".join(lines))
        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(specs=specs)
            [campaign] = report.reattached
            assert campaign.salvaged_bytes > 0
            service.run_until_idle()
            handle = service.handle(specs[0].campaign_id)
            assert handle.status is CampaignStatus.COMPLETED
            solo = solo_signature(
                specs[0].dataset, specs[0].config, tmp_path / "solo.jsonl"
            )
            assert signature(service.result(handle)) == solo

    def test_bootstrap_damage_resets_with_evidence(self, tmp_path):
        root, specs = _crashed_service(tmp_path, steps=5, campaigns=1)
        path = root / "tenant0" / "job.jsonl"
        raw = path.read_bytes()
        lines = raw.splitlines(keepends=True)
        # corrupt line 2: the verified prefix ends before any checkpoint
        lines[1] = b'{"kind": mangled\n'
        damaged = b"".join(lines)
        path.write_bytes(damaged)
        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(specs=specs)
            [campaign] = report.reset
            assert campaign.campaign_id == specs[0].campaign_id
            # evidence preserved, fresh journal started
            assert campaign.sidecar is not None
            assert campaign.sidecar.read_bytes() == damaged
            service.run_until_idle()
            handle = service.handle(specs[0].campaign_id)
            assert handle.status is CampaignStatus.COMPLETED
            # the reset run is the campaign from scratch: same result
            solo = solo_signature(
                specs[0].dataset, specs[0].config, tmp_path / "solo.jsonl"
            )
            assert signature(service.result(handle)) == solo

    def test_unoffered_journal_is_orphaned_then_attachable(self, tmp_path):
        root, specs = _crashed_service(tmp_path, campaigns=2)
        offered = [specs[0]]
        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(specs=offered)
            assert len(report.reattached) == 1
            [orphan] = report.orphaned
            assert orphan.campaign_id == specs[1].campaign_id
            # the orphan's journal is untouched and still attachable
            assert (root / "tenant1" / "job.jsonl").exists()
            service.attach(specs[1])
            service.run_until_idle()
            for spec in specs:
                handle = service.handle(spec.campaign_id)
                assert handle.status is CampaignStatus.COMPLETED

    def test_spec_factory_fills_the_gaps(self, tmp_path):
        root, specs = _crashed_service(tmp_path, campaigns=2)
        by_id = {spec.campaign_id: spec for spec in specs}

        def factory(tenant, name):
            return by_id.get(f"{tenant}/{name}")

        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(spec_factory=factory)
            assert report.clean
            assert len(report.reattached) == 2

    def test_empty_root_is_a_clean_sweep(self, tmp_path):
        root = tmp_path / "svc"
        root.mkdir()
        with CampaignService(50.0, journal_root=root) as service:
            report = service.recover()
            assert report.scanned == 0
            assert report.clean
            assert report.ledger_books == []

    def test_recover_needs_a_root(self, tmp_path):
        with CampaignService(50.0) as service:
            with pytest.raises(ValueError, match="journal directory"):
                service.recover()

    def test_sweep_is_deterministic(self, tmp_path):
        import shutil

        root, specs = _crashed_service(tmp_path)
        # damage one journal so every outcome class is exercised
        path = root / "tenant1" / "job.jsonl"
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = b'{"kind": mangled\n'
        path.write_bytes(b"".join(lines))
        twin = tmp_path / "twin"
        shutil.copytree(root, twin)

        def sweep(directory):
            with CampaignService(100.0, journal_root=directory) as service:
                report = service.recover(specs=specs)
                return [
                    (c.campaign_id, c.outcome, c.salvaged_bytes, c.damage)
                    for c in report.campaigns
                ]

        assert sweep(root) == sweep(twin)

    def test_report_as_dict_round_trips_to_json(self, tmp_path):
        import json

        root, specs = _crashed_service(tmp_path, campaigns=1)
        with CampaignService(100.0, journal_root=root) as service:
            report = service.recover(specs=specs)
            payload = json.loads(json.dumps(report.as_dict()))
            assert payload["scanned"] == 1
            assert payload["outcomes"]["reattached"] == 1

    def test_recovered_journal_reads_clean_after_completion(self, tmp_path):
        root, specs = _crashed_service(tmp_path, campaigns=1)
        with CampaignService(100.0, journal_root=root) as service:
            service.recover(specs=specs)
            service.run_until_idle()
        records = read_journal(root / "tenant0" / "job.jsonl")
        assert records[0]["version"] == 8
        assert records[-1]["kind"] == "checkpoint"
