"""Behavioral tests for the multi-tenant campaign service.

The invariants pinned here are the service's contract:

* every campaign — interleaved, detached, restarted, or sharing the
  box with a chaos-injected tenant — is **bit-identical** to its solo
  :func:`~repro.engine.runner.run_parallel_hc_session` run;
* admission is deposit-based and rejections are free of side effects;
* one tenant's faults never stall or corrupt another tenant;
* no service path ever leaks a ledger reservation.
"""

import pytest

from repro.engine import ChaosPlan, SupervisionPolicy
from repro.service import (
    CampaignQuarantinedError,
    CampaignService,
    CampaignSpec,
    CampaignStatus,
    QuotaExceededError,
    ServiceError,
    ServicePolicy,
    ServiceSaturatedError,
    TenantQuota,
    UnknownCampaignError,
)
from repro.service.errors import CampaignStateError
from repro.simulation.faults import FaultModel

from .conftest import make_config, make_dataset, signature, solo_signature


def spec_for(tenant, name, dataset, config, **overrides):
    overrides.setdefault("jobs", 2)
    return CampaignSpec(
        tenant=tenant, name=name, dataset=dataset, config=config, **overrides
    )


def assert_no_leaks(service: CampaignService) -> None:
    """No service path may leave a reservation open anywhere."""
    assert service.ledger.audit() == []
    stats = service.stats()
    for campaign_id, entry in stats["campaigns"].items():
        assert entry["leaked_reservations"] == 0, campaign_id


class TestMultiTenantBitIdentity:
    def test_concurrent_campaigns_match_solo(self, tmp_path):
        """Four interleaved campaigns (one with crowd faults) each
        reproduce their solo run bit for bit."""
        faults = FaultModel(no_show=0.2, partial=0.2, seed=9)
        campaigns = {}
        for index in range(4):
            dataset = make_dataset(seed=20 + index)
            config = make_config(
                seed=index, faults=faults if index == 3 else None
            )
            campaigns[index] = (dataset, config)
        solo = {
            index: solo_signature(
                dataset, config, tmp_path / f"solo{index}.jsonl"
            )
            for index, (dataset, config) in campaigns.items()
        }
        with CampaignService(
            100.0,
            policy=ServicePolicy(slots=3),
            journal_root=tmp_path / "svc",
        ) as service:
            handles = {
                index: service.submit(
                    spec_for(
                        f"tenant-{index % 2}", f"c{index}", dataset, config
                    )
                )
                for index, (dataset, config) in campaigns.items()
            }
            service.run_until_idle()
            for index, handle in handles.items():
                assert handle.status is CampaignStatus.COMPLETED
                assert signature(service.result(handle)) == solo[index], (
                    f"campaign {index} diverged from its solo run"
                )
            assert service.ledger.open_reservations == 0
            assert service.ledger.committed == pytest.approx(
                sum(handle.spent for handle in handles.values())
            )
            assert_no_leaks(service)

    def test_weighted_fair_scheduling_rates(self, tmp_path):
        """A weight-2 campaign is served twice as often as a weight-1
        campaign while both are runnable — the stride pattern exactly."""
        dataset = make_dataset(seed=31)
        with CampaignService(
            100.0, journal_root=tmp_path / "svc"
        ) as service:
            service.submit(
                spec_for(
                    "heavy", "h", dataset, make_config(seed=1, budget=24.0),
                    weight=2.0,
                )
            )
            service.submit(
                spec_for(
                    "light", "l", dataset, make_config(seed=2, budget=24.0),
                    weight=1.0,
                )
            )
            picks = [service.step()["campaign"] for _ in range(9)]
            assert picks.count("heavy/h") == 6
            assert picks.count("light/l") == 3
            service.run_until_idle()
            assert_no_leaks(service)

    def test_journal_carries_the_tenant_identity(self, tmp_path):
        from repro.core.serialization import read_journal

        dataset = make_dataset(seed=32)
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            handle = service.submit(
                spec_for(
                    "acme", "job", dataset, make_config(seed=0),
                    priority=2, weight=1.5,
                )
            )
            service.run_until_idle()
            records = read_journal(handle.journal_path)
        assert records[0]["kind"] == "header"
        assert records[0]["version"] == 8
        tenant_records = [
            record for record in records if record.get("kind") == "tenant"
        ]
        assert tenant_records == [
            {
                "kind": "tenant",
                "tenant": "acme",
                "name": "job",
                "priority": 2,
                "weight": 1.5,
            }
        ]
        # The tenant record precedes the engine record and the first
        # checkpoint, so resume's trim can never drop it.
        kinds = [record.get("kind") for record in records[:4]]
        assert kinds == ["header", "tenant", "engine", "checkpoint"]


class TestDetachReattach:
    def test_detach_reattach_same_service(self, tmp_path):
        dataset = make_dataset(seed=40)
        config = make_config(seed=5)
        solo = solo_signature(dataset, config, tmp_path / "solo.jsonl")
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            spec = spec_for("acme", "job", dataset, config)
            handle = service.submit(spec)
            for _ in range(2):
                service.step()
            service.detach(handle)
            assert handle.status is CampaignStatus.DETACHED
            assert service.step() is None  # nothing else to run
            service.attach(spec)
            service.run_until_idle()
            assert signature(service.result(handle)) == solo
            assert_no_leaks(service)

    def test_service_restart_reattach_is_byte_identical(self, tmp_path):
        """Kill the whole service mid-campaign; a fresh service attaches
        the journals and finishes them — results bit-identical to solo
        and journal bytes identical to an uninterrupted service run."""
        datasets = {name: make_dataset(seed=50 + index)
                    for index, name in enumerate(("a", "b"))}
        configs = {"a": make_config(seed=1), "b": make_config(seed=2)}
        solo = {
            name: solo_signature(
                datasets[name], configs[name], tmp_path / f"solo-{name}.jsonl"
            )
            for name in datasets
        }

        def specs(root_unused=None):
            return {
                name: spec_for("acme", name, datasets[name], configs[name])
                for name in datasets
            }

        # Reference: the same two campaigns on one uninterrupted service.
        with CampaignService(
            60.0, journal_root=tmp_path / "ref"
        ) as reference:
            for spec in specs().values():
                reference.submit(spec)
            reference.run_until_idle()
        reference_bytes = {
            name: (tmp_path / "ref" / "acme" / f"{name}.jsonl").read_bytes()
            for name in datasets
        }

        first = CampaignService(60.0, journal_root=tmp_path / "svc")
        for spec in specs().values():
            first.submit(spec)
        for _ in range(3):
            first.step()
        first.close()  # the "crash": deposits returned, journals survive

        with CampaignService(
            60.0, journal_root=tmp_path / "svc"
        ) as second:
            handles = {
                name: second.attach(spec)
                for name, spec in specs().items()
            }
            service_committed = second.ledger.committed
            assert service_committed > 0  # pre-restart spend re-committed
            second.run_until_idle()
            for name, handle in handles.items():
                assert handle.status is CampaignStatus.COMPLETED
                assert signature(second.result(handle)) == solo[name]
                journal = tmp_path / "svc" / "acme" / f"{name}.jsonl"
                assert journal.read_bytes() == reference_bytes[name]
            assert_no_leaks(second)

    def test_detach_of_pending_campaign_keeps_deposit(self, tmp_path):
        dataset = make_dataset(seed=41)
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            spec = spec_for("acme", "queued", dataset, make_config(seed=0))
            handle = service.submit(spec)
            service.detach(handle)
            assert handle.status is CampaignStatus.DETACHED
            assert service.ledger.outstanding == pytest.approx(12.0)
            service.attach(spec)
            service.run_until_idle()
            assert handle.status is CampaignStatus.COMPLETED


class TestFaultIsolation:
    def test_chaos_tenant_does_not_perturb_others(self, tmp_path):
        """One tenant's kill chaos and another's hang chaos stay inside
        their own pools: every campaign — chaotic ones included — still
        matches its solo signature."""
        plans = {
            "plain": None,
            "killer": ChaosPlan(schedule={(0, 3): "kill"}),
            "hanger": ChaosPlan(schedule={(1, 2): "hang"}),
        }
        fast_deadline = SupervisionPolicy(
            deadline=0.3, poll_interval=0.01
        )
        campaigns = {}
        for index, name in enumerate(plans):
            campaigns[name] = (
                make_dataset(seed=60 + index), make_config(seed=index)
            )
        solo = {
            name: solo_signature(
                dataset, config, tmp_path / f"solo-{name}.jsonl"
            )
            for name, (dataset, config) in campaigns.items()
        }
        with CampaignService(
            100.0, journal_root=tmp_path / "svc"
        ) as service:
            handles = {}
            for name, (dataset, config) in campaigns.items():
                handles[name] = service.submit(
                    spec_for(
                        name, "job", dataset, config,
                        chaos=plans[name],
                        policy=(
                            fast_deadline if name == "hanger" else None
                        ),
                    )
                )
            service.run_until_idle()
            for name, handle in handles.items():
                assert handle.status is CampaignStatus.COMPLETED, (
                    name, handle.error
                )
                assert signature(service.result(handle)) == solo[name], (
                    f"{name} diverged"
                )
            assert_no_leaks(service)

    def test_persistent_failure_quarantines_without_spending(self, tmp_path):
        """A tenant whose collection infrastructure always throws burns
        its strikes and is quarantined — deposit intact, the healthy
        tenant bit-identical, no reservation leaked."""

        class ExplodingSource:
            def collect(self, queries, experts):
                raise RuntimeError("collector burned down")

        broken_dataset = make_dataset(seed=70)
        healthy_dataset = make_dataset(seed=71)
        healthy_config = make_config(seed=1)
        solo = solo_signature(
            healthy_dataset, healthy_config, tmp_path / "solo.jsonl"
        )
        with CampaignService(
            50.0,
            policy=ServicePolicy(max_strikes=2),
            journal_root=tmp_path / "svc",
        ) as service:
            broken = service.submit(
                spec_for(
                    "bad", "job", broken_dataset, make_config(seed=0),
                    source_factory=lambda spec: ExplodingSource(),
                )
            )
            healthy = service.submit(
                spec_for("good", "job", healthy_dataset, healthy_config)
            )
            service.run_until_idle()
            assert broken.status is CampaignStatus.QUARANTINED
            assert broken.strikes == 2
            assert "collector burned down" in broken.error
            with pytest.raises(CampaignQuarantinedError):
                service.result(broken)
            # The deposit still holds the quarantined campaign's claim
            # (one open reservation by design — not a leak).
            assert service.ledger.outstanding == pytest.approx(12.0)
            assert service.ledger.open_reservations == 1
            assert healthy.status is CampaignStatus.COMPLETED
            assert signature(service.result(healthy)) == solo
            stats = service.stats()
            for entry in stats["campaigns"].values():
                assert entry["leaked_reservations"] == 0
            # Operator remediation: re-attach with a repaired source.
            fixed = service.attach(
                spec_for("bad", "job", broken_dataset, make_config(seed=0))
            )
            service.run_until_idle()
            assert fixed.status is CampaignStatus.COMPLETED
            assert signature(service.result(fixed)) == solo_signature(
                broken_dataset, make_config(seed=0),
                tmp_path / "solo-fixed.jsonl",
            )
            assert_no_leaks(service)

    def test_round_deadline_overrun_strikes_but_keeps_the_round(
        self, tmp_path
    ):
        dataset = make_dataset(seed=72)
        config = make_config(seed=3)
        solo = solo_signature(dataset, config, tmp_path / "solo.jsonl")
        first = CampaignService(
            50.0,
            policy=ServicePolicy(round_deadline=1e-9, max_strikes=1),
            journal_root=tmp_path / "svc",
        )
        spec = spec_for("slow", "job", dataset, config)
        handle = first.submit(spec)
        info = first.step()
        assert "deadline" in info["error"]
        assert handle.status is CampaignStatus.QUARANTINED
        # The overrunning round itself committed and was journaled.
        assert handle.rounds == 1
        first.close()
        # A service without the aggressive deadline finishes the rest
        # byte-identically — the strike lost no work.
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as second:
            resumed = second.attach(spec)
            second.run_until_idle()
            assert signature(second.result(resumed)) == solo
            assert_no_leaks(second)


class TestBackpressure:
    def test_saturation_rejects_then_sheds_for_priority(self, tmp_path):
        dataset = make_dataset(seed=80)
        with CampaignService(
            25.0,
            policy=ServicePolicy(slots=1, queue_limit=2),
            journal_root=tmp_path / "svc",
        ) as service:
            first = service.submit(
                spec_for("acme", "c0", dataset, make_config(seed=0, budget=10.0))
            )
            service.step()  # activate c0 so it occupies the slot
            queued = service.submit(
                spec_for("acme", "c1", dataset, make_config(seed=1, budget=10.0))
            )
            # 20 of 25 deposited; a third 10.0 campaign cannot deposit
            # and has no lower-priority victim available.
            with pytest.raises(ServiceSaturatedError) as saturated:
                service.submit(
                    spec_for(
                        "acme", "c2", dataset, make_config(seed=2, budget=10.0)
                    )
                )
            assert saturated.value.reason == "ledger"
            # Higher priority work sheds the queued campaign instead.
            urgent = service.submit(
                spec_for(
                    "acme", "c3", dataset,
                    make_config(seed=3, budget=10.0), priority=1,
                )
            )
            assert queued.status is CampaignStatus.SHED
            service.run_until_idle()
            assert first.status is CampaignStatus.COMPLETED
            assert urgent.status is CampaignStatus.COMPLETED
            stats = service.stats()
            assert stats["admission"]["rejected_ledger"] == 1
            assert stats["admission"]["shed"] == 1
            assert service.ledger.committed == pytest.approx(
                first.spent + urgent.spent
            )
            assert_no_leaks(service)

    def test_full_queue_rejection_is_side_effect_free(self, tmp_path):
        dataset = make_dataset(seed=81)
        with CampaignService(
            100.0,
            policy=ServicePolicy(slots=1, queue_limit=1),
            journal_root=tmp_path / "svc",
        ) as service:
            service.submit(
                spec_for("acme", "c0", dataset, make_config(seed=0))
            )
            service.step()
            service.submit(
                spec_for("acme", "c1", dataset, make_config(seed=1))
            )
            before = service.ledger.as_dict()
            with pytest.raises(ServiceSaturatedError) as saturated:
                service.submit(
                    spec_for("acme", "c2", dataset, make_config(seed=2))
                )
            assert saturated.value.reason == "queue"
            assert service.ledger.as_dict() == before
            with pytest.raises(UnknownCampaignError):
                service.status("acme/c2")

    def test_tenant_quota_enforced_at_submit(self, tmp_path):
        dataset = make_dataset(seed=82)
        with CampaignService(
            100.0,
            quotas={"capped": TenantQuota(max_active=1)},
            journal_root=tmp_path / "svc",
        ) as service:
            service.submit(
                spec_for("capped", "c0", dataset, make_config(seed=0))
            )
            with pytest.raises(QuotaExceededError):
                service.submit(
                    spec_for("capped", "c1", dataset, make_config(seed=1))
                )
            # Other tenants are unaffected.
            service.submit(
                spec_for("free", "c0", dataset, make_config(seed=2))
            )
            service.run_until_idle()
            assert_no_leaks(service)


class TestLifecycle:
    def test_duplicate_submit_rejected(self, tmp_path):
        dataset = make_dataset(seed=90)
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            spec = spec_for("acme", "job", dataset, make_config(seed=0))
            service.submit(spec)
            with pytest.raises(CampaignStateError, match="already"):
                service.submit(spec)

    def test_submit_over_existing_journal_points_to_attach(self, tmp_path):
        dataset = make_dataset(seed=91)
        spec = spec_for("acme", "job", dataset, make_config(seed=0))
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            service.submit(spec)
            service.run_until_idle()
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as fresh:
            with pytest.raises(CampaignStateError, match="attach"):
                fresh.submit(spec)

    def test_unknown_campaign_raises(self, tmp_path):
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            with pytest.raises(UnknownCampaignError):
                service.result("ghost/none")
            with pytest.raises(UnknownCampaignError):
                service.detach("ghost/none")

    def test_result_before_completion_raises(self, tmp_path):
        dataset = make_dataset(seed=92)
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            handle = service.submit(
                spec_for("acme", "job", dataset, make_config(seed=0))
            )
            with pytest.raises(CampaignStateError, match="not completed"):
                service.result(handle)

    def test_attach_without_journal_raises(self, tmp_path):
        dataset = make_dataset(seed=93)
        with CampaignService(
            50.0, journal_root=tmp_path / "svc"
        ) as service:
            with pytest.raises(UnknownCampaignError):
                service.attach(
                    spec_for("acme", "lost", dataset, make_config(seed=0))
                )

    def test_campaigns_need_a_journal_home(self, tmp_path):
        dataset = make_dataset(seed=94)
        with CampaignService(50.0) as service:  # no journal_root
            with pytest.raises(ValueError, match="journal"):
                service.submit(
                    spec_for("acme", "job", dataset, make_config(seed=0))
                )

    def test_closed_service_refuses_work(self, tmp_path):
        dataset = make_dataset(seed=95)
        service = CampaignService(50.0, journal_root=tmp_path / "svc")
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.submit(
                spec_for("acme", "job", dataset, make_config(seed=0))
            )
        service.close()  # idempotent

    def test_close_returns_unfinished_deposits(self, tmp_path):
        dataset = make_dataset(seed=96)
        service = CampaignService(50.0, journal_root=tmp_path / "svc")
        running = service.submit(
            spec_for("acme", "running", dataset, make_config(seed=0))
        )
        service.step()
        service.submit(
            spec_for("acme", "queued", dataset, make_config(seed=1))
        )
        assert service.ledger.outstanding == pytest.approx(24.0)
        service.close()
        assert service.ledger.open_reservations == 0
        # What the running campaign actually spent stays spent? No —
        # unfinished deposits are *released*; only completed campaigns
        # commit.  The journal keeps the truth for a future attach.
        assert service.ledger.committed == 0.0
        assert running.status is CampaignStatus.DETACHED
