"""Concurrent journals: neighbors in one directory never interfere.

A multi-tenant service interleaves many campaigns whose journals live
side by side under ``journal_root``.  These tests pin the isolation
contract at the file level: tearing and repairing one campaign's
journal — the on-disk state a crash mid-append leaves behind — and
resuming it byte-identically never changes a single byte of the
journal next to it.
"""

import numpy as np
import pytest

from repro.core.serialization import (
    repair_journal,
    trim_journal_to_last_checkpoint,
)
from repro.engine import resume_parallel_session
from repro.service import CampaignService, CampaignSpec
from repro.simulation import SimulatedExpertPanel

from .conftest import make_config, make_dataset


@pytest.fixture
def neighbors(tmp_path):
    """Two campaigns of one tenant, interleaved round-by-round by the
    service so their journal appends genuinely alternate in time.

    Returns the two journal paths, their uninterrupted reference
    bytes, and each campaign's (dataset, config) for rebuilding an
    answer source.
    """
    campaigns = {
        name: (make_dataset(seed=100 + index), make_config(seed=index))
        for index, name in enumerate(("alpha", "beta"))
    }
    with CampaignService(
        50.0, journal_root=tmp_path / "svc"
    ) as service:
        for name, (dataset, config) in campaigns.items():
            service.submit(
                CampaignSpec(
                    tenant="acme",
                    name=name,
                    dataset=dataset,
                    config=config,
                    jobs=2,
                )
            )
        service.run_until_idle()
    paths = {
        name: tmp_path / "svc" / "acme" / f"{name}.jsonl"
        for name in campaigns
    }
    return {
        name: {
            "path": paths[name],
            "bytes": paths[name].read_bytes(),
            "dataset": campaigns[name][0],
            "config": campaigns[name][1],
        }
        for name in campaigns
    }


def tear(entry) -> None:
    """Rewrite the journal as an intact prefix plus half a torn line —
    what a SIGKILL during an append leaves on disk."""
    lines = entry["bytes"].splitlines(keepends=True)
    assert len(lines) > 5
    entry["path"].write_bytes(
        b"".join(lines[:5]) + lines[5][: len(lines[5]) // 2]
    )


def fresh_source(entry):
    return SimulatedExpertPanel(
        entry["dataset"].ground_truth,
        rng=np.random.default_rng(entry["config"].seed),
    )


class TestConcurrentJournals:
    def test_both_torn_neighbors_resume_byte_identically(self, neighbors):
        """Tear both journals, then resume them one at a time: each
        comes back byte-identical, and while one is being repaired and
        replayed the other's torn bytes do not move."""
        for entry in neighbors.values():
            tear(entry)
        torn = {
            name: entry["path"].read_bytes()
            for name, entry in neighbors.items()
        }
        resume_order = ["alpha", "beta"]
        for position, name in enumerate(resume_order):
            entry = neighbors[name]
            session, pool = resume_parallel_session(
                entry["path"], inline=True
            )
            with pool:
                session.run(fresh_source(entry))
            assert entry["path"].read_bytes() == entry["bytes"], name
            untouched = resume_order[position + 1 :]
            for other in untouched:
                assert (
                    neighbors[other]["path"].read_bytes() == torn[other]
                ), f"resuming {name} disturbed {other}"

    def test_repair_and_trim_are_surgical(self, neighbors):
        """The repair primitives themselves only touch the file they
        are pointed at."""
        alpha, beta = neighbors["alpha"], neighbors["beta"]
        tear(alpha)
        repair_journal(alpha["path"])
        trim_journal_to_last_checkpoint(alpha["path"])
        # The repaired file is a clean prefix of its reference...
        repaired = alpha["path"].read_bytes()
        assert alpha["bytes"].startswith(repaired)
        assert repaired.endswith(b"\n")
        # ...and the neighbor kept every byte.
        assert beta["path"].read_bytes() == beta["bytes"]

    def test_torn_tail_resume_preserves_results(self, neighbors):
        """Bit-identity holds through the tear, not just byte-identity
        of the log: the resumed campaign's posterior equals a fresh
        solo replay of the reference journal's campaign."""
        entry = neighbors["beta"]
        tear(entry)
        session, pool = resume_parallel_session(entry["path"], inline=True)
        with pool:
            result = session.run(fresh_source(entry))
        assert entry["path"].read_bytes() == entry["bytes"]
        assert result.history[-1].budget_spent == pytest.approx(
            entry["config"].budget
        )
