"""Unit tests for the weighted-fair (stride) round scheduler."""

import pytest

from repro.service import WeightedFairScheduler


def drain(scheduler: WeightedFairScheduler, rounds: int) -> list[str]:
    picks = []
    for _ in range(rounds):
        key = scheduler.peek()
        picks.append(key)
        scheduler.charge(key)
    return picks


class TestWeightedFairScheduler:
    def test_equal_weights_round_robin_in_admission_order(self):
        scheduler = WeightedFairScheduler()
        scheduler.add("a")
        scheduler.add("b")
        scheduler.add("c")
        assert drain(scheduler, 6) == ["a", "b", "c", "a", "b", "c"]

    def test_service_rates_proportional_to_weights(self):
        scheduler = WeightedFairScheduler()
        scheduler.add("heavy", weight=2.0)
        scheduler.add("light", weight=1.0)
        picks = drain(scheduler, 30)
        assert picks.count("heavy") == 20
        assert picks.count("light") == 10

    def test_schedule_is_deterministic(self):
        def build():
            scheduler = WeightedFairScheduler()
            scheduler.add("x", weight=3.0)
            scheduler.add("y", weight=1.0)
            scheduler.add("z", weight=2.0)
            return drain(scheduler, 48)

        assert build() == build()

    def test_late_arrival_starts_at_current_virtual_time(self):
        scheduler = WeightedFairScheduler()
        scheduler.add("old")
        drain(scheduler, 5)
        scheduler.add("new")
        picks = drain(scheduler, 10)
        # The newcomer neither waits out the incumbent's 5 rounds of
        # virtual time nor gets 5 make-up rounds: from here on they
        # alternate fairly.
        assert picks.count("new") == 5
        assert picks.count("old") == 5

    def test_removal_frees_the_slot(self):
        scheduler = WeightedFairScheduler()
        scheduler.add("a")
        scheduler.add("b")
        scheduler.remove("a")
        assert drain(scheduler, 3) == ["b", "b", "b"]
        assert "a" not in scheduler
        assert len(scheduler) == 1

    def test_empty_scheduler_peeks_none(self):
        scheduler = WeightedFairScheduler()
        assert scheduler.peek() is None

    def test_duplicate_add_rejected(self):
        scheduler = WeightedFairScheduler()
        scheduler.add("a")
        with pytest.raises(ValueError, match="already scheduled"):
            scheduler.add("a")

    def test_nonpositive_weight_rejected(self):
        scheduler = WeightedFairScheduler()
        with pytest.raises(ValueError, match="positive"):
            scheduler.add("a", weight=0.0)

    def test_remove_unknown_raises(self):
        scheduler = WeightedFairScheduler()
        with pytest.raises(KeyError):
            scheduler.remove("ghost")
