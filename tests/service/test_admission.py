"""Unit tests for admission control: quotas, deposits, shedding.

These drive the :class:`AdmissionController` directly with lightweight
campaign records (the dataset is never touched by admission), pinning
the exact rejection/shedding semantics the service builds on — in
particular that every rejection leaves *zero* state behind.
"""

from pathlib import Path

import pytest

from repro.engine import BudgetLedger
from repro.service import (
    AdmissionController,
    QuotaExceededError,
    ServiceSaturatedError,
    TenantQuota,
)
from repro.service.campaign import CampaignRecord, CampaignSpec
from repro.simulation.session import SessionConfig


def make_record(
    tenant: str,
    name: str,
    budget: float,
    priority: int = 0,
    base_spent: float = 0.0,
) -> CampaignRecord:
    spec = CampaignSpec(
        tenant=tenant,
        name=name,
        dataset=object(),  # admission never touches the dataset
        config=SessionConfig(budget=budget),
        priority=priority,
    )
    return CampaignRecord(
        spec=spec,
        config=spec.config,
        journal_path=Path(f"{tenant}-{name}.jsonl"),
        weight=1.0,
        base_spent=base_spent,
    )


def controller(total: float = 100.0, **kwargs):
    ledger = BudgetLedger(total)
    kwargs.setdefault("queue_limit", 8)
    return AdmissionController(ledger, **kwargs), ledger


class TestDeposits:
    def test_admit_reserves_the_full_remaining_budget(self):
        admission, ledger = controller(100.0)
        record = make_record("acme", "a", budget=30.0)
        assert admission.admit(record, []) == []
        assert ledger.outstanding == pytest.approx(30.0)
        assert admission.deposit_amount(record.campaign_id) == 30.0
        assert admission.counters["admitted"] == 1

    def test_settle_commits_actual_spend_and_refunds_rest(self):
        admission, ledger = controller(100.0)
        record = make_record("acme", "a", budget=30.0)
        admission.admit(record, [])
        admission.settle(record.campaign_id, 18.0)
        assert ledger.committed == pytest.approx(18.0)
        assert ledger.available == pytest.approx(82.0)
        assert ledger.open_reservations == 0

    def test_forfeit_releases_in_full(self):
        admission, ledger = controller(100.0)
        record = make_record("acme", "a", budget=30.0)
        admission.admit(record, [])
        admission.forfeit(record.campaign_id)
        assert ledger.available == pytest.approx(100.0)
        assert not admission.has_deposit(record.campaign_id)

    def test_reattach_commits_base_spent_directly(self):
        """Attach-after-restart: pre-restart spending joins the pool as
        committed money; only the remainder is a refundable deposit."""
        admission, ledger = controller(100.0)
        record = make_record("acme", "a", budget=30.0, base_spent=12.0)
        admission.admit(record, [])
        assert ledger.committed == pytest.approx(12.0)
        assert ledger.outstanding == pytest.approx(18.0)
        admission.settle(record.campaign_id, 18.0)  # finished the rest
        assert ledger.committed == pytest.approx(30.0)


class TestQuotas:
    def test_max_active_rejection_changes_nothing(self):
        admission, ledger = controller(
            100.0, default_quota=TenantQuota(max_active=1)
        )
        admission.admit(make_record("acme", "a", budget=10.0), [])
        before = ledger.as_dict()
        with pytest.raises(QuotaExceededError, match="1 admitted"):
            admission.admit(make_record("acme", "b", budget=10.0), [])
        assert ledger.as_dict() == before
        assert admission.counters["rejected_quota"] == 1
        assert admission.counters["admitted"] == 1

    def test_max_budget_rejection(self):
        admission, _ledger = controller(
            100.0, default_quota=TenantQuota(max_budget=25.0)
        )
        admission.admit(make_record("acme", "a", budget=20.0), [])
        with pytest.raises(QuotaExceededError, match="budget quota"):
            admission.admit(make_record("acme", "b", budget=10.0), [])

    def test_quotas_are_per_tenant(self):
        admission, _ledger = controller(
            100.0,
            quotas={"small": TenantQuota(max_active=1)},
            default_quota=TenantQuota(),
        )
        admission.admit(make_record("small", "a", budget=10.0), [])
        with pytest.raises(QuotaExceededError):
            admission.admit(make_record("small", "b", budget=10.0), [])
        # Another tenant is unaffected by small's quota.
        admission.admit(make_record("big", "a", budget=10.0), [])
        admission.admit(make_record("big", "b", budget=10.0), [])

    def test_settlement_returns_quota_headroom(self):
        admission, _ledger = controller(
            100.0, default_quota=TenantQuota(max_active=1)
        )
        first = make_record("acme", "a", budget=10.0)
        admission.admit(first, [])
        admission.settle(first.campaign_id, 10.0)
        admission.admit(make_record("acme", "b", budget=10.0), [])


class TestBackpressure:
    def test_full_queue_rejects_equal_priority(self):
        admission, ledger = controller(100.0, queue_limit=2)
        pending = []
        for name in ("a", "b"):
            record = make_record("acme", name, budget=10.0)
            admission.admit(record, pending)
            pending.append(record)
        before = ledger.as_dict()
        with pytest.raises(ServiceSaturatedError, match="queue") as info:
            admission.admit(make_record("acme", "c", budget=10.0), pending)
        assert info.value.reason == "queue"
        assert ledger.as_dict() == before
        assert admission.counters["rejected_queue"] == 1

    def test_full_queue_sheds_strictly_lower_priority(self):
        admission, ledger = controller(100.0, queue_limit=2)
        low = make_record("acme", "low", budget=10.0, priority=0)
        mid = make_record("acme", "mid", budget=10.0, priority=1)
        pending = []
        for record in (low, mid):
            admission.admit(record, pending)
            pending.append(record)
        urgent = make_record("acme", "urgent", budget=10.0, priority=2)
        victims = admission.admit(urgent, pending)
        assert victims == [low]
        assert not admission.has_deposit(low.campaign_id)
        assert admission.has_deposit(urgent.campaign_id)
        assert admission.counters["shed"] == 1
        assert ledger.outstanding == pytest.approx(20.0)

    def test_saturated_ledger_rejects_without_side_effects(self):
        admission, ledger = controller(25.0)
        record = make_record("acme", "a", budget=20.0)
        admission.admit(record, [])
        before = ledger.as_dict()
        with pytest.raises(ServiceSaturatedError, match="pool") as info:
            admission.admit(make_record("acme", "b", budget=10.0), [record])
        assert info.value.reason == "ledger"
        assert ledger.as_dict() == before
        assert admission.counters["rejected_ledger"] == 1

    def test_saturated_ledger_sheds_lower_priority_deposits(self):
        admission, ledger = controller(25.0, queue_limit=8)
        low = make_record("acme", "low", budget=20.0, priority=0)
        pending = []
        admission.admit(low, pending)
        pending.append(low)
        urgent = make_record("acme", "urgent", budget=15.0, priority=1)
        victims = admission.admit(urgent, pending)
        assert victims == [low]
        assert ledger.outstanding == pytest.approx(15.0)
        assert admission.counters["shed"] == 1

    def test_sheds_newest_lowest_priority_first(self):
        admission, _ledger = controller(100.0, queue_limit=3)
        pending = []
        records = {
            name: make_record("acme", name, budget=10.0, priority=priority)
            for name, priority in (("p0-old", 0), ("p1", 1), ("p0-new", 0))
        }
        for record in records.values():
            admission.admit(record, pending)
            pending.append(record)
        urgent = make_record("acme", "urgent", budget=10.0, priority=2)
        victims = admission.admit(urgent, pending)
        assert victims == [records["p0-new"]]

    def test_equal_priority_is_never_shed(self):
        admission, _ledger = controller(100.0, queue_limit=1)
        incumbent = make_record("acme", "a", budget=10.0, priority=1)
        admission.admit(incumbent, [])
        with pytest.raises(ServiceSaturatedError):
            admission.admit(
                make_record("acme", "b", budget=10.0, priority=1),
                [incumbent],
            )
        assert admission.has_deposit(incumbent.campaign_id)
