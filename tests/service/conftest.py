"""Shared fixtures and helpers for the campaign-service tests."""

import dataclasses

import pytest

from repro.datasets.synthetic import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import run_parallel_hc_session
from repro.simulation.session import SessionConfig


@pytest.fixture(autouse=True)
def _no_env_chaos(monkeypatch):
    """Service tests compare results and journal *bytes* against solo
    reference runs; environment-injected chaos (the CI chaos matrix)
    would add nondeterministically-placed ``shard_incident`` lines.
    Service-under-chaos behavior is pinned explicitly with per-spec
    ChaosPlans instead."""
    for name in ("REPRO_CHAOS", "REPRO_CHAOS_SEED", "REPRO_SHARD_DEADLINE"):
        monkeypatch.delenv(name, raising=False)


def make_dataset(seed: int, num_groups: int = 4):
    return make_synthetic_dataset(
        num_groups=num_groups,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=10, num_expert=2),
        seed=seed,
    )


def make_config(seed: int, budget: float = 12.0, **overrides) -> SessionConfig:
    return SessionConfig(budget=budget, k=2, seed=seed, **overrides)


def signature(result):
    """Everything two equivalent campaign runs must agree on, bit for
    bit: per-round selections, the budget trajectory, and the final
    posterior arrays."""
    return (
        [tuple(record.query_fact_ids) for record in result.history],
        [record.budget_spent for record in result.history],
        [state.probabilities.tobytes() for state in result.belief],
    )


def solo_signature(dataset, config: SessionConfig, journal_path):
    """The solo-run reference for a service campaign.

    The solo run journals too (to a different file), so it takes the
    same resilient code path as every service campaign; only the
    service-side multiplexing differs.
    """
    solo_config = dataclasses.replace(config, journal_path=journal_path)
    result = run_parallel_hc_session(
        dataset, solo_config, jobs=2, inline=True
    )
    return signature(result)
