"""Integration tests: full pipelines across modules.

These exercise realistic flows end to end — dataset generation ->
aggregation -> belief initialization -> checking loop -> final labels —
and assert the paper's headline claims at small scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import BASELINE_NAMES, make_aggregator
from repro.core import (
    Crowd,
    ExactSelector,
    GreedySelector,
    MaxMarginalEntropySelector,
    RandomSelector,
    labeling_accuracy,
    run_flat_checking,
    total_quality,
)
from repro.datasets import (
    WorkerPoolSpec,
    accuracy_of_labels,
    initialize_belief,
    make_sentiment_dataset,
    make_synthetic_dataset,
)
from repro.simulation import (
    SessionConfig,
    SimulatedExpertPanel,
    run_hc_session,
)

POOL = WorkerPoolSpec(
    num_preliminary=20,
    num_expert=3,
    preliminary_accuracy=(0.6, 0.85),
    expert_accuracy=(0.9, 0.97),
)


@pytest.fixture(scope="module")
def dataset():
    return make_sentiment_dataset(
        num_groups=25, group_size=5, answers_per_fact=8, pool=POOL, seed=21
    )


class TestHeadlineClaims:
    def test_hc_improves_over_initialization(self, dataset):
        """The initialization-checking-update loop must beat pure
        aggregation on the same data (the paper's core claim)."""
        config = SessionConfig(theta=0.9, k=1, budget=150, seed=0)
        result = run_hc_session(dataset, config)
        assert result.history[-1].accuracy > result.history[0].accuracy
        assert result.history[-1].quality > result.history[0].quality

    def test_hc_beats_every_baseline_on_same_answers(self, dataset):
        """HC's final accuracy must top each baseline aggregating the
        full recorded answer matrix (which includes expert answers)."""
        config = SessionConfig(theta=0.9, k=1, budget=250, seed=0)
        hc_accuracy = run_hc_session(dataset, config).history[-1].accuracy
        truth = dataset.truth_vector()
        for name in BASELINE_NAMES:
            baseline = make_aggregator(name).fit(dataset.annotations)
            assert hc_accuracy >= baseline.accuracy(truth) - 1e-9, name

    def test_greedy_beats_random_selection(self, dataset):
        config = SessionConfig(theta=0.9, k=2, budget=120, seed=3)
        greedy = run_hc_session(
            dataset, config, selector=GreedySelector()
        )
        random = run_hc_session(
            dataset, config, selector=RandomSelector(rng=3)
        )
        assert (
            greedy.history[-1].quality >= random.history[-1].quality
        )

    def test_hierarchy_beats_flat_checking(self, dataset):
        """Figure 7's claim at small scale: HC quality after budget B
        exceeds flat checking (uniform init, whole crowd) by a wide
        margin."""
        config = SessionConfig(theta=0.9, k=1, budget=100, seed=5)
        hc = run_hc_session(dataset, config)
        panel = SimulatedExpertPanel(dataset.ground_truth, rng=6)
        flat = run_flat_checking(
            dataset.groups,
            dataset.crowd,
            panel,
            budget=100,
            selector=MaxMarginalEntropySelector(),
            ground_truth=dataset.ground_truth,
        )
        assert hc.history[-1].quality > flat.history[-1].quality

    def test_more_budget_never_hurts_much(self, dataset):
        """Quality is non-decreasing in budget up to simulation noise."""
        config_small = SessionConfig(theta=0.9, k=1, budget=60, seed=7)
        config_large = SessionConfig(theta=0.9, k=1, budget=240, seed=7)
        small = run_hc_session(dataset, config_small)
        large = run_hc_session(dataset, config_large)
        assert (
            large.history[-1].quality
            >= small.history[-1].quality - 1.0
        )


class TestCrossModuleConsistency:
    def test_final_labels_consistent_with_accuracy(self, dataset):
        config = SessionConfig(theta=0.9, k=1, budget=60, seed=1)
        result = run_hc_session(dataset, config)
        recomputed = accuracy_of_labels(
            result.final_labels, dataset.ground_truth
        )
        assert recomputed == pytest.approx(result.history[-1].accuracy)

    def test_quality_recorded_matches_belief(self, dataset):
        config = SessionConfig(theta=0.9, k=1, budget=45, seed=2)
        result = run_hc_session(dataset, config)
        assert result.history[-1].quality == pytest.approx(
            total_quality(result.belief)
        )

    def test_every_aggregator_initializes_hc(self, dataset):
        for name in BASELINE_NAMES:
            belief, _ = initialize_belief(
                dataset, make_aggregator(name), theta=0.9
            )
            accuracy = labeling_accuracy(belief, dataset.ground_truth)
            assert accuracy > 0.6, name

    def test_extra_aggregators_initialize_hc(self, dataset):
        """The beyond-paper methods (KOS, spectral, Gibbs-DS, MV-Beta)
        plug into the same initialization pipeline."""
        for name in ("KOS", "SPECTRAL", "GIBBS-DS", "MV-BETA"):
            belief, _ = initialize_belief(
                dataset, make_aggregator(name), theta=0.9
            )
            accuracy = labeling_accuracy(belief, dataset.ground_truth)
            assert accuracy > 0.6, name

    def test_hc_with_gibbs_initializer_end_to_end(self, dataset):
        config = SessionConfig(
            theta=0.9, k=1, budget=60, initializer="GIBBS-DS", seed=3
        )
        result = run_hc_session(dataset, config)
        assert result.history[-1].quality > result.history[0].quality

    def test_budget_accounting_matches_answers_served(self, dataset):
        experts, _ = dataset.split_crowd(0.9)
        panel = SimulatedExpertPanel(dataset.ground_truth, rng=8)
        config = SessionConfig(theta=0.9, k=2, budget=90, seed=8)
        result = run_hc_session(dataset, config, answer_source=panel)
        assert panel.answers_served == result.history[-1].budget_spent

    def test_opt_and_greedy_agree_on_tiny_dataset(self):
        tiny = make_synthetic_dataset(
            num_groups=3, group_size=3, answers_per_fact=5,
            pool=WorkerPoolSpec(num_preliminary=8, num_expert=2),
            seed=4,
        )
        belief, _ = initialize_belief(
            tiny, make_aggregator("MV"), theta=0.9
        )
        experts, _ = tiny.split_crowd(0.9)
        from repro.core import conditional_entropy

        def objective(selection):
            per_group = {}
            for fact_id in selection:
                per_group.setdefault(
                    belief.group_index_of(fact_id), []
                ).append(fact_id)
            return sum(
                conditional_entropy(
                    belief[index], per_group.get(index, []), experts
                )
                for index in range(len(belief))
            )

        greedy = GreedySelector().select(belief, experts, 1)
        opt = ExactSelector().select(belief, experts, 1)
        assert objective(greedy) == pytest.approx(objective(opt))


class TestRobustness:
    def test_tiny_budget_no_crash(self, dataset):
        config = SessionConfig(theta=0.9, k=1, budget=1, seed=0)
        result = run_hc_session(dataset, config)
        assert len(result.history) == 1  # CE of 3 costs 3 per round

    def test_single_group_dataset(self):
        solo = make_synthetic_dataset(
            num_groups=1, group_size=5, answers_per_fact=6,
            pool=POOL, seed=9,
        )
        config = SessionConfig(theta=0.9, k=1, budget=30, seed=9)
        result = run_hc_session(solo, config)
        assert result.history[-1].quality >= result.history[0].quality

    def test_group_size_one(self):
        singles = make_synthetic_dataset(
            num_groups=20, group_size=1, answers_per_fact=6,
            pool=POOL, seed=10,
        )
        config = SessionConfig(theta=0.9, k=1, budget=30, seed=10)
        result = run_hc_session(singles, config)
        assert result.history[-1].accuracy >= result.history[0].accuracy - 0.05

    def test_cached_panel_stops_gaining_from_reasks(self):
        """With answer caching (workers never change their mind),
        repeated checking of the same fact adds no new information and
        the run still terminates cleanly."""
        from repro.simulation import CachedExpertPanel

        tiny = make_synthetic_dataset(
            num_groups=4, group_size=3, answers_per_fact=6,
            pool=POOL, seed=11,
        )
        panel = CachedExpertPanel(tiny.ground_truth, rng=11)
        config = SessionConfig(theta=0.9, k=1, budget=200, seed=11)
        result = run_hc_session(tiny, config, answer_source=panel)
        assert result.history[-1].budget_spent <= 200
