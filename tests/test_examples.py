"""Regression tests: every example script must run end to end.

Examples are the first thing a new user executes; these tests run each
one in-process (cheap) and assert on key output lines so doc drift and
API breakage show up immediately.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _run_example(name: str, argv: list[str], capsys) -> str:
    script = EXAMPLES_DIR / name
    assert script.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(script)] + argv
    try:
        runpy.run_path(str(script), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart.py", [], capsys)
        assert "Greedy selects facts" in out
        assert "MAP labels" in out
        # The quickstart's experts agree with the ground truth here.
        assert "{1: True, 2: True, 3: False}" in out

    def test_sentiment_pipeline_small(self, capsys):
        out = _run_example("sentiment_pipeline.py", ["--small"], capsys)
        assert "tiering:" in out  # dataset summary printed
        assert "checking rounds" in out
        # Accuracy line of the summary: improvement reported.
        assert "->" in out

    def test_medical_imaging(self, capsys):
        out = _run_example("medical_imaging.py", [], capsys)
        assert "junior panel" in out
        assert "senior panel" in out
        assert "Study 0 final read" in out

    def test_compare_aggregators(self, capsys):
        out = _run_example("compare_aggregators.py", [], capsys)
        for name in ("MV", "DS", "EBCC"):
            assert name in out
        assert "answers/task" in out

    def test_multiclass_checking(self, capsys):
        out = _run_example("multiclass_checking.py", [], capsys)
        assert "Initial class accuracy" in out
        assert "Final class accuracy" in out
        assert "Sample final reads" in out

    def test_resumable_campaign(self, capsys):
        out = _run_example("resumable_campaign.py", [], capsys)
        assert "[lifetime 1] crashed mid-write" in out
        assert "[lifetime 2] resumed" in out
        assert "[lifetime 2] finished" in out

    def test_streaming_campaign(self, capsys):
        out = _run_example("streaming_campaign.py", [], capsys)
        assert "lifetime 1: killed mid-stream" in out
        assert "lifetime 2: resumed and drained the stream" in out
        assert "through the trust supervisor" in out
        assert "budget spent" in out

    def test_degrading_expert(self, capsys):
        out = _run_example("degrading_expert.py", [], capsys)
        assert "unsupervised baseline" in out
        assert "trust-supervised" in out
        assert "quarantine e0" in out
        assert "trust report: 1 quarantine(s)" in out
        assert "breaker open" in out
