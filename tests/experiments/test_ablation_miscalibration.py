"""Tests for the miscalibration-robustness ablation."""

import pytest

from repro.experiments import (
    DatasetSpec,
    ExperimentScale,
    run_ablation_miscalibration,
)

TINY = ExperimentScale(
    dataset=DatasetSpec(num_groups=10, group_size=4, answers_per_fact=6),
    budgets=(10, 20, 40),
    seed=0,
)


class TestMiscalibrationAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_miscalibration(TINY, gold_counts=(5, 50))

    def test_exact_curve_present(self, result):
        assert "exact accuracies" in result.labels

    def test_undersized_gold_set_skipped_and_recorded(self, result):
        """5 gold answers with Laplace smoothing cap the estimate at
        6/7 < 0.9, so no worker can be certified expert."""
        assert "5 gold tasks" not in result.labels
        assert "5 gold tasks" in result.metadata["skipped"]

    def test_calibrated_curve_runs(self, result):
        series = result.by_label("50 gold tasks")
        assert len(series.accuracy) == len(TINY.budgets)
        assert series.quality[-1] > series.quality[0]

    def test_exact_accuracies_no_worse_than_estimates(self, result):
        exact = result.by_label("exact accuracies").quality
        estimated = result.by_label("50 gold tasks").quality
        assert exact[-1] >= estimated[-1] - 2.0

    def test_metadata(self, result):
        assert result.metadata["gold_counts"] == [5, 50]


class TestMismatchedExpertPanel:
    def test_uses_true_accuracy_not_nominal(self):
        from repro.core import Crowd, Worker
        from repro.simulation import MismatchedExpertPanel

        # The operator believes the worker is near-perfect; in truth
        # they are a coin flipper.
        believed = Crowd([Worker("w", 0.99)])
        panel = MismatchedExpertPanel(
            {0: True}, true_accuracies={"w": 0.5}, rng=0
        )
        answers = [
            panel.collect([0], believed).answer_sets[0].answer_for(0)
            for _ in range(400)
        ]
        fraction_correct = sum(answers) / len(answers)
        assert 0.4 < fraction_correct < 0.6
