"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.experiments import (
    ExperimentResult,
    Series,
    ascii_chart,
    chart_experiment,
)


@pytest.fixture
def series():
    return [
        Series("HC", [0, 50, 100], [0.90, 0.95, 0.99], [-50, -30, -10]),
        Series("MV", [0, 50, 100], [0.85, 0.86, 0.87], []),
    ]


class TestAsciiChart:
    def test_contains_markers_and_legend(self, series):
        chart = ascii_chart(series, "accuracy")
        assert "o HC" in chart
        assert "x MV" in chart
        assert "o" in chart.splitlines()[0] or any(
            "o" in line for line in chart.splitlines()
        )

    def test_axis_labels_show_range(self, series):
        chart = ascii_chart(series, "accuracy")
        assert "0.990" in chart
        assert "0.850" in chart
        assert "100" in chart

    def test_quality_metric_skips_empty_series(self, series):
        chart = ascii_chart(series, "quality")
        assert "HC" in chart
        assert "MV" not in chart

    def test_extremes_are_plotted_on_border_rows(self, series):
        chart = ascii_chart([series[0]], "accuracy", height=10)
        lines = chart.splitlines()
        assert "o" in lines[0]      # max value on top row
        assert "o" in lines[9]      # min value on bottom row

    def test_flat_series_does_not_crash(self):
        flat = [Series("f", [0, 10], [0.5, 0.5], [])]
        chart = ascii_chart(flat, "accuracy")
        assert "f" in chart

    def test_validation(self, series):
        with pytest.raises(ValueError, match="metric"):
            ascii_chart(series, "speed")
        with pytest.raises(ValueError, match="at least 8x4"):
            ascii_chart(series, "accuracy", width=4, height=2)
        mismatched = [
            Series("a", [0, 1], [0.1, 0.2], []),
            Series("b", [0, 2], [0.1, 0.2], []),
        ]
        with pytest.raises(ValueError, match="same budget grid"):
            ascii_chart(mismatched, "accuracy")

    def test_too_many_series_rejected(self):
        many = [
            Series(f"s{i}", [0, 1], [0.1, 0.2], []) for i in range(9)
        ]
        with pytest.raises(ValueError, match="at most"):
            ascii_chart(many, "accuracy")

    def test_no_data_rejected(self):
        with pytest.raises(ValueError, match="no series"):
            ascii_chart([Series("e", [0, 1], [], [])], "accuracy")


class TestChartExperiment:
    def test_both_metrics_when_present(self, series):
        result = ExperimentResult(name="demo", series=series)
        text = chart_experiment(result)
        assert "demo — accuracy" in text
        assert "demo — quality" in text

    def test_renders_real_experiment(self):
        from repro.experiments import (
            DatasetSpec,
            ExperimentScale,
            run_figure7,
        )

        tiny = ExperimentScale(
            dataset=DatasetSpec(num_groups=6, group_size=3,
                                answers_per_fact=5),
            budgets=(6, 12, 18),
        )
        result = run_figure7(tiny)
        text = chart_experiment(result, width=32, height=8)
        assert "HC" in text and "NO HC" in text
