"""Unit tests for the experiment configuration presets."""

import pytest

from repro.experiments import (
    EXPERIMENT_POOL,
    PAPER_SCALE,
    SMALL_SCALE,
    DatasetSpec,
    ExperimentScale,
    get_scale,
)


class TestPresets:
    def test_paper_scale_matches_section_iv_a(self):
        spec = PAPER_SCALE.dataset
        assert spec.num_groups == 200
        assert spec.group_size == 5
        assert spec.answers_per_fact == 8
        assert PAPER_SCALE.max_budget == 1000

    def test_small_scale_is_smaller(self):
        assert (
            SMALL_SCALE.dataset.num_groups < PAPER_SCALE.dataset.num_groups
        )
        assert SMALL_SCALE.max_budget < PAPER_SCALE.max_budget

    def test_pool_straddles_theta_range(self):
        """Figure 4 needs preliminary accuracies spanning 0.8-0.9 and an
        expert tier at or above 0.9."""
        low, high = EXPERIMENT_POOL.preliminary_accuracy
        assert low < 0.8 < high < 0.9
        assert EXPERIMENT_POOL.expert_accuracy[0] >= 0.9

    def test_get_scale(self):
        assert get_scale("paper") is PAPER_SCALE
        assert get_scale("small") is SMALL_SCALE

    def test_get_scale_unknown(self):
        with pytest.raises(ValueError, match="unknown scale"):
            get_scale("huge")

    def test_max_budget_property(self):
        scale = ExperimentScale(
            dataset=DatasetSpec(num_groups=2), budgets=(5, 10, 3)
        )
        assert scale.max_budget == 10

    def test_frozen(self):
        with pytest.raises(AttributeError):
            PAPER_SCALE.seed = 1
