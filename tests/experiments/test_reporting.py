"""Unit tests for the text reporting helpers."""

import json

import pytest

from repro.experiments import (
    ExperimentResult,
    Series,
    format_experiment,
    format_series_table,
    format_table,
    format_table3,
    run_table3,
    save_json,
)


@pytest.fixture
def result():
    return ExperimentResult(
        name="demo",
        series=[
            Series("HC", [10, 20], [0.9, 0.95], [-5.0, -3.0]),
            Series("MV", [10, 20], [0.8, 0.82], []),
        ],
    )


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all lines equally wide


class TestFormatSeriesTable:
    def test_accuracy_table(self, result):
        text = format_series_table(result, "accuracy")
        assert "HC" in text and "MV" in text
        assert "0.9000" in text

    def test_quality_table_skips_seriesless(self, result):
        text = format_series_table(result, "quality")
        assert "HC" in text
        assert "MV" not in text  # MV carries no quality series

    def test_invalid_metric(self, result):
        with pytest.raises(ValueError):
            format_series_table(result, "speed")

    def test_no_data_raises(self):
        empty = ExperimentResult(name="x", series=[Series("a", [], [], [])])
        with pytest.raises(ValueError):
            format_series_table(empty, "accuracy")


class TestFormatExperiment:
    def test_contains_both_metrics(self, result):
        text = format_experiment(result)
        assert "accuracy" in text
        assert "quality" in text


class TestFormatTable3:
    def test_render(self):
        table = run_table3(
            k_values=(1,), num_facts=5, opt_timeout_seconds=10
        )
        text = format_table3(table)
        assert "OPT" in text and "Approx" in text
        assert "5 facts" in text


class TestFormatReplicated:
    def test_renders_mean_and_std(self, small_dataset):
        from repro.analysis import replicate_session
        from repro.experiments import format_replicated
        from repro.simulation import SessionConfig

        series = replicate_session(
            small_dataset,
            SessionConfig(budget=20),
            budgets=(10, 20),
            seeds=(0, 1),
            label="HC",
        )
        text = format_replicated([series])
        assert "replicated over 2 seeds" in text
        assert "±" in text
        assert "HC acc" in text

    def test_empty_rejected(self):
        from repro.experiments import format_replicated

        with pytest.raises(ValueError):
            format_replicated([])

    def test_mismatched_budgets_rejected(self, small_dataset):
        from repro.analysis import replicate_session
        from repro.experiments import format_replicated
        from repro.simulation import SessionConfig

        a = replicate_session(
            small_dataset, SessionConfig(budget=20), (10,), seeds=(0,)
        )
        b = replicate_session(
            small_dataset, SessionConfig(budget=20), (20,), seeds=(0,)
        )
        with pytest.raises(ValueError, match="budget grid"):
            format_replicated([a, b])


class TestSaveJson:
    def test_round_trip(self, result, tmp_path):
        path = save_json(result, tmp_path / "out" / "demo.json")
        data = json.loads(path.read_text())
        assert data["name"] == "demo"
        assert data["series"][0]["label"] == "HC"
