"""Tests for the Table III timing harness (small instances)."""

import pytest

from repro.experiments import make_timing_belief, run_table3


class TestMakeTimingBelief:
    def test_single_group(self):
        belief = make_timing_belief(6, seed=0)
        assert len(belief) == 1
        assert belief.num_facts == 6

    def test_non_degenerate(self):
        belief = make_timing_belief(5, seed=1)
        probabilities = belief[0].probabilities
        assert probabilities.min() > 0.0
        assert probabilities.max() < 1.0

    def test_seeded(self):
        import numpy as np

        a = make_timing_belief(4, seed=3)[0].probabilities
        b = make_timing_belief(4, seed=3)[0].probabilities
        assert np.array_equal(a, b)


class TestRunTable3:
    def test_rows_for_each_k(self):
        result = run_table3(
            k_values=(1, 2), num_facts=8, opt_timeout_seconds=30
        )
        assert [row.k for row in result.rows] == [1, 2]
        for row in result.rows:
            assert row.approx_seconds > 0
            assert row.opt_seconds is not None

    def test_opt_slower_than_approx_for_larger_k(self):
        result = run_table3(
            k_values=(1, 3), num_facts=10, opt_timeout_seconds=60
        )
        last = result.rows[-1]
        assert last.opt_seconds > last.approx_seconds

    def test_timeout_marks_and_skips(self):
        result = run_table3(
            k_values=(2, 3), num_facts=12, opt_timeout_seconds=0.001
        )
        assert result.rows[0].opt_seconds is None
        assert result.rows[0].opt_display == "timeout"
        # Once timed out, larger k is not attempted.
        assert result.rows[1].opt_seconds is None
        # Approx still measured.
        assert all(row.approx_seconds > 0 for row in result.rows)

    def test_metadata(self):
        result = run_table3(
            k_values=(1,), num_facts=6, opt_timeout_seconds=10
        )
        assert result.metadata["num_facts"] == 6
        assert result.metadata["num_experts"] == 2

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            run_table3(k_values=(1,), num_facts=4, repeats=0)

    def test_to_dict(self):
        result = run_table3(
            k_values=(1,), num_facts=5, opt_timeout_seconds=10
        )
        data = result.to_dict()
        assert data["rows"][0]["k"] == 1
