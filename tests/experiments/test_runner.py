"""Unit tests for the shared experiment machinery."""

import numpy as np
import pytest

from repro.core import Crowd, FactSet, FactoredBelief, BeliefState
from repro.core.hc import RoundRecord, RunResult
from repro.experiments import (
    ExperimentResult,
    Series,
    baseline_series,
    hc_series,
    sample_at_budgets,
    sample_expert_annotations,
)


def _fake_run() -> RunResult:
    belief = FactoredBelief(
        [BeliefState.uniform(FactSet.from_ids([0, 1]))]
    )
    history = [
        RoundRecord(-1, (), 0.0, 0.0, -10.0, 0.5),
        RoundRecord(0, (0,), 2.0, 2.0, -8.0, 0.6),
        RoundRecord(1, (1,), 2.0, 4.0, -6.0, 0.7),
        RoundRecord(2, (0,), 2.0, 6.0, -5.0, 0.8),
    ]
    return RunResult(belief=belief, history=history)


class TestSampleAtBudgets:
    def test_step_function_semantics(self):
        accuracy, quality = sample_at_budgets(_fake_run(), [0, 3, 4, 100])
        assert accuracy == [0.5, 0.6, 0.7, 0.8]
        assert quality == [-10.0, -8.0, -6.0, -5.0]

    def test_budget_before_first_round(self):
        accuracy, _quality = sample_at_budgets(_fake_run(), [1])
        assert accuracy == [0.5]

    def test_none_accuracy_becomes_nan(self):
        run = _fake_run()
        run.history[0] = RoundRecord(-1, (), 0.0, 0.0, -10.0, None)
        accuracy, _ = sample_at_budgets(run, [0])
        assert np.isnan(accuracy[0])


class TestHcSeries:
    def test_labels_and_lengths(self):
        series = hc_series("HC", _fake_run(), [0, 2, 4])
        assert series.label == "HC"
        assert len(series.budgets) == 3
        assert len(series.accuracy) == 3
        assert len(series.quality) == 3


class TestSeriesAndResult:
    def test_to_dict_round_trip(self):
        series = Series("x", [1, 2], [0.5, 0.6], [-3.0, -2.0])
        data = series.to_dict()
        assert data["label"] == "x"
        assert data["budgets"] == [1, 2]

    def test_by_label(self):
        result = ExperimentResult(
            name="test", series=[Series("a", [1], [0.5])]
        )
        assert result.by_label("a").accuracy == [0.5]
        with pytest.raises(KeyError):
            result.by_label("missing")

    def test_result_to_dict_filters_nonserializable(self):
        result = ExperimentResult(
            name="test",
            series=[],
            metadata={"ok": 1, "bad": object()},
        )
        data = result.to_dict()
        assert "ok" in data["metadata"]
        assert "bad" not in data["metadata"]


class TestSampleExpertAnnotations:
    def test_count_and_uniqueness(self, small_dataset, rng):
        experts, _ = small_dataset.split_crowd(0.9)
        annotations = sample_expert_annotations(
            small_dataset, experts, 30, rng
        )
        assert len(annotations) == 30
        pairs = {(a.task, a.worker) for a in annotations}
        assert len(pairs) == 30

    def test_only_expert_columns_used(self, small_dataset, rng):
        experts, _ = small_dataset.split_crowd(0.9)
        expert_columns = {
            small_dataset.worker_column(w.worker_id) for w in experts
        }
        annotations = sample_expert_annotations(
            small_dataset, experts, 25, rng
        )
        assert all(a.worker in expert_columns for a in annotations)

    def test_capped_at_pair_count(self, small_dataset, rng):
        experts, _ = small_dataset.split_crowd(0.9)
        maximum = small_dataset.num_facts * len(experts)
        annotations = sample_expert_annotations(
            small_dataset, experts, maximum + 1000, rng
        )
        assert len(annotations) == maximum

    def test_answers_track_expert_accuracy(self, small_dataset):
        experts, _ = small_dataset.split_crowd(0.9)
        rng = np.random.default_rng(3)
        annotations = sample_expert_annotations(
            small_dataset, experts,
            small_dataset.num_facts * len(experts), rng,
        )
        truth = small_dataset.truth_vector()
        correct = np.mean(
            [a.label == truth[a.task] for a in annotations]
        )
        expected = np.mean([w.accuracy for w in experts])
        assert correct == pytest.approx(expected, abs=0.05)


class TestBaselineSeries:
    def test_monotone_information_protocol(self, small_dataset):
        """The budget-B pool nests the budget-B' pool for B > B', and the
        series carries one accuracy per budget."""
        series = baseline_series(
            small_dataset, "MV", [0, 20, 40], theta=0.9, seed=0
        )
        assert series.label == "MV"
        assert len(series.accuracy) == 3
        assert all(0.0 <= value <= 1.0 for value in series.accuracy)

    def test_budget_zero_equals_cp_only_aggregation(self, small_dataset):
        from repro.aggregation import make_aggregator

        series = baseline_series(
            small_dataset, "DS", [0], theta=0.9, seed=0
        )
        cp_matrix = small_dataset.preliminary_annotations(0.9)
        direct = make_aggregator("DS").fit(cp_matrix)
        assert series.accuracy[0] == pytest.approx(
            direct.accuracy(small_dataset.truth_vector())
        )
