"""Tests for the one-command reproduction driver."""

import json

import pytest

from repro.experiments.reproduce import FIGURE_RUNNERS, run_all


class TestRunAll:
    def test_single_experiment_writes_artifacts(self, tmp_path):
        timings = run_all(
            scale_name="small",
            out_dir=tmp_path,
            only=["figure7"],
        )
        assert "figure7" in timings
        assert (tmp_path / "figure7.json").exists()
        assert (tmp_path / "figure7.txt").exists()
        assert (tmp_path / "timings.json").exists()

    def test_table3_scaled_down(self, tmp_path):
        run_all(
            scale_name="small",
            out_dir=tmp_path,
            only=["table3"],
            table3_facts=6,
            table3_max_k=2,
            table3_timeout=10.0,
        )
        payload = json.loads((tmp_path / "table3.json").read_text())
        assert [row["k"] for row in payload["rows"]] == [1, 2]

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_all(scale_name="small", out_dir=tmp_path, only=["nope"])

    def test_unknown_experiment_fails_fast_with_valid_names(self, tmp_path):
        """The typo must be caught before any experiment runs (no
        artifacts written) and the error must list every valid name."""
        from repro.experiments.reproduce import available_experiments

        with pytest.raises(ValueError, match="available:") as excinfo:
            run_all(
                scale_name="small",
                out_dir=tmp_path,
                only=["figure7", "figure99"],
            )
        message = str(excinfo.value)
        assert "'figure99'" in message
        for name in available_experiments():
            assert name in message
        # figure7 was valid and listed first, but nothing may have run.
        assert not (tmp_path / "figure7.json").exists()
        assert not (tmp_path / "timings.json").exists()

    def test_available_experiments_registry(self):
        from repro.experiments.reproduce import available_experiments

        names = available_experiments()
        assert set(FIGURE_RUNNERS) <= set(names)
        for name in ("table3", "sweep_theta_k", "figure2_replicated"):
            assert name in names

    def test_parallel_jobs_match_serial_outputs(self, tmp_path):
        """--jobs fans experiments across processes; every artifact
        must be identical to a serial run's."""
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        selected = ["figure7", "figure2_replicated"]
        serial_timings = run_all(
            scale_name="small", out_dir=serial_dir, only=selected
        )
        parallel_timings = run_all(
            scale_name="small", out_dir=parallel_dir, only=selected, jobs=2
        )
        assert set(serial_timings) == set(parallel_timings) == set(selected)
        for name in selected:
            assert json.loads(
                (parallel_dir / f"{name}.json").read_text()
            ) == json.loads((serial_dir / f"{name}.json").read_text())
            assert (parallel_dir / f"{name}.txt").read_text() == (
                serial_dir / f"{name}.txt"
            ).read_text()

    def test_unknown_scale_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scale"):
            run_all(scale_name="huge", out_dir=tmp_path, only=["figure7"])

    def test_registry_covers_all_figures(self):
        for figure in ("figure2", "figure3", "figure4", "figure5",
                       "figure6", "figure7"):
            assert figure in FIGURE_RUNNERS

    def test_sweep_entry(self, tmp_path):
        run_all(
            scale_name="small", out_dir=tmp_path, only=["sweep_theta_k"]
        )
        payload = json.loads(
            (tmp_path / "sweep_theta_k.json").read_text()
        )
        assert payload["thetas"] == [0.8, 0.85, 0.9]
        assert "sweep" in (tmp_path / "sweep_theta_k.txt").read_text()

    def test_replicated_entry(self, tmp_path):
        run_all(
            scale_name="small", out_dir=tmp_path,
            only=["figure2_replicated"],
        )
        payload = json.loads(
            (tmp_path / "figure2_replicated.json").read_text()
        )
        assert payload["num_runs"] == 5

    def test_json_matches_text_series(self, tmp_path):
        run_all(scale_name="small", out_dir=tmp_path, only=["figure7"])
        payload = json.loads((tmp_path / "figure7.json").read_text())
        text = (tmp_path / "figure7.txt").read_text()
        for series in payload["series"]:
            assert series["label"] in text
