"""Tests for the one-command reproduction driver."""

import json

import pytest

from repro.experiments.reproduce import FIGURE_RUNNERS, run_all


class TestRunAll:
    def test_single_experiment_writes_artifacts(self, tmp_path):
        timings = run_all(
            scale_name="small",
            out_dir=tmp_path,
            only=["figure7"],
        )
        assert "figure7" in timings
        assert (tmp_path / "figure7.json").exists()
        assert (tmp_path / "figure7.txt").exists()
        assert (tmp_path / "timings.json").exists()

    def test_table3_scaled_down(self, tmp_path):
        run_all(
            scale_name="small",
            out_dir=tmp_path,
            only=["table3"],
            table3_facts=6,
            table3_max_k=2,
            table3_timeout=10.0,
        )
        payload = json.loads((tmp_path / "table3.json").read_text())
        assert [row["k"] for row in payload["rows"]] == [1, 2]

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown experiment"):
            run_all(scale_name="small", out_dir=tmp_path, only=["nope"])

    def test_unknown_scale_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown scale"):
            run_all(scale_name="huge", out_dir=tmp_path, only=["figure7"])

    def test_registry_covers_all_figures(self):
        for figure in ("figure2", "figure3", "figure4", "figure5",
                       "figure6", "figure7"):
            assert figure in FIGURE_RUNNERS

    def test_sweep_entry(self, tmp_path):
        run_all(
            scale_name="small", out_dir=tmp_path, only=["sweep_theta_k"]
        )
        payload = json.loads(
            (tmp_path / "sweep_theta_k.json").read_text()
        )
        assert payload["thetas"] == [0.8, 0.85, 0.9]
        assert "sweep" in (tmp_path / "sweep_theta_k.txt").read_text()

    def test_replicated_entry(self, tmp_path):
        run_all(
            scale_name="small", out_dir=tmp_path,
            only=["figure2_replicated"],
        )
        payload = json.loads(
            (tmp_path / "figure2_replicated.json").read_text()
        )
        assert payload["num_runs"] == 5

    def test_json_matches_text_series(self, tmp_path):
        run_all(scale_name="small", out_dir=tmp_path, only=["figure7"])
        payload = json.loads((tmp_path / "figure7.json").read_text())
        text = (tmp_path / "figure7.txt").read_text()
        for series in payload["series"]:
            assert series["label"] in text
