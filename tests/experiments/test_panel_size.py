"""Tests for the panel-size extension and its ablation."""

import pytest

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    HierarchicalCrowdsourcing,
)
from repro.experiments import (
    DatasetSpec,
    ExperimentScale,
    run_ablation_panel_size,
)
from repro.simulation import SimulatedExpertPanel

TRUTH = {0: True, 1: False}
TINY = ExperimentScale(
    dataset=DatasetSpec(num_groups=8, group_size=3, answers_per_fact=6),
    budgets=(9, 18, 36),
    seed=0,
)


def _belief():
    return FactoredBelief(
        [BeliefState.from_marginals(FactSet.from_ids([0, 1]), [0.7, 0.4])]
    )


class TestPanelSize:
    def test_panel_picks_most_accurate(self):
        experts = Crowd.from_accuracies([0.91, 0.97, 0.93], prefix="e")
        runner = HierarchicalCrowdsourcing(experts, panel_size=2)
        accuracies = sorted(w.accuracy for w in runner.experts)
        assert accuracies == [0.93, 0.97]

    def test_full_panel_is_default(self):
        experts = Crowd.from_accuracies([0.91, 0.97])
        runner = HierarchicalCrowdsourcing(experts)
        assert len(runner.experts) == 2

    def test_invalid_panel_size(self):
        experts = Crowd.from_accuracies([0.91, 0.97])
        with pytest.raises(ValueError, match="panel_size"):
            HierarchicalCrowdsourcing(experts, panel_size=0)
        with pytest.raises(ValueError, match="panel_size"):
            HierarchicalCrowdsourcing(experts, panel_size=3)

    def test_smaller_panel_cheaper_rounds(self):
        experts = Crowd.from_accuracies([0.91, 0.97, 0.93])
        panel = SimulatedExpertPanel(TRUTH, rng=0)
        small = HierarchicalCrowdsourcing(
            experts, panel_size=1, k=1
        ).run(_belief(), panel, budget=6)
        assert small.history[1].cost == 1
        full = HierarchicalCrowdsourcing(experts, k=1).run(
            _belief(), SimulatedExpertPanel(TRUTH, rng=0), budget=6
        )
        assert full.history[1].cost == 3
        # Same budget, small panel runs more rounds.
        assert len(small.history) > len(full.history)


class TestPanelSizeAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return run_ablation_panel_size(TINY, panel_sizes=(1, 3))

    def test_series_per_panel_size(self, result):
        assert result.labels == ["panel=1", "panel=3"]

    def test_all_panels_improve_quality(self, result):
        for series in result.series:
            assert series.quality[-1] > series.quality[0]

    def test_oversized_panel_skipped(self):
        result = run_ablation_panel_size(TINY, panel_sizes=(1, 99))
        assert result.labels == ["panel=1"]

    def test_metadata_records_ce_size(self, result):
        assert result.metadata["ce_size"] >= 1
