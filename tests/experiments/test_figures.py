"""Smoke + shape tests for the figure runners (tiny scale).

Each test asserts the qualitative *shape* the paper reports, on a tiny
dataset so the whole module runs in seconds.  Full-scale shapes are
verified by the benchmark harness.
"""

import numpy as np
import pytest

from repro.experiments import (
    DatasetSpec,
    ExperimentScale,
    run_ablation_cost_model,
    run_ablation_selectors,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
)

TINY = ExperimentScale(
    dataset=DatasetSpec(num_groups=12, group_size=4, answers_per_fact=6),
    budgets=(10, 30, 60),
    seed=0,
)


@pytest.fixture(scope="module")
def fig2():
    return run_figure2(TINY, baselines=("MV", "DS", "EBCC"))


class TestFigure2:
    def test_series_present(self, fig2):
        assert "HC" in fig2.labels
        assert "MV" in fig2.labels

    def test_hc_dominates_baselines(self, fig2):
        """Paper: 'the accuracy of HC is consistently higher'."""
        hc = fig2.by_label("HC").accuracy
        for label in ("MV", "DS", "EBCC"):
            baseline = fig2.by_label(label).accuracy
            assert all(
                h >= b - 1e-9 for h, b in zip(hc, baseline)
            ), f"HC fell below {label}"

    def test_hc_accuracy_non_trivial(self, fig2):
        assert fig2.by_label("HC").accuracy[-1] > 0.8


class TestFigure3:
    def test_smaller_k_no_worse_at_end(self):
        result = run_figure3(TINY, k_values=(1, 3))
        k1 = result.by_label("k=1")
        k3 = result.by_label("k=3")
        assert k1.quality[-1] >= k3.quality[-1] - 1.0

    def test_all_k_improve_quality(self):
        result = run_figure3(TINY, k_values=(1, 2))
        for series in result.series:
            assert series.quality[-1] > series.quality[0]


class TestFigure4:
    def test_runs_for_each_theta(self):
        result = run_figure4(TINY, thetas=(0.85, 0.9))
        assert len(result.series) == 2
        for series in result.series:
            assert len(series.accuracy) == len(TINY.budgets)


class TestFigure5:
    def test_approx_close_to_opt_and_beats_random(self):
        """Paper: OPT ~= Approx >> Random (quality)."""
        result = run_figure5(TINY, k_values=(2,), opt_num_groups=8)
        opt = result.by_label("OPT (k=2)").quality
        approx = result.by_label("Approx (k=2)").quality
        random = result.by_label("Random (k=2)").quality
        assert approx[-1] >= random[-1]
        assert abs(opt[-1] - approx[-1]) < abs(opt[-1] - random[-1]) + 1e-9

    def test_budget_rescaled_for_smaller_dataset(self):
        result = run_figure5(TINY, k_values=(2,), opt_num_groups=6)
        series = result.series[0]
        assert max(series.budgets) <= TINY.max_budget


class TestFigure6:
    def test_all_initializers_run_and_converge_upward(self):
        result = run_figure6(TINY, initializers=("MV", "EBCC"))
        for series in result.series:
            assert series.quality[-1] >= series.quality[0]

    def test_accuracy_present_for_all(self):
        result = run_figure6(TINY, initializers=("MV", "DS"))
        for series in result.series:
            assert not np.isnan(series.accuracy).any()


class TestFigure7:
    def test_hc_improves_quality_faster_than_flat(self):
        """Paper: 'the hierarchical design improves the data quality
        much faster'."""
        result = run_figure7(TINY)
        hc = result.by_label("HC").quality
        flat = result.by_label("NO HC").quality
        assert hc[-1] > flat[-1]


class TestAblations:
    def test_cost_model_trails_unit_cost(self):
        result = run_ablation_cost_model(TINY)
        unit = result.by_label("unit cost").quality
        costly = result.by_label("cost = 1.5*Pr_cr").quality
        assert unit[-1] >= costly[-1] - 1e-9

    def test_selector_ablation_ranks(self):
        result = run_ablation_selectors(TINY, k_values=(1,))
        approx = result.by_label("Approx (k=1)").quality
        random = result.by_label("Random (k=1)").quality
        assert approx[-1] >= random[-1] - 0.5

    def test_marginal_rule_equals_greedy_at_k1(self):
        """The [41] special case: at k=1 MaxEntropy == Approx exactly."""
        result = run_ablation_selectors(TINY, k_values=(1,))
        approx = result.by_label("Approx (k=1)").quality
        marginal = result.by_label("MaxEntropy (k=1)").quality
        assert approx == pytest.approx(marginal)
