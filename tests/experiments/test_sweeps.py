"""Tests for the theta x k sweep and the replicated Figure 2."""

import numpy as np
import pytest

from repro.experiments import (
    DatasetSpec,
    ExperimentScale,
    SweepGrid,
    format_sweep,
    run_figure2_replicated,
    run_theta_k_sweep,
)

TINY = ExperimentScale(
    dataset=DatasetSpec(num_groups=8, group_size=3, answers_per_fact=6),
    budgets=(10, 20, 30),
    seed=0,
)


class TestThetaKSweep:
    @pytest.fixture(scope="class")
    def grid(self):
        return run_theta_k_sweep(
            TINY, thetas=(0.85, 0.9), k_values=(1, 2)
        )

    def test_shape(self, grid):
        assert grid.accuracy.shape == (2, 2)
        assert grid.quality.shape == (2, 2)

    def test_feasible_cells_populated(self, grid):
        assert not np.isnan(grid.accuracy).all()
        populated = ~np.isnan(grid.accuracy)
        assert (grid.accuracy[populated] >= 0).all()
        assert (grid.accuracy[populated] <= 1).all()

    def test_infeasible_theta_is_nan(self):
        grid = run_theta_k_sweep(
            TINY, thetas=(0.999,), k_values=(1,)
        )
        assert np.isnan(grid.accuracy).all()

    def test_best_configuration(self, grid):
        theta, k = grid.best_configuration()
        assert theta in (0.85, 0.9)
        assert k in (1, 2)

    def test_best_configuration_empty_grid_raises(self):
        grid = SweepGrid(
            thetas=[0.9],
            k_values=[1],
            accuracy=np.array([[np.nan]]),
            quality=np.array([[np.nan]]),
        )
        with pytest.raises(ValueError, match="no feasible"):
            grid.best_configuration()

    def test_format(self, grid):
        text = format_sweep(grid, "accuracy")
        assert "theta" in text and "sweep" in text
        text_quality = format_sweep(grid, "quality")
        assert "quality" in text_quality
        with pytest.raises(ValueError):
            format_sweep(grid, "speed")

    def test_to_dict_serializable(self, grid):
        import json

        json.dumps(grid.to_dict())


class TestFigure2Replicated:
    def test_error_bars(self):
        series = run_figure2_replicated(TINY, seeds=(0, 1, 2))
        assert series.num_runs == 3
        assert len(series.accuracy_mean) == len(TINY.budgets)
        # Simulation noise exists but is bounded.
        assert max(series.accuracy_std) < 0.2

    def test_mean_curve_improves(self):
        series = run_figure2_replicated(TINY, seeds=(0, 1))
        assert series.quality_mean[-1] >= series.quality_mean[0]
