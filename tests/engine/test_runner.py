"""API tests for ParallelCampaignRunner / run_parallel_hc_session."""

import pytest

from repro.core.trust import TrustPolicy
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import (
    BudgetLedger,
    KeyedExpertPanel,
    LedgerError,
    ParallelCampaignRunner,
    run_parallel_hc_session,
)
from repro.simulation import SessionConfig, run_hc_session


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(
        num_groups=5,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=12, num_expert=3),
        seed=2,
    )


def test_caller_supplied_selector_is_rejected(dataset):
    from repro.core import LazyGreedySelector

    with pytest.raises(ValueError, match="owns selection"):
        run_parallel_hc_session(dataset, selector=LazyGreedySelector())


def test_jobs_clamped_to_group_count(dataset):
    runner = ParallelCampaignRunner(
        dataset, SessionConfig(budget=8.0), jobs=16, inline=True
    )
    runner.prepare()
    assert runner.jobs_used == 5
    runner.run()


def test_prepare_is_idempotent_until_consumed(dataset):
    runner = ParallelCampaignRunner(
        dataset, SessionConfig(budget=8.0), jobs=2, inline=True
    )
    assert runner.prepare() is runner
    first = runner._prepared
    runner.prepare()
    assert runner._prepared is first
    runner.run()
    assert runner._prepared is None


def test_theta_without_experts_raises(dataset):
    with pytest.raises(ValueError, match="theta"):
        run_parallel_hc_session(
            dataset, SessionConfig(theta=0.9999, budget=8.0), jobs=2,
            inline=True,
        )


def test_sharded_collection_requires_plain_path(dataset, tmp_path):
    runner = ParallelCampaignRunner(
        dataset,
        SessionConfig(budget=8.0, journal_path=tmp_path / "j.jsonl"),
        jobs=2,
        inline=True,
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
        sharded_collection=True,
    )
    with pytest.raises(ValueError, match="plain path"):
        runner.prepare()


def test_sharded_collection_auto_enables_for_keyed_panel(dataset):
    serial = run_hc_session(
        dataset,
        SessionConfig(budget=16.0, k=2),
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=4),
    )
    parallel = run_parallel_hc_session(
        dataset,
        SessionConfig(budget=16.0, k=2),
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=4),
        jobs=3,
        inline=True,
    )
    assert [tuple(r.query_fact_ids) for r in parallel.history] == [
        tuple(r.query_fact_ids) for r in serial.history
    ]
    assert parallel.final_labels == serial.final_labels


def test_ledger_reports_committed_spending(dataset):
    runner = ParallelCampaignRunner(
        dataset, SessionConfig(budget=16.0, k=2), jobs=2, inline=True
    )
    result = runner.run()
    assert runner.ledger is not None
    assert runner.ledger.open_reservations == 0
    assert runner.ledger.committed == pytest.approx(
        result.history[-1].budget_spent
    )


def test_shared_ledger_caps_joint_spending(dataset):
    """Two campaigns over one ledger can never jointly exceed it."""
    ledger = BudgetLedger(16.0)
    first = run_parallel_hc_session(
        dataset, SessionConfig(budget=16.0, k=2), jobs=2, inline=True,
        ledger=ledger,
    )
    spent = first.history[-1].budget_spent
    assert ledger.committed == pytest.approx(spent)
    # The pool is nearly drained; a second full-budget campaign must
    # fail its first reservation rather than double-spend.
    with pytest.raises(LedgerError):
        run_parallel_hc_session(
            dataset, SessionConfig(budget=16.0, k=2), jobs=2, inline=True,
            ledger=ledger,
        )
    assert ledger.committed == pytest.approx(spent)


def test_trust_summary_survives_the_parallel_path(dataset):
    config = SessionConfig(
        budget=20.0, k=2, seed=3, trust_policy=TrustPolicy(seed=7)
    )
    serial = run_hc_session(dataset, config)
    parallel = run_parallel_hc_session(dataset, config, jobs=2, inline=True)
    assert parallel.trust is not None
    assert [
        (summary.worker_id, summary.mean, summary.breaker_state)
        for summary in parallel.trust.workers
    ] == [
        (summary.worker_id, summary.mean, summary.breaker_state)
        for summary in serial.trust.workers
    ]
