"""Crash-recovery tests: a killed parallel campaign resumes to a
byte-identical journal (and bit-identical beliefs).

The strategy: run one uninterrupted reference campaign, then recreate
every flavor of crash — torn trailing lines at arbitrary offsets, and a
real ``SIGKILL`` of a running campaign process — and assert the resumed
journal's bytes equal the reference journal's.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import SerializationError
from repro.core.trust import TrustPolicy
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import resume_parallel_session, run_parallel_hc_session
from repro.simulation import (
    FaultModel,
    FaultyExpertPanel,
    SessionConfig,
    SimulatedExpertPanel,
)

SRC = Path(__file__).resolve().parents[2] / "src"


@pytest.fixture(autouse=True)
def _no_env_chaos(monkeypatch):
    """These tests compare journal *bytes*; environment-injected chaos
    (the CI engine-chaos matrix) adds nondeterministically-placed
    ``shard_incident`` lines.  Chaos-under-journaling equivalence is
    pinned separately in test_supervisor.py, which strips them."""
    for name in ("REPRO_CHAOS", "REPRO_CHAOS_SEED", "REPRO_SHARD_DEADLINE"):
        monkeypatch.delenv(name, raising=False)


def _dataset():
    return make_synthetic_dataset(
        num_groups=6,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=12, num_expert=3),
        seed=3,
    )


FAULTS = FaultModel(no_show=0.2, partial=0.2, seed=9)


def _config(journal_path):
    return SessionConfig(
        budget=30.0,
        k=2,
        seed=5,
        faults=FAULTS,
        trust_policy=TrustPolicy(seed=7),
        reserve_accuracies=(0.92, 0.9),
        journal_path=journal_path,
    )


def _fresh_panel(dataset):
    return FaultyExpertPanel(
        SimulatedExpertPanel(
            dataset.ground_truth, rng=np.random.default_rng(5)
        ),
        FAULTS,
    )


class TestTornJournalResume:
    def test_every_cut_point_resumes_byte_identically(self, tmp_path):
        dataset = _dataset()
        reference_path = tmp_path / "reference.jsonl"
        reference = run_parallel_hc_session(
            dataset, _config(reference_path), jobs=3, inline=True
        )
        reference_bytes = reference_path.read_bytes()
        lines = reference_bytes.splitlines(keepends=True)
        assert len(lines) > 6
        # Cut after every intact prefix that contains a checkpoint
        # (header, engine, first checkpoint = 3 lines), tearing the
        # next line mid-record — the on-disk state a SIGKILL during an
        # append leaves behind.
        for cut in range(3, len(lines)):
            killed = tmp_path / f"killed{cut}.jsonl"
            killed.write_bytes(
                b"".join(lines[:cut]) + lines[cut][: len(lines[cut]) // 2]
            )
            session, pool = resume_parallel_session(killed, inline=True)
            with pool:
                result = session.run(_fresh_panel(dataset))
            assert killed.read_bytes() == reference_bytes, f"cut={cut}"
            for ours, theirs in zip(result.belief, reference.belief):
                assert np.array_equal(
                    ours.probabilities, theirs.probabilities
                )

    def test_resume_reads_jobs_from_engine_record(self, tmp_path):
        dataset = _dataset()
        journal = tmp_path / "campaign.jsonl"
        run_parallel_hc_session(
            dataset, _config(journal), jobs=3, inline=True
        )
        lines = journal.read_bytes().splitlines(keepends=True)
        assert json.loads(lines[1])["kind"] == "engine"
        truncated = tmp_path / "truncated.jsonl"
        truncated.write_bytes(b"".join(lines[:4]))
        session, pool = resume_parallel_session(truncated, inline=True)
        with pool:
            assert pool.jobs == 3  # from the engine record, not a default
            session.run(_fresh_panel(dataset))

    def test_resume_without_checkpoint_is_rejected(self, tmp_path):
        dataset = _dataset()
        journal = tmp_path / "campaign.jsonl"
        run_parallel_hc_session(
            dataset, _config(journal), jobs=2, inline=True
        )
        lines = journal.read_bytes().splitlines(keepends=True)
        headless = tmp_path / "headless.jsonl"
        headless.write_bytes(b"".join(lines[:2]))  # header + engine only
        with pytest.raises(SerializationError, match="checkpoint"):
            resume_parallel_session(headless, inline=True)


_KILL_HELPER = '''
"""Subprocess helper: run the resume test's parallel campaign.

Argv: journal_path delay_seconds.  ``delay_seconds`` slows each round's
answer collection so the parent can SIGKILL the campaign mid-run; it
changes no answers and no journal bytes.
"""
import sys
import time

import numpy as np

from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.simulation import FaultModel, SessionConfig, SimulatedExpertPanel
from repro.core.trust import TrustPolicy
from repro.engine import run_parallel_hc_session


class SlowPanel:
    def __init__(self, inner, delay):
        self._inner = inner
        self._delay = delay

    def collect(self, query_fact_ids, experts):
        time.sleep(self._delay)
        return self._inner.collect(query_fact_ids, experts)

    def get_state(self):
        return self._inner.get_state()

    def set_state(self, state):
        self._inner.set_state(state)


def main():
    journal_path, delay = sys.argv[1], float(sys.argv[2])
    dataset = make_synthetic_dataset(
        num_groups=6, group_size=4, answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=12, num_expert=3), seed=3,
    )
    config = SessionConfig(
        budget=30.0, k=2, seed=5,
        faults=FaultModel(no_show=0.2, partial=0.2, seed=9),
        trust_policy=TrustPolicy(seed=7),
        reserve_accuracies=(0.92, 0.9),
        journal_path=journal_path,
    )
    panel = SlowPanel(
        SimulatedExpertPanel(
            dataset.ground_truth, rng=np.random.default_rng(5)
        ),
        delay,
    )
    run_parallel_hc_session(
        dataset, config, jobs=3, inline=True, answer_source=panel
    )
    print("COMPLETED")


if __name__ == "__main__":
    main()
'''


class TestSigkillResume:
    def _run_helper(self, tmp_path, journal, delay, kill_after_lines=None):
        helper = tmp_path / "campaign_helper.py"
        helper.write_text(_KILL_HELPER)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        process = subprocess.Popen(
            [sys.executable, str(helper), str(journal), str(delay)],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        if kill_after_lines is None:
            out, err = process.communicate(timeout=180)
            assert process.returncode == 0, err.decode()
            assert b"COMPLETED" in out
            return None
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            if process.poll() is not None:
                break  # finished before we could kill it
            if (
                journal.exists()
                and journal.read_bytes().count(b"\n") >= kill_after_lines
            ):
                process.send_signal(signal.SIGKILL)
                break
            time.sleep(0.01)
        process.wait(timeout=60)
        return process.returncode

    def test_sigkilled_campaign_resumes_byte_identically(self, tmp_path):
        dataset = _dataset()
        reference = tmp_path / "reference.jsonl"
        self._run_helper(tmp_path, reference, delay=0.0)
        reference_bytes = reference.read_bytes()
        assert reference_bytes.count(b"\n") > 6

        killed = tmp_path / "killed.jsonl"
        returncode = self._run_helper(
            tmp_path, killed, delay=0.3, kill_after_lines=5
        )
        assert returncode is not None
        killed_bytes = killed.read_bytes()
        assert killed_bytes != reference_bytes
        assert reference_bytes.startswith(
            killed_bytes[: killed_bytes.rfind(b"\n") + 1]
        )

        session, pool = resume_parallel_session(killed, inline=True)
        with pool:
            session.run(_fresh_panel(dataset))
        assert killed.read_bytes() == reference_bytes


class TestSparseKernelResume:
    """The truncated kernel holds the same resume bar as the dense one:
    a ``belief_epsilon > 0`` campaign's journal (which serializes
    ``SparseBeliefState`` checkpoints, marked by their ``epsilon`` key)
    must resume byte-identically from torn prefixes."""

    EPSILON = 0.05

    def _sparse_config(self, journal_path):
        config = _config(journal_path)
        config.belief_epsilon = self.EPSILON
        return config

    def test_sparse_checkpoints_resume_byte_identically(self, tmp_path):
        dataset = _dataset()
        reference_path = tmp_path / "reference.jsonl"
        reference = run_parallel_hc_session(
            dataset, self._sparse_config(reference_path), jobs=3,
            inline=True,
        )
        reference_bytes = reference_path.read_bytes()
        # the sparse kernel really ran: checkpoints carry its epsilon
        assert b'"epsilon":0.05' in reference_bytes
        lines = reference_bytes.splitlines(keepends=True)
        assert len(lines) > 6
        # A thinned version of the dense sweep (every other cut point);
        # the cut mechanics are identical, the serialized payload isn't.
        for cut in range(3, len(lines), 2):
            killed = tmp_path / f"killed{cut}.jsonl"
            killed.write_bytes(
                b"".join(lines[:cut]) + lines[cut][: len(lines[cut]) // 2]
            )
            session, pool = resume_parallel_session(killed, inline=True)
            with pool:
                result = session.run(_fresh_panel(dataset))
            assert killed.read_bytes() == reference_bytes, f"cut={cut}"
            for ours, theirs in zip(result.belief, reference.belief):
                assert np.array_equal(
                    ours.probabilities, theirs.probabilities
                )
