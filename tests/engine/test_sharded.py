"""Tests for the k-way gain merge and the sharded selector/update seams."""

import numpy as np
import pytest

from repro.core import (
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    LazyGreedySelector,
    update_with_answer_set,
)
from repro.engine import (
    ShardPool,
    ShardedSelector,
    ShardedUpdateEngine,
    merge_shard_selections,
)


class TestMergeShardSelections:
    def test_takes_globally_highest_gains(self):
        merged = merge_shard_selections(
            [[(1, 0.9), (2, 0.2)], [(3, 0.5), (4, 0.4)]], k=3
        )
        assert merged == [1, 3, 4]

    def test_ties_break_toward_lowest_fact_id(self):
        merged = merge_shard_selections([[(7, 0.5)], [(3, 0.5)]], k=2)
        assert merged == [3, 7]

    def test_stops_at_k(self):
        merged = merge_shard_selections(
            [[(1, 0.9), (2, 0.8), (3, 0.7)]], k=2
        )
        assert merged == [1, 2]

    def test_stops_when_no_gain_beats_tolerance(self):
        merged = merge_shard_selections(
            [[(1, 0.9), (2, 0.0)], [(3, 1e-15)]], k=5
        )
        assert merged == [1]

    def test_empty_inputs(self):
        assert merge_shard_selections([], k=3) == []
        assert merge_shard_selections([[], []], k=3) == []

    def test_merge_of_one_shard_is_its_prefix(self):
        sequence = [(5, 0.5), (1, 0.4), (9, 0.3)]
        assert merge_shard_selections([sequence], k=2) == [5, 1]


def _belief(num_groups: int, group_size: int, seed: int) -> FactoredBelief:
    rng = np.random.default_rng(seed)
    groups = []
    for index in range(num_groups):
        start = index * group_size
        facts = FactSet.from_ids(range(start, start + group_size))
        groups.append(
            BeliefState(facts, rng.dirichlet(np.ones(2 ** group_size)))
        )
    return FactoredBelief(groups)


class TestShardedSelector:
    @pytest.mark.parametrize("jobs", [1, 2, 3, 5])
    def test_matches_lazy_greedy_over_rounds(self, jobs):
        """The tentpole selection guarantee: identical picks for any
        shard count, across rounds with interleaved belief updates."""
        experts = Crowd.from_accuracies([0.85, 0.95], prefix="e")
        checker = Crowd.from_accuracies([0.9], prefix="c")[0]
        serial_belief = _belief(5, 4, seed=11)
        sharded_belief = _belief(5, 4, seed=11)
        serial = LazyGreedySelector()
        answer_rng = np.random.default_rng(2)
        with ShardPool(sharded_belief, experts, jobs, inline=True) as pool:
            sharded = ShardedSelector(pool)
            engine = ShardedUpdateEngine(pool)
            for _ in range(4):
                picks = serial.select(serial_belief, experts, 3)
                assert (
                    sharded.select(sharded_belief, experts, 3) == picks
                )
                family_answers = {
                    fact_id: bool(answer_rng.integers(2))
                    for fact_id in picks
                }
                # Mirror hc's _apply_family: one multi-fact answer set
                # per touched group (float op order matters for bits).
                by_group: dict[int, dict[int, bool]] = {}
                for fact_id, value in family_answers.items():
                    group_index = serial_belief.group_index_of(fact_id)
                    by_group.setdefault(group_index, {})[fact_id] = value
                for group_index, answers in by_group.items():
                    serial_belief.replace_group(
                        group_index,
                        update_with_answer_set(
                            serial_belief[group_index],
                            AnswerSet(worker=checker, answers=answers),
                        ),
                    )
                serial.invalidate_groups(by_group.keys())
                from repro.core.answers import AnswerFamily

                engine.apply_family(
                    sharded_belief,
                    AnswerFamily(
                        answer_sets=(
                            AnswerSet(
                                worker=checker, answers=family_answers
                            ),
                        )
                    ),
                )
                for ours, theirs in zip(sharded_belief, serial_belief):
                    assert np.array_equal(
                        ours.probabilities, theirs.probabilities
                    )

    def test_pool_clamps_jobs_to_groups(self):
        experts = Crowd.from_accuracies([0.9], prefix="e")
        with ShardPool(_belief(3, 3, seed=0), experts, 8, inline=True) as pool:
            assert pool.jobs == 3

    def test_invalidate_groups_is_a_noop(self):
        experts = Crowd.from_accuracies([0.9], prefix="e")
        with ShardPool(_belief(2, 3, seed=0), experts, 2, inline=True) as pool:
            ShardedSelector(pool).invalidate_groups({0, 1})
