"""Spawned-process shard tests (the real multiprocessing transport).

These run actual ``spawn`` children, so they are the slow end of the
engine suite; the bit-identity logic itself is covered much more
broadly by the inline-shard tests in ``test_equivalence.py``.
"""

import numpy as np
import pytest

from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import KeyedExpertPanel, run_parallel_hc_session
from repro.simulation import SessionConfig, run_hc_session


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(
        num_groups=4,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=10, num_expert=2),
        seed=6,
    )


def test_spawned_shards_match_serial(dataset):
    """2 spawned worker processes, sharded collection included: the
    full IPC path (pickled beliefs, staged posteriors, keyed answers)
    must reproduce the serial run bit for bit."""
    config = SessionConfig(budget=14.0, k=2, seed=1)
    serial = run_hc_session(
        dataset,
        config,
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
    )
    parallel = run_parallel_hc_session(
        dataset,
        config,
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
        jobs=2,
        inline=False,
    )
    assert [tuple(r.query_fact_ids) for r in parallel.history] == [
        tuple(r.query_fact_ids) for r in serial.history
    ]
    assert [r.budget_spent for r in parallel.history] == [
        r.budget_spent for r in serial.history
    ]
    for ours, theirs in zip(parallel.belief, serial.belief):
        assert np.array_equal(ours.probabilities, theirs.probabilities)


def test_process_pool_closes_cleanly(dataset):
    from repro.datasets.grouping import initialize_belief
    from repro.aggregation.registry import make_aggregator
    from repro.engine import ShardPool

    experts, _ = dataset.split_crowd(0.9)
    belief, _ = initialize_belief(
        dataset, make_aggregator("EBCC"), 0.9, smoothing=0.01
    )
    pool = ShardPool(belief, experts, 2, inline=False)
    try:
        assert pool.jobs == 2
        selections = pool.broadcast("select", 2)
        assert len(selections) == 2
    finally:
        pool.close()
    # Closing twice must be safe.
    pool.close()
