"""Spawned-process shard tests (the real multiprocessing transport).

These run actual ``spawn`` children, so they are the slow end of the
engine suite; the bit-identity logic itself is covered much more
broadly by the inline-shard tests in ``test_equivalence.py``.
"""

import numpy as np
import pytest

from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import KeyedExpertPanel, run_parallel_hc_session
from repro.simulation import SessionConfig, run_hc_session


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(
        num_groups=4,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=10, num_expert=2),
        seed=6,
    )


def test_spawned_shards_match_serial(dataset):
    """2 spawned worker processes, sharded collection included: the
    full IPC path (pickled beliefs, staged posteriors, keyed answers)
    must reproduce the serial run bit for bit."""
    config = SessionConfig(budget=14.0, k=2, seed=1)
    serial = run_hc_session(
        dataset,
        config,
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
    )
    parallel = run_parallel_hc_session(
        dataset,
        config,
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
        jobs=2,
        inline=False,
    )
    assert [tuple(r.query_fact_ids) for r in parallel.history] == [
        tuple(r.query_fact_ids) for r in serial.history
    ]
    assert [r.budget_spent for r in parallel.history] == [
        r.budget_spent for r in serial.history
    ]
    for ours, theirs in zip(parallel.belief, serial.belief):
        assert np.array_equal(ours.probabilities, theirs.probabilities)


def test_process_pool_closes_cleanly(dataset):
    from repro.datasets.grouping import initialize_belief
    from repro.aggregation.registry import make_aggregator
    from repro.engine import ShardPool

    experts, _ = dataset.split_crowd(0.9)
    belief, _ = initialize_belief(
        dataset, make_aggregator("EBCC"), 0.9, smoothing=0.01
    )
    pool = ShardPool(belief, experts, 2, inline=False)
    try:
        assert pool.jobs == 2
        selections = pool.broadcast("select", 2)
        assert len(selections) == 2
    finally:
        pool.close()
    # Closing twice must be safe.
    pool.close()


class TestStartupBytes:
    """Satellite regression: the crowd/panel payload is pickled once.

    Before the pre-serialized transport, every ``ProcessShard`` init
    frame re-pickled the full expert panel and answer source, so
    startup payload bytes grew linearly with ``jobs``.  Now the
    (experts, answer_source) blob is serialized once at
    ``HIGHEST_PROTOCOL`` into a shared segment and every worker's init
    frame carries only a reference plus its own group slice — total
    init bytes must stay flat as jobs grow.
    """

    #: Per-worker framing slack (command tag, shared-segment ref,
    #: tolerances) — generous; the shared panel blob alone is bigger.
    FRAME_SLACK = 1024

    @pytest.fixture(scope="class")
    def wide_dataset(self):
        """A 40-expert panel, so the shared blob dwarfs the framing and
        a single re-pickled copy per worker is unmissable."""
        return make_synthetic_dataset(
            num_groups=8,
            group_size=4,
            answers_per_fact=6,
            pool=WorkerPoolSpec(num_preliminary=10, num_expert=40),
            seed=7,
        )

    def _pool(self, dataset, jobs):
        from repro.aggregation.registry import make_aggregator
        from repro.datasets.grouping import initialize_belief
        from repro.engine import KeyedExpertPanel, ShardPool

        experts, _ = dataset.split_crowd(0.9)
        belief, _ = initialize_belief(
            dataset, make_aggregator("EBCC"), 0.9, smoothing=0.01
        )
        return ShardPool(
            belief,
            experts,
            jobs,
            inline=False,
            answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
        )

    def test_payload_bytes_do_not_scale_with_jobs(self, wide_dataset):
        totals = {}
        payload_sizes = {}
        for jobs in (1, 4):
            pool = self._pool(wide_dataset, jobs)
            try:
                stats = pool.transport_stats()
            finally:
                pool.close()
            assert stats["shared_payload_bytes"] > 0
            assert len(stats["init_bytes"]) == pool.jobs
            totals[jobs] = stats["init_bytes_total"]
            payload_sizes[jobs] = stats["shared_payload_bytes"]

        # The shared blob is the same bytes however many workers exist.
        assert payload_sizes[4] == payload_sizes[1]
        # Init frames partition the group states, so their *sum* is
        # flat in jobs — only per-worker framing may be added.  A
        # re-pickled panel per worker would blow through this bound.
        assert totals[4] <= totals[1] + 4 * self.FRAME_SLACK
        # The three extra workers must not add even ONE more copy of
        # the panel blob (the old transport re-pickled it per worker).
        assert totals[4] - totals[1] < payload_sizes[1]

    def test_shared_payload_round_trips(self, dataset):
        """The worker actually reconstructs the panel from the shared
        segment: a spawned pool must still answer selections."""
        pool = self._pool(dataset, 2)
        try:
            stats = pool.transport_stats()
            selections = pool.broadcast("select", 1)
            assert len(selections) == 2
            # replies flowed over the counted pipe
            after = pool.transport_stats()
            assert after["bytes_received"] > stats["bytes_received"]
        finally:
            pool.close()
