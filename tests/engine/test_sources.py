"""Tests for the partition-independent keyed answer source."""

import numpy as np
import pytest

from repro.core import BeliefState, Crowd, FactSet, FactoredBelief
from repro.engine import (
    KeyedExpertPanel,
    ShardPool,
    ShardedAnswerSource,
    stable_worker_digest,
)

TRUTH = {fact_id: fact_id % 3 == 0 for fact_id in range(12)}


def _experts() -> Crowd:
    return Crowd.from_accuracies([0.8, 0.9, 0.95], prefix="e")


def _family_as_dict(family):
    return {
        answer_set.worker.worker_id: dict(answer_set.answers)
        for answer_set in family.answer_sets
    }


class TestStableWorkerDigest:
    def test_known_value_is_process_independent(self):
        # Frozen: a spawn child must compute the same digest as the
        # coordinator regardless of PYTHONHASHSEED.
        assert stable_worker_digest("e0") == 6667833931945024209

    def test_distinct_workers_get_distinct_digests(self):
        digests = {stable_worker_digest(f"w{index}") for index in range(50)}
        assert len(digests) == 50


class TestKeyedExpertPanel:
    def test_answers_are_order_independent(self):
        experts = _experts()
        forward = KeyedExpertPanel(TRUTH, seed=3).collect(
            [0, 1, 2, 3], experts
        )
        backward = KeyedExpertPanel(TRUTH, seed=3).collect(
            [3, 2, 1, 0], experts
        )
        assert _family_as_dict(forward) == _family_as_dict(backward)

    def test_answers_are_partition_independent(self):
        experts = _experts()
        whole = _family_as_dict(
            KeyedExpertPanel(TRUTH, seed=3).collect(range(6), experts)
        )
        split_panel = KeyedExpertPanel(TRUTH, seed=3)
        first = _family_as_dict(split_panel.collect([0, 1, 2], experts))
        # A fresh panel for the other half: shard replicas never see
        # each other's facts, so their ask counters must still agree.
        other_panel = KeyedExpertPanel(TRUTH, seed=3)
        second = _family_as_dict(other_panel.collect([3, 4, 5], experts))
        merged = {
            worker_id: {**first[worker_id], **second[worker_id]}
            for worker_id in whole
        }
        assert merged == whole

    def test_reasking_advances_the_stream(self):
        experts = _experts()
        panel = KeyedExpertPanel(TRUTH, seed=3)
        first = _family_as_dict(panel.collect([0], experts))
        streams = [
            _family_as_dict(panel.collect([0], experts)) for _ in range(8)
        ]
        # Not every re-ask can repeat the first answer for every worker
        # (the accuracy draws are independent per ask).
        assert any(stream != first for stream in streams)

    def test_accuracy_one_always_answers_truth(self):
        oracle = Crowd.from_accuracies([1.0], prefix="o")
        panel = KeyedExpertPanel(TRUTH, seed=0)
        family = panel.collect(list(TRUTH), oracle)
        assert _family_as_dict(family)["o0"] == TRUTH

    def test_state_round_trip_replays_future_answers(self):
        experts = _experts()
        panel = KeyedExpertPanel(TRUTH, seed=3)
        panel.collect([0, 1], experts)
        state = panel.get_state()
        reference = _family_as_dict(panel.collect([0, 2], experts))
        restored = KeyedExpertPanel(TRUTH, seed=3)
        restored.set_state(state)
        assert _family_as_dict(restored.collect([0, 2], experts)) == reference
        assert restored.answers_served == panel.answers_served

    def test_answers_served_counts(self):
        panel = KeyedExpertPanel(TRUTH, seed=0)
        panel.collect([0, 1, 2], _experts())
        assert panel.answers_served == 9


class TestShardedAnswerSource:
    def test_matches_one_serial_panel(self):
        rng = np.random.default_rng(0)
        groups = [
            BeliefState(
                FactSet.from_ids(range(start, start + 3)),
                rng.dirichlet(np.ones(8)),
            )
            for start in range(0, 12, 3)
        ]
        belief = FactoredBelief(groups)
        experts = _experts()
        serial = KeyedExpertPanel(TRUTH, seed=3)
        queries = [0, 4, 5, 9, 11]
        with ShardPool(
            belief,
            experts,
            3,
            inline=True,
            answer_source=KeyedExpertPanel(TRUTH, seed=3),
        ) as pool:
            sharded = ShardedAnswerSource(pool)
            for _ in range(3):  # repeat so ask counters advance in sync
                ours = sharded.collect(queries, experts)
                theirs = serial.collect(queries, experts)
                assert _family_as_dict(ours) == _family_as_dict(theirs)
                # And the family structure (worker order, fact order)
                # must match exactly, not just the values.
                assert [
                    answer_set.worker.worker_id
                    for answer_set in ours.answer_sets
                ] == [
                    answer_set.worker.worker_id
                    for answer_set in theirs.answer_sets
                ]
            assert sharded.answers_served == serial.answers_served
