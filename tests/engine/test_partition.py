"""Unit tests for deterministic group partitioning."""

import pytest

from repro.engine import partition_groups


def test_balanced_contiguous_split():
    assert partition_groups(7, 3) == [(0, 1, 2), (3, 4), (5, 6)]


def test_every_group_appears_exactly_once():
    for num_groups in range(0, 25):
        for num_shards in range(1, 9):
            shards = partition_groups(num_groups, num_shards)
            assert len(shards) == num_shards
            flat = [index for shard in shards for index in shard]
            assert flat == list(range(num_groups))


def test_sizes_differ_by_at_most_one():
    for num_groups in range(1, 25):
        for num_shards in range(1, 9):
            sizes = [
                len(shard)
                for shard in partition_groups(num_groups, num_shards)
            ]
            assert max(sizes) - min(sizes) <= 1


def test_more_shards_than_groups_yields_empty_tails():
    shards = partition_groups(2, 4)
    assert shards == [(0,), (1,), (), ()]


def test_deterministic():
    assert partition_groups(13, 4) == partition_groups(13, 4)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        partition_groups(-1, 2)
    with pytest.raises(ValueError):
        partition_groups(3, 0)
