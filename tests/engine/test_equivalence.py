"""Property tests: the parallel engine is bit-identical to the serial
runtime — same selections, same histories, same belief bytes, same
journal bytes — for 1, 2 and 4 workers, on randomized instances, with
and without fault injection and trust quarantine."""

import json

import numpy as np
import pytest

from repro.core.serialization import strip_frame
from repro.core.trust import TrustPolicy
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import run_parallel_hc_session
from repro.simulation import FaultModel, SessionConfig, run_hc_session

JOB_COUNTS = (1, 2, 4)


def _dataset(seed: int, num_groups: int = 6, group_size: int = 4):
    return make_synthetic_dataset(
        num_groups=num_groups,
        group_size=group_size,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=12, num_expert=3),
        seed=seed,
    )


def _signature(result):
    return (
        [tuple(record.query_fact_ids) for record in result.history],
        [record.budget_spent for record in result.history],
        [record.quality for record in result.history],
        [state.probabilities.tobytes() for state in result.belief],
    )


def _journal_without_engine_lines(path) -> bytes:
    """A parallel journal is the serial journal plus one engine record
    (and, when the CI chaos matrix injects transport faults, some
    ``shard_incident`` supervision records).  The extra records shift
    the v8 sequence numbers of everything after them, so both sides are
    compared with the framing fields stripped."""
    kept = []
    for line in path.read_bytes().splitlines(keepends=True):
        record = json.loads(line)
        if record.get("kind") not in ("engine", "shard_incident"):
            kept.append(
                json.dumps(
                    strip_frame(record), separators=(",", ":")
                ).encode()
                + b"\n"
            )
    return b"".join(kept)


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_plain_campaign_bit_identical(seed):
    dataset = _dataset(seed)
    config = SessionConfig(budget=24.0, k=2 + seed % 2, seed=seed)
    serial = run_hc_session(dataset, config)
    reference = _signature(serial)
    for jobs in JOB_COUNTS:
        parallel = run_parallel_hc_session(
            dataset, config, jobs=jobs, inline=True
        )
        assert _signature(parallel) == reference
        assert parallel.final_labels == serial.final_labels


@pytest.mark.parametrize("jobs", JOB_COUNTS)
def test_resilient_campaign_bit_identical(jobs, tmp_path):
    """Fault injection + trust quarantine + reserves + journaling: the
    full resilient runtime, sharded, byte-for-byte."""
    dataset = _dataset(3)
    faults = FaultModel(no_show=0.2, partial=0.2, seed=9)

    def config(path):
        return SessionConfig(
            budget=30.0,
            k=2,
            seed=5,
            faults=faults,
            trust_policy=TrustPolicy(seed=7),
            reserve_accuracies=(0.92, 0.9),
            journal_path=path,
        )

    serial_journal = tmp_path / "serial.jsonl"
    parallel_journal = tmp_path / f"parallel{jobs}.jsonl"
    serial = run_hc_session(dataset, config(serial_journal))
    parallel = run_parallel_hc_session(
        dataset, config(parallel_journal), jobs=jobs, inline=True
    )

    assert [tuple(r.query_fact_ids) for r in parallel.history] == [
        tuple(r.query_fact_ids) for r in serial.history
    ]
    assert [r.budget_spent for r in parallel.history] == [
        r.budget_spent for r in serial.history
    ]
    for ours, theirs in zip(parallel.belief, serial.belief):
        assert np.array_equal(ours.probabilities, theirs.probabilities)
    # Incident streams (retries, no-shows, quarantines) must agree too.
    assert [
        (event.kind, event.round_index, event.worker_id)
        for event in parallel.incidents
    ] == [
        (event.kind, event.round_index, event.worker_id)
        for event in serial.incidents
    ]
    assert _journal_without_engine_lines(
        parallel_journal
    ) == _journal_without_engine_lines(serial_journal)
    # The engine record is present exactly once, right after the header.
    records = [
        json.loads(line)
        for line in parallel_journal.read_bytes().splitlines()
    ]
    engine_positions = [
        index
        for index, record in enumerate(records)
        if record.get("kind") == "engine"
    ]
    assert engine_positions == [1]
    assert records[1]["jobs"] == min(jobs, 6)


@pytest.mark.parametrize("seed", [1, 13])
def test_randomized_resilient_instances(seed):
    """Randomized shapes and fault mixes, no journal: histories and
    beliefs still agree across worker counts."""
    rng = np.random.default_rng(seed)
    dataset = _dataset(
        seed, num_groups=int(rng.integers(4, 8)), group_size=4
    )
    faults = FaultModel(
        no_show=float(rng.uniform(0, 0.3)),
        partial=float(rng.uniform(0, 0.3)),
        timeout=float(rng.uniform(0, 0.1)),
        seed=seed,
    )
    config = SessionConfig(
        budget=float(rng.integers(18, 36)),
        k=int(rng.integers(1, 4)),
        seed=seed,
        faults=faults,
        reserve_accuracies=(0.93,),
    )
    serial = run_hc_session(dataset, config)
    reference = _signature(serial)
    for jobs in (2, 4):
        parallel = run_parallel_hc_session(
            dataset, config, jobs=jobs, inline=True
        )
        assert _signature(parallel) == reference
