"""Unit tests for the cross-shard budget ledger."""

import pytest

from repro.core import Crowd
from repro.engine import BudgetLedger, LedgerBudget, LedgerError


class TestBudgetLedger:
    def test_reserve_commit_refunds_remainder(self):
        ledger = BudgetLedger(10.0)
        ticket = ledger.reserve(6.0, label="round")
        assert ledger.available == pytest.approx(4.0)
        assert ledger.outstanding == pytest.approx(6.0)
        ledger.commit(ticket, 2.5)
        assert ledger.committed == pytest.approx(2.5)
        assert ledger.outstanding == 0.0
        assert ledger.available == pytest.approx(7.5)

    def test_release_refunds_in_full(self):
        ledger = BudgetLedger(10.0)
        ticket = ledger.reserve(6.0)
        ledger.release(ticket)
        assert ledger.available == pytest.approx(10.0)
        assert ledger.committed == 0.0
        assert ledger.open_reservations == 0

    def test_cannot_overdraw_the_pool(self):
        ledger = BudgetLedger(10.0)
        ledger.reserve(7.0)
        with pytest.raises(LedgerError, match="cannot reserve"):
            ledger.reserve(4.0)
        # A ledger holds the invariant even across many reservations.
        ledger.reserve(3.0)
        with pytest.raises(LedgerError):
            ledger.reserve(0.5)

    def test_double_settlement_is_rejected(self):
        ledger = BudgetLedger(10.0)
        ticket = ledger.reserve(5.0)
        ledger.commit(ticket, 5.0)
        with pytest.raises(LedgerError, match="already settled"):
            ledger.commit(ticket, 1.0)
        with pytest.raises(LedgerError, match="already settled"):
            ledger.release(ticket)

    def test_commit_cannot_exceed_reservation(self):
        ledger = BudgetLedger(10.0)
        ticket = ledger.reserve(3.0)
        with pytest.raises(LedgerError, match="exceeds reservation"):
            ledger.commit(ticket, 3.5)
        # The failed commit must not consume the ticket.
        ledger.commit(ticket, 3.0)
        assert ledger.committed == pytest.approx(3.0)

    def test_commit_direct_is_bounded_by_available(self):
        ledger = BudgetLedger(10.0)
        ledger.commit_direct(8.0)
        with pytest.raises(LedgerError, match="direct commit"):
            ledger.commit_direct(4.0)
        ledger.commit_direct(2.0)
        assert ledger.committed == pytest.approx(10.0)

    def test_negative_amounts_rejected(self):
        ledger = BudgetLedger(10.0)
        with pytest.raises(ValueError):
            ledger.reserve(-1.0)
        ticket = ledger.reserve(1.0)
        with pytest.raises(ValueError):
            ledger.commit(ticket, -1.0)
        with pytest.raises(ValueError):
            ledger.commit_direct(-1.0)
        with pytest.raises(ValueError):
            BudgetLedger(-1.0)

    def test_as_dict_snapshot(self):
        ledger = BudgetLedger(10.0)
        ticket = ledger.reserve(4.0)
        ledger.commit(ticket, 4.0)
        ledger.reserve(1.0)
        snapshot = ledger.as_dict()
        assert snapshot == {
            "total": 10.0,
            "committed": 4.0,
            "outstanding": 1.0,
            "open_reservations": 1,
        }

    def test_shared_ledger_serializes_two_campaigns(self):
        """Two budgets drawing on one ledger cannot jointly overspend."""
        ledger = BudgetLedger(10.0)
        first = LedgerBudget(10.0, ledger=ledger)
        second = LedgerBudget(10.0, ledger=ledger)
        experts = Crowd.from_accuracies([0.9], prefix="e")
        first.reserve_pending(6, experts)
        with pytest.raises(LedgerError):
            second.reserve_pending(6, experts)
        first.release_pending()
        second.reserve_pending(6, experts)


class TestLedgerBudget:
    @pytest.fixture
    def experts(self):
        return Crowd.from_accuracies([0.9, 0.95], prefix="e")

    def test_charge_settles_open_reservation(self, experts):
        budget = LedgerBudget(100.0)
        budget.reserve_pending(2, experts)
        assert budget.ledger.open_reservations == 1
        cost = budget.charge_round(2, experts)
        assert budget.ledger.open_reservations == 0
        assert budget.ledger.committed == pytest.approx(cost)
        assert budget.ledger.committed == pytest.approx(budget.spent)

    def test_double_reservation_is_a_bug(self, experts):
        budget = LedgerBudget(100.0)
        budget.reserve_pending(1, experts)
        with pytest.raises(LedgerError, match="already open"):
            budget.reserve_pending(1, experts)

    def test_release_pending_refunds(self, experts):
        budget = LedgerBudget(100.0)
        budget.reserve_pending(2, experts)
        budget.release_pending()
        assert budget.ledger.available == pytest.approx(100.0)
        budget.release_pending()  # idempotent

    def test_charge_without_reservation_commits_direct(self, experts):
        """A resumed mid-round session's reservation died with the
        crashed process; the charge still lands on the ledger."""
        budget = LedgerBudget(100.0)
        cost = budget.charge_round(2, experts)
        assert budget.ledger.committed == pytest.approx(cost)

    def test_restore_spent_catches_ledger_up(self, experts):
        budget = LedgerBudget(100.0)
        budget.restore_spent(12.0)
        assert budget.spent == pytest.approx(12.0)
        assert budget.ledger.committed == pytest.approx(12.0)
        # And further charges accumulate on top.
        budget.reserve_pending(1, experts)
        budget.charge_round(1, experts)
        assert budget.ledger.committed == pytest.approx(budget.spent)

    def test_spent_trajectory_matches_plain_budget(self, experts):
        from repro.core.budget import CheckingBudget

        plain = CheckingBudget(40.0)
        ledgered = LedgerBudget(40.0)
        for _ in range(3):
            ledgered.reserve_pending(2, experts)
            assert ledgered.charge_round(2, experts) == plain.charge_round(
                2, experts
            )
            assert ledgered.spent == plain.spent
            assert ledgered.remaining == plain.remaining


class TestLedgerAudit:
    """Leak hunting: every open reservation is attributable, and the
    teardown hooks guarantee a clean campaign leaves none behind."""

    def test_audit_lists_open_reservations(self):
        ledger = BudgetLedger(20.0)
        first = ledger.reserve(5.0, label="round:2q")
        second = ledger.reserve(3.0, label="deposit:acme/job")
        assert ledger.audit() == [
            {"ticket": first, "amount": 5.0, "label": "round:2q"},
            {"ticket": second, "amount": 3.0, "label": "deposit:acme/job"},
        ]
        ledger.commit(first, 4.0)
        assert [entry["ticket"] for entry in ledger.audit()] == [second]
        ledger.release(second)
        assert ledger.audit() == []

    def test_close_releases_an_orphaned_reservation(self):
        experts = Crowd.from_accuracies([0.95, 0.92])
        budget = LedgerBudget(100.0)
        budget.reserve_pending(2, experts)
        assert budget.ledger.open_reservations == 1
        # A mid-round abort never reaches the charge; close() is the
        # teardown path that returns the hold to the pool.
        budget.close()
        assert budget.ledger.open_reservations == 0
        assert budget.ledger.available == pytest.approx(100.0)
        budget.close()  # idempotent

    def test_context_manager_releases_on_abort(self):
        experts = Crowd.from_accuracies([0.95, 0.92])
        shared = BudgetLedger(50.0)
        with pytest.raises(RuntimeError, match="mid-round abort"):
            with LedgerBudget(50.0, ledger=shared) as budget:
                budget.reserve_pending(2, experts)
                raise RuntimeError("mid-round abort")
        assert shared.open_reservations == 0
        assert shared.audit() == []

    def test_runner_abort_leaves_no_reservation(self, tmp_path):
        """A campaign killed between selection and the charge releases
        its worst-case round hold when the runner unwinds."""
        from repro.datasets.synthetic import (
            WorkerPoolSpec,
            make_synthetic_dataset,
        )
        from repro.engine import ParallelCampaignRunner
        from repro.simulation.session import SessionConfig

        class ExplodingSource:
            def collect(self, queries, experts):
                raise RuntimeError("collection infrastructure died")

        dataset = make_synthetic_dataset(
            num_groups=4,
            group_size=4,
            answers_per_fact=6,
            pool=WorkerPoolSpec(num_preliminary=10, num_expert=2),
            seed=6,
        )
        shared = BudgetLedger(40.0)
        runner = ParallelCampaignRunner(
            dataset,
            SessionConfig(budget=14.0, k=2, seed=1),
            answer_source=ExplodingSource(),
            jobs=2,
            inline=True,
            ledger=shared,
        )
        with pytest.raises(RuntimeError, match="infrastructure died"):
            runner.run()
        assert shared.open_reservations == 0, shared.audit()


class TestLedgerExactness:
    """The books are kept in exact decimal fractions — float charge
    streams that would accumulate binary drift settle exactly."""

    def test_ten_dimes_commit_to_exactly_one(self):
        ledger = BudgetLedger(1.0)
        for _ in range(10):
            ledger.commit_direct(0.1)
        # float accumulation gives 0.9999999999999999; the ledger not
        assert ledger.committed == 1.0
        assert ledger.available == 0.0

    def test_many_awkward_charges_settle_exactly(self):
        ledger = BudgetLedger(400.0)
        for _ in range(24):
            ticket = ledger.reserve(14.4)
            ledger.commit(ticket, 14.4)
        assert ledger.committed == 345.6
        # float arithmetic puts 400.0 - 345.6 at 54.400000000000006 and
        # 24 * 14.4 at 345.59999999999997; the exact books do not
        assert ledger.available == 54.4
        assert ledger.open_reservations == 0

    def test_exact_books_admit_the_full_total(self):
        # 0.1 + 0.2 > 0.3 in floats; exact books still admit the rest
        ledger = BudgetLedger(0.6)
        ledger.commit_direct(0.1)
        ledger.commit_direct(0.2)
        ticket = ledger.reserve(0.3)
        ledger.commit(ticket, 0.3)
        assert ledger.committed == 0.6
        assert ledger.available == 0.0

    def test_audit_amounts_are_exact(self):
        ledger = BudgetLedger(10.0)
        ledger.reserve(0.1, label="a")
        ledger.reserve(0.2, label="b")
        amounts = [entry["amount"] for entry in ledger.audit()]
        assert amounts == [0.1, 0.2]
        assert ledger.outstanding == pytest.approx(0.3)

    def test_as_dict_round_trips_without_drift(self):
        ledger = BudgetLedger(1.0)
        for _ in range(7):
            ledger.commit_direct(0.1)
        snapshot = ledger.as_dict()
        assert snapshot["committed"] == 0.7
        assert snapshot["outstanding"] == 0.0
        assert snapshot["total"] == 1.0
        assert snapshot["open_reservations"] == 0


class TestStrictAudit:
    """``audit(strict=True)``: the books validate themselves, and a
    violated invariant surfaces as a typed, snapshot-carrying error."""

    def test_clean_books_pass_with_open_reservations(self):
        # open reservations are legitimate mid-flight state (recovery
        # and the soak harness audit while campaigns hold deposits)
        ledger = BudgetLedger(20.0)
        ledger.reserve(5.0, label="deposit:acme/job")
        entries = ledger.audit(strict=True)
        assert [entry["label"] for entry in entries] == ["deposit:acme/job"]

    def test_negative_committed_raises_with_the_books(self):
        from fractions import Fraction

        from repro.engine import LedgerDriftError

        ledger = BudgetLedger(10.0)
        ledger.commit_direct(2.0)
        ledger._committed = Fraction(-1, 4)  # simulated corruption
        with pytest.raises(LedgerDriftError, match="negative") as info:
            ledger.audit(strict=True)
        assert info.value.books["committed"] == -0.25
        assert info.value.books["total"] == 10.0
        # non-strict audit still answers (leak hunting must not throw)
        assert ledger.audit() == []

    def test_overdraft_raises(self):
        from fractions import Fraction

        from repro.engine import LedgerDriftError

        ledger = BudgetLedger(10.0)
        ledger.reserve(6.0, label="round")
        ledger._committed = Fraction(9)  # books no longer add up
        with pytest.raises(LedgerDriftError, match="exceeds the total"):
            ledger.audit(strict=True)

    def test_negative_reservation_raises(self):
        from fractions import Fraction

        from repro.engine import LedgerDriftError

        ledger = BudgetLedger(10.0)
        ticket = ledger.reserve(3.0, label="round")
        ledger._reservations[ticket] = (Fraction(-3), "round")
        with pytest.raises(LedgerDriftError, match="negative amount"):
            ledger.audit(strict=True)

    def test_drift_error_is_a_ledger_error(self):
        from repro.engine import LedgerDriftError

        assert issubclass(LedgerDriftError, LedgerError)
