"""Supervision tests: deadlines, respawn, failover — and the engine's
bit-identical-to-serial guarantee surviving all of them.

The expensive spawned-process scenarios (scheduled kill, real external
SIGKILL mid-round) run once each; the breadth of the recovery matrix
(kill/hang/corrupt at randomized rates, failover, rebalance, journal
equivalence) runs on inline shards, where the identical supervisor code
path executes in milliseconds.
"""

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.serialization import strip_frame
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import (
    ChaosPlan,
    KeyedExpertPanel,
    ParallelCampaignRunner,
    ShardFailureError,
    ShardIncident,
    ShardPool,
    SupervisionPolicy,
    run_parallel_hc_session,
    resume_parallel_session,
)
from repro.simulation import SessionConfig, run_hc_session


@pytest.fixture(scope="module")
def dataset():
    return make_synthetic_dataset(
        num_groups=4,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=10, num_expert=2),
        seed=6,
    )


@pytest.fixture(scope="module")
def config():
    return SessionConfig(budget=14.0, k=2, seed=1)


@pytest.fixture(scope="module")
def serial_signature(dataset, config):
    result = run_hc_session(
        dataset,
        config,
        answer_source=KeyedExpertPanel(dataset.ground_truth, seed=1),
    )
    return _signature(result)


def _signature(result):
    return (
        [tuple(record.query_fact_ids) for record in result.history],
        [record.budget_spent for record in result.history],
        [state.probabilities.tobytes() for state in result.belief],
    )


def _panel(dataset):
    return KeyedExpertPanel(dataset.ground_truth, seed=1)


def _strip_infra_lines(path) -> bytes:
    # The infra records shift the v8 sequence numbers of every later
    # line, so comparisons against a serial journal drop the framing.
    kept = []
    for line in path.read_bytes().splitlines(keepends=True):
        record = json.loads(line)
        if record.get("kind") not in ("engine", "shard_incident"):
            kept.append(
                json.dumps(strip_frame(record), separators=(",", ":")).encode()
                + b"\n"
            )
    return b"".join(kept)


class TestSupervisionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="deadline"):
            SupervisionPolicy(deadline=0)
        with pytest.raises(ValueError, match="poll_interval"):
            SupervisionPolicy(poll_interval=0)
        with pytest.raises(ValueError, match="max_restarts"):
            SupervisionPolicy(max_restarts=-1)
        assert SupervisionPolicy(deadline=None).deadline is None

    def test_from_env(self):
        policy = SupervisionPolicy.from_env({})
        assert policy == SupervisionPolicy()
        policy = SupervisionPolicy.from_env(
            {
                "REPRO_SHARD_DEADLINE": "2.5",
                "REPRO_MAX_SHARD_RESTARTS": "5",
                "REPRO_SHARD_FAILOVER": "off",
            }
        )
        assert policy.deadline == 2.5
        assert policy.max_restarts == 5
        assert policy.failover is False
        assert (
            SupervisionPolicy.from_env({"REPRO_SHARD_DEADLINE": "0"}).deadline
            is None
        )

    def test_with_overrides(self):
        policy = SupervisionPolicy().with_overrides(
            {"deadline": 9.0, "max_restarts": None}
        )
        assert policy.deadline == 9.0
        assert policy.max_restarts == SupervisionPolicy().max_restarts
        with pytest.raises(ValueError, match="unknown"):
            SupervisionPolicy().with_overrides({"nope": 1})


class TestShardIncident:
    def test_record_round_trip(self):
        incident = ShardIncident(
            kind="failover",
            shard_id=1,
            command="select",
            restarts=3,
            group_indices=(2, 3),
            detail="budget exhausted",
            partition=((0, 1), (2, 3)),
            degraded=(False, True),
        )
        record = incident.to_record()
        assert record["kind"] == "shard_incident"
        assert ShardIncident.from_record(record) == incident

    def test_as_fault_event_uses_shard_kinds(self):
        from repro.core.incidents import FAULT_KINDS

        event = ShardIncident(
            kind="deadline", shard_id=0, command="select", restarts=0
        ).as_fault_event()
        assert event.kind == "shard_deadline"
        assert event.kind in FAULT_KINDS


class TestInlineChaosEquivalence:
    """The full recovery matrix on inline shards (fast)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_kill_hang_corrupt(
        self, dataset, config, serial_signature, seed
    ):
        runner = ParallelCampaignRunner(
            dataset,
            config,
            answer_source=_panel(dataset),
            jobs=3,
            inline=True,
            policy=SupervisionPolicy(
                deadline=0.5, poll_interval=0.01, max_restarts=1
            ),
            chaos=ChaosPlan(kill=0.06, hang=0.04, corrupt=0.05, seed=seed),
        )
        result = runner.run()
        assert _signature(result) == serial_signature
        # The plan actually fired (otherwise this test proves nothing).
        assert runner.supervisor_stats["reexecuted_commands"] >= 1

    def test_short_deadline_hang_is_recovered(
        self, dataset, config, serial_signature
    ):
        runner = ParallelCampaignRunner(
            dataset,
            config,
            answer_source=_panel(dataset),
            jobs=2,
            inline=True,
            policy=SupervisionPolicy(
                deadline=0.2, poll_interval=0.01, max_restarts=2
            ),
            chaos=ChaosPlan(schedule={(0, 3): "hang"}),
        )
        result = runner.run()
        assert _signature(result) == serial_signature
        stats = runner.supervisor_stats
        assert stats["deadline_hits"] == 1
        assert stats["restarts"] == 1
        kinds = [i.kind for i in runner.supervisor_incidents]
        assert kinds == ["deadline", "restart"]

    def test_delayed_replies_survive_a_generous_deadline(
        self, dataset, config, serial_signature
    ):
        runner = ParallelCampaignRunner(
            dataset,
            config,
            answer_source=_panel(dataset),
            jobs=2,
            inline=True,
            policy=SupervisionPolicy(deadline=5.0, poll_interval=0.01),
            chaos=ChaosPlan(
                schedule={(1, 2): "delay"}, delay_duration=0.1
            ),
        )
        result = runner.run()
        assert _signature(result) == serial_signature
        assert runner.supervisor_stats["restarts"] == 0

    def test_failover_then_rebalance(self, dataset, config, serial_signature):
        """Restart budget 0: the first kill fails the shard's groups
        over to inline, and the next round's select merges them into a
        surviving shard."""
        runner = ParallelCampaignRunner(
            dataset,
            config,
            answer_source=_panel(dataset),
            jobs=2,
            inline=False,
            policy=SupervisionPolicy(deadline=30.0, max_restarts=0),
            chaos=ChaosPlan(schedule={(1, 2): "kill"}),
        )
        result = runner.run()
        assert _signature(result) == serial_signature
        stats = runner.supervisor_stats
        assert stats["failovers"] == 1
        assert stats["rebalances"] == 1
        kinds = [i.kind for i in runner.supervisor_incidents]
        assert "failover" in kinds and "rebalance" in kinds
        layouts = [
            i for i in runner.supervisor_incidents if i.partition is not None
        ]
        # After the rebalance every group lives in one surviving shard.
        assert list(layouts[-1].degraded) == [False]

    def test_no_failover_raises_after_budget(self, dataset, config):
        with pytest.raises(ShardFailureError, match="failover is disabled"):
            run_parallel_hc_session(
                dataset,
                config,
                answer_source=_panel(dataset),
                jobs=2,
                inline=True,
                policy=SupervisionPolicy(max_restarts=0, failover=False),
                chaos=ChaosPlan(schedule={(1, 2): "kill"}),
            )

    def test_exhausted_inline_pool_degrades_to_serial(
        self, dataset, config, serial_signature
    ):
        """Kill-heavy chaos on an inline pool: every shard eventually
        fails over to an unsupervised (never chaos-wrapped) inline
        replacement, so the campaign always terminates — fully serial,
        still bit-identical."""
        runner = ParallelCampaignRunner(
            dataset,
            config,
            answer_source=_panel(dataset),
            jobs=2,
            inline=True,
            policy=SupervisionPolicy(
                deadline=0.3, poll_interval=0.01, max_restarts=0
            ),
            chaos=ChaosPlan(kill=1.0),
        )
        result = runner.run()
        assert _signature(result) == serial_signature
        assert runner.supervisor_stats["failovers"] == 2


class TestResilientChaos:
    def test_journal_equals_serial_modulo_infra_records(
        self, dataset, tmp_path
    ):
        def config(path):
            return SessionConfig(
                budget=14.0, k=2, seed=1, journal_path=path
            )

        serial_path = tmp_path / "serial.jsonl"
        serial = run_hc_session(
            dataset, config(serial_path), answer_source=_panel(dataset)
        )
        chaotic_path = tmp_path / "chaotic.jsonl"
        runner = ParallelCampaignRunner(
            dataset,
            config(chaotic_path),
            answer_source=_panel(dataset),
            jobs=2,
            inline=True,
            policy=SupervisionPolicy(max_restarts=0),
            chaos=ChaosPlan(schedule={(1, 4): "kill"}),
        )
        result = runner.run()
        assert _signature(result) == _signature(serial)
        assert _strip_infra_lines(chaotic_path) == _strip_infra_lines(serial_path)
        records = [
            json.loads(line)
            for line in chaotic_path.read_text().splitlines()
        ]
        incidents = [
            r for r in records if r.get("kind") == "shard_incident"
        ]
        assert [r["incident"] for r in incidents] == ["death", "failover"]
        assert incidents[-1]["partition"] is not None

    def test_resume_restores_failover_layout_and_policy(
        self, dataset, tmp_path
    ):
        journal = tmp_path / "campaign.jsonl"
        runner = ParallelCampaignRunner(
            dataset,
            SessionConfig(budget=14.0, k=2, seed=1, journal_path=journal),
            answer_source=_panel(dataset),
            jobs=2,
            inline=True,
            policy=SupervisionPolicy(deadline=12.5, max_restarts=0),
            chaos=ChaosPlan(schedule={(1, 4): "kill"}),
        )
        runner.run()
        session, pool = resume_parallel_session(journal)
        with pool:
            layout = pool.layout()
            records = [
                json.loads(line)
                for line in journal.read_text().splitlines()
            ]
            journaled = [
                r
                for r in records
                if r.get("kind") == "shard_incident"
                and r.get("partition") is not None
            ][-1]
            assert [
                list(shard) for shard in layout["partition"]
            ] == journaled["partition"]
            assert list(layout["degraded"]) == journaled["degraded"]
            # Supervision settings come back from the engine record.
            assert pool.policy.deadline == 12.5
            assert pool.policy.max_restarts == 0

    def test_explicit_jobs_discards_journaled_layout(self, dataset, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        ParallelCampaignRunner(
            dataset,
            SessionConfig(budget=14.0, k=2, seed=1, journal_path=journal),
            answer_source=_panel(dataset),
            jobs=2,
            inline=True,
            policy=SupervisionPolicy(max_restarts=0),
            chaos=ChaosPlan(schedule={(1, 4): "kill"}),
        ).run()
        session, pool = resume_parallel_session(journal, jobs=3, inline=True)
        with pool:
            assert pool.jobs == 3
            assert not any(pool.layout()["degraded"])


class TestProcessShardRecovery:
    """The real multiprocessing transport (slow; one scenario each)."""

    def test_scheduled_kill_mid_round(
        self, dataset, config, serial_signature
    ):
        runner = ParallelCampaignRunner(
            dataset,
            config,
            answer_source=_panel(dataset),
            jobs=2,
            inline=False,
            policy=SupervisionPolicy(deadline=60.0, max_restarts=2),
            chaos=ChaosPlan(schedule={(1, 2): "kill"}),
        )
        result = runner.run()
        assert _signature(result) == serial_signature
        stats = runner.supervisor_stats
        assert stats["deaths"] == 1
        assert stats["restarts"] == 1
        # SIGKILL races the in-flight reply: the killed command is
        # either re-executed (reply lost) or the death surfaces on the
        # next command, which may be a rebuild-subsumed commit (skip).
        assert stats["reexecuted_commands"] + stats["skipped_commands"] == 1

    def test_external_sigkill_of_one_worker_mid_round(
        self, dataset, serial_signature
    ):
        """A worker process is SIGKILLed from outside, mid-campaign:
        the run completes with selections, ledger trajectory and final
        beliefs bit-identical to the fault-free serial run."""
        # Latency slows shard-side collection enough for the kill to
        # land mid-campaign without changing any answer bytes.
        panel = KeyedExpertPanel(
            dataset.ground_truth, seed=1, latency=0.05
        )
        runner = ParallelCampaignRunner(
            dataset,
            SessionConfig(budget=14.0, k=2, seed=1),
            answer_source=panel,
            jobs=2,
            inline=False,
            policy=SupervisionPolicy(deadline=60.0, max_restarts=2),
        )
        runner.prepare()
        pool = runner._prepared["pool"]
        session = runner._prepared["session"]
        victim = pool.shards[1]
        while hasattr(victim, "inner"):
            victim = victim.inner
        pid = victim._process.pid

        killed = threading.Event()

        def assassin():
            # Progress-triggered, not wall-clock: fire right after the
            # second round commits, so whole rounds (with commands to
            # every shard) still lie ahead and the death cannot slip
            # into the tail window between the victim's last consumed
            # reply and pool close.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if len(session.history) >= 2:
                    break
                time.sleep(0.002)
            try:
                os.kill(pid, signal.SIGKILL)
                killed.set()
            except ProcessLookupError:  # campaign already finished
                pass

        thread = threading.Thread(target=assassin)
        thread.start()
        try:
            result = runner.run()
        finally:
            thread.join()
        assert _signature(result) == serial_signature
        if killed.is_set():
            stats = runner.supervisor_stats
            # Under the CI chaos matrix an env-injected hang draw can
            # mask the death as a deadline hit (the hang transport
            # reports the worker alive) — any of the three counts.
            assert (
                stats["deaths"]
                + stats["protocol_errors"]
                + stats["deadline_hits"]
                >= 1
            )
            assert stats["restarts"] + stats["failovers"] >= 1

    def test_context_manager_reaps_workers_on_exception(self, dataset):
        from repro.aggregation.registry import make_aggregator
        from repro.datasets.grouping import initialize_belief

        experts, _ = dataset.split_crowd(0.9)
        belief, _ = initialize_belief(
            dataset, make_aggregator("EBCC"), 0.9, smoothing=0.01
        )
        pids = []
        with pytest.raises(RuntimeError, match="boom"):
            with ShardPool(belief, experts, 2, inline=False) as pool:
                for shard in pool.shards:
                    inner = shard
                    while hasattr(inner, "inner"):
                        inner = inner.inner
                    pids.append(inner._process.pid)
                raise RuntimeError("boom")
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestTeardownHardening:
    def test_close_and_destroy_are_idempotent(self, dataset):
        from repro.aggregation.registry import make_aggregator
        from repro.datasets.grouping import initialize_belief

        experts, _ = dataset.split_crowd(0.9)
        belief, _ = initialize_belief(
            dataset, make_aggregator("EBCC"), 0.9, smoothing=0.01
        )
        pool = ShardPool(belief, experts, 2, inline=False)
        pool.destroy_shard(0)
        pool.destroy_shard(0)  # destroy twice
        pool.close()
        pool.close()  # close twice, after a destroy

    def test_close_reaps_a_killed_worker(self, dataset):
        from repro.aggregation.registry import make_aggregator
        from repro.datasets.grouping import initialize_belief

        experts, _ = dataset.split_crowd(0.9)
        belief, _ = initialize_belief(
            dataset, make_aggregator("EBCC"), 0.9, smoothing=0.01
        )
        pool = ShardPool(belief, experts, 2, inline=False)
        inner = pool.shards[0]
        while hasattr(inner, "inner"):
            inner = inner.inner
        pid = inner._process.pid
        os.kill(pid, signal.SIGKILL)
        pool.close()  # must neither hang nor raise
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
