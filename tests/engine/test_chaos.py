"""Unit tests for the transport-level fault injection layer."""

import pytest

from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.datasets.grouping import initialize_belief
from repro.aggregation.registry import make_aggregator
from repro.engine import ChaosPlan, ChaosTransport, InlineShard
from repro.engine.chaos import CHAOS_ACTIONS


@pytest.fixture(scope="module")
def shard_parts():
    dataset = make_synthetic_dataset(
        num_groups=2,
        group_size=3,
        answers_per_fact=5,
        pool=WorkerPoolSpec(num_preliminary=8, num_expert=2),
        seed=2,
    )
    experts, _ = dataset.split_crowd(0.9)
    belief, _ = initialize_belief(
        dataset, make_aggregator("MV"), 0.9, smoothing=0.01
    )
    return belief, experts


def _inline(shard_parts):
    belief, experts = shard_parts
    return InlineShard((0, 1), [belief[0], belief[1]], experts)


class TestChaosPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="kill"):
            ChaosPlan(kill=1.5)
        with pytest.raises(ValueError, match="exceed 1"):
            ChaosPlan(kill=0.6, hang=0.6)
        with pytest.raises(ValueError, match="action"):
            ChaosPlan(schedule={(0, 1): "explode"})

    def test_disabled_by_default(self):
        assert not ChaosPlan().enabled
        assert ChaosPlan(kill=0.1).enabled
        assert ChaosPlan(schedule={(0, 0): "kill"}).enabled

    def test_draws_are_deterministic_per_key(self):
        plan = ChaosPlan(kill=0.3, hang=0.3, seed=11)
        draws = [
            plan.action_for(shard, index)
            for shard in range(3)
            for index in range(30)
        ]
        again = [
            plan.action_for(shard, index)
            for shard in range(3)
            for index in range(30)
        ]
        assert draws == again
        assert any(action == "kill" for action in draws)
        assert any(action == "hang" for action in draws)
        assert any(action is None for action in draws)

    def test_schedule_overrides_rates(self):
        plan = ChaosPlan(schedule={(2, 5): "corrupt"})
        assert plan.action_for(2, 5) == "corrupt"
        assert plan.action_for(2, 4) is None
        assert plan.action_for(1, 5) is None

    def test_parse_round_trips_the_fault_mini_language(self):
        plan = ChaosPlan.parse("kill=0.05, hang=0.1,delay_duration=0.4", seed=3)
        assert plan.kill == 0.05
        assert plan.hang == 0.1
        assert plan.delay_duration == 0.4
        assert plan.seed == 3
        with pytest.raises(ValueError, match="unknown fault"):
            ChaosPlan.parse("explode=0.1")
        with pytest.raises(ValueError, match="bad rate"):
            ChaosPlan.parse("kill=lots")

    def test_from_env(self):
        assert ChaosPlan.from_env({}) is None
        assert ChaosPlan.from_env({"REPRO_CHAOS": ""}) is None
        plan = ChaosPlan.from_env(
            {"REPRO_CHAOS": "kill=0.2", "REPRO_CHAOS_SEED": "7"}
        )
        assert plan.kill == 0.2
        assert plan.seed == 7


class TestChaosTransport:
    def test_transparent_when_no_action_fires(self, shard_parts):
        transport = ChaosTransport(_inline(shard_parts), ChaosPlan(), 0)
        transport.submit("ping")
        assert transport.poll(0.0)
        assert transport.take_reply() == ("ok", "pong")
        assert transport.is_alive()

    def test_kill_makes_worker_dead_after_submit(self, shard_parts):
        plan = ChaosPlan(schedule={(0, 0): "kill"})
        transport = ChaosTransport(_inline(shard_parts), plan, 0)
        transport.submit("ping")
        assert not transport.poll(0.0)
        assert not transport.is_alive()
        with pytest.raises(EOFError):
            transport.take_reply()

    def test_hang_swallows_the_command(self, shard_parts):
        plan = ChaosPlan(schedule={(0, 0): "hang"})
        transport = ChaosTransport(_inline(shard_parts), plan, 0)
        transport.submit("ping")
        assert not transport.poll(0.01)
        # A hung worker looks alive — only the deadline can catch it.
        assert transport.is_alive()

    def test_corrupt_garbles_the_reply_shape(self, shard_parts):
        plan = ChaosPlan(schedule={(0, 0): "corrupt"})
        transport = ChaosTransport(_inline(shard_parts), plan, 0)
        transport.submit("ping")
        assert transport.poll(0.0)
        reply = transport.take_reply()
        assert not (
            isinstance(reply, tuple)
            and len(reply) == 2
            and reply[0] in ("ok", "error")
        )

    def test_delay_holds_the_reply_back(self, shard_parts):
        plan = ChaosPlan(
            schedule={(0, 0): "delay"}, delay_duration=0.15
        )
        transport = ChaosTransport(_inline(shard_parts), plan, 0)
        transport.submit("ping")
        assert not transport.poll(0.01)
        assert transport.poll(0.3)
        assert transport.take_reply() == ("ok", "pong")

    def test_command_offset_continues_the_victims_count(self, shard_parts):
        plan = ChaosPlan(schedule={(0, 1): "kill"})
        first = ChaosTransport(_inline(shard_parts), plan, 0)
        first.submit("ping")
        assert first.take_reply() == ("ok", "pong")
        first.submit("ping")  # command index 1: killed
        assert not first.is_alive()
        # The respawned transport resumes at index 2 — the scheduled
        # kill cannot re-trigger forever.
        respawned = ChaosTransport(
            _inline(shard_parts), plan, 0, command_offset=first.commands_seen
        )
        respawned.submit("ping")
        assert respawned.take_reply() == ("ok", "pong")


class TestInlineShardTransport:
    def test_deferred_execution(self, shard_parts):
        shard = _inline(shard_parts)
        assert not shard.poll(0.0)
        shard.submit("ping")
        assert shard.poll(0.0)
        assert shard.take_reply() == ("ok", "pong")
        assert not shard.poll(0.0)

    def test_application_errors_are_wire_replies(self, shard_parts):
        shard = _inline(shard_parts)
        shard.submit("commit")  # nothing staged
        status, error = shard.take_reply()
        assert status == "error"
        assert isinstance(error, Exception)

    def test_chaos_kill_is_a_real_death(self, shard_parts):
        shard = _inline(shard_parts)
        shard.submit("ping")
        shard.chaos_kill()
        assert not shard.is_alive()
        assert not shard.poll(0.0)
        with pytest.raises(EOFError):
            shard.take_reply()
        with pytest.raises(OSError):
            shard.submit("ping")

    def test_actions_cover_the_documented_set(self):
        assert set(CHAOS_ACTIONS) == {"kill", "hang", "delay", "corrupt"}
