"""Unit tests for the observability subsystem itself.

The zero-perturbation contract lives in test_zero_perturbation.py;
this file pins the building blocks: metric semantics, label handling,
quantile math, trace buffering, snapshot round-trips through both
export formats, the latency report, and the facade's delta/gauge
publication rules.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_BOUNDS,
    OBS,
    Histogram,
    MetricsRegistry,
    NullTracer,
    Tracer,
    format_report,
    latency_report,
    load_snapshot,
    render_prometheus,
    write_snapshot,
)
from repro.obs.registry import SNAPSHOT_SCHEMA, quantile_from_buckets


@pytest.fixture(autouse=True)
def _clean_obs():
    OBS.reset()
    yield
    OBS.reset()


class TestRegistry:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total")
        family.inc()
        family.inc(2.5)
        assert family.labels().value == 3.5
        with pytest.raises(ValueError):
            family.labels().inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        family = registry.gauge("g")
        family.set(5)
        family.labels().dec(2)
        family.labels().inc(0.5)
        assert family.labels().value == 3.5

    def test_labels_must_match_declaration(self):
        registry = MetricsRegistry()
        family = registry.counter("c_total", labels=("tenant",))
        family.labels(tenant="a").inc()
        family.labels(tenant="b").inc(2)
        with pytest.raises(ValueError):
            family.labels(shard="0")
        values = {
            series["labels"]["tenant"]: series["value"]
            for series in family.as_dict()["series"]
        }
        assert values == {"a": 1, "b": 2}

    def test_registration_is_idempotent_but_typed(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total")
        assert registry.counter("c_total") is first
        with pytest.raises(ValueError):
            registry.gauge("c_total")
        with pytest.raises(ValueError):
            registry.counter("c_total", labels=("tenant",))

    def test_histogram_buckets_and_quantiles(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.sum == pytest.approx(106.5)
        assert hist.cumulative_buckets() == [(1.0, 1), (2.0, 3), (4.0, 4)]
        # Median falls in the (1, 2] bucket; interpolation stays there.
        assert 1.0 <= hist.quantile(0.5) <= 2.0
        # Beyond the last bound clamps to it rather than inventing data.
        assert hist.quantile(0.99) == 4.0

    def test_quantile_from_buckets_matches_live_histogram(self):
        hist = Histogram()
        for exponent in range(-3, 2):
            hist.observe(10.0 ** exponent)
        series = hist.as_dict()
        for q in (0.25, 0.5, 0.9, 0.99):
            assert quantile_from_buckets(
                series["buckets"], series["count"], q
            ) == pytest.approx(hist.quantile(q))

    def test_default_bounds_cover_microseconds_to_minutes(self):
        assert DEFAULT_BOUNDS[0] == pytest.approx(1e-5)
        assert DEFAULT_BOUNDS[-1] == pytest.approx(100.0)
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)


class TestTracer:
    def test_spans_nest_and_record_depth(self):
        tracer = Tracer(capacity=16)
        with tracer.span("outer", tenant="t"):
            with tracer.span("inner"):
                pass
        names = {span["name"]: span for span in tracer.spans()}
        assert names["outer"]["depth"] == 0
        assert names["inner"]["depth"] == 1
        assert names["outer"]["tenant"] == "t"
        # Inner exits first, so it gets the earlier sequence number.
        assert names["inner"]["seq"] < names["outer"]["seq"]
        assert all(span["duration"] >= 0 for span in tracer.spans())

    def test_ring_buffer_is_bounded(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            with tracer.span("s", index=index):
                pass
        spans = tracer.spans()
        assert len(spans) == 4
        assert [span["index"] for span in spans] == [6, 7, 8, 9]

    def test_jsonl_file_holds_every_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(capacity=2, jsonl_path=path)
        for index in range(5):
            with tracer.span("s", index=index):
                pass
        tracer.close()
        lines = path.read_text().splitlines()
        # The file is unbounded even though the ring buffer dropped 3.
        assert len(lines) == 5
        assert [json.loads(line)["index"] for line in lines] == list(
            range(5)
        )

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", key="value"):
            pass
        assert tracer.spans() == []
        assert not tracer.enabled


class TestExport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("repro_c_total", "help text", labels=("t",)) \
            .labels(t="a").inc(3)
        registry.gauge("repro_g").set(1.5)
        registry.histogram("repro_h").observe(0.02)
        return registry

    def test_prometheus_rendering(self):
        text = render_prometheus(self._registry())
        assert '# TYPE repro_c_total counter' in text
        assert 'repro_c_total{t="a"} 3' in text
        assert "repro_g 1.5" in text
        assert 'repro_h_bucket{le="+Inf"} 1' in text
        assert "repro_h_count 1" in text

    def test_snapshot_round_trip(self, tmp_path):
        registry = self._registry()
        path = write_snapshot(registry, tmp_path / "metrics.json")
        snapshot = load_snapshot(path)
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert snapshot == registry.snapshot()
        # Rendering off the file equals rendering off the registry.
        assert render_prometheus(snapshot) == render_prometheus(registry)

    def test_prom_suffix_writes_text_format(self, tmp_path):
        path = write_snapshot(self._registry(), tmp_path / "m.prom")
        assert "# TYPE repro_g gauge" in path.read_text()

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "metrics": {}}))
        with pytest.raises(ValueError):
            load_snapshot(path)


class TestLatencyReport:
    def _observe(self, phase, durations, tenant=""):
        OBS.tenant = tenant
        for duration in durations:
            OBS.observe_phase(phase, duration)
        OBS.tenant = ""

    def test_attribution_excludes_envelope_phases(self):
        OBS.enable()
        self._observe("select", [0.010] * 10, tenant="acme")
        self._observe("journal", [0.030] * 10, tenant="acme")
        self._observe("round", [0.050] * 10, tenant="acme")
        self._observe("scheduler-wait", [1.0] * 10, tenant="acme")
        report = latency_report(OBS.registry)
        shares = {
            row["phase"]: row["share"] for row in report["phases"]
        }
        # round + scheduler-wait never enter the denominator.
        assert shares["select"] + shares["journal"] == pytest.approx(1.0)
        assert shares["round"] == 0.0
        assert shares["scheduler-wait"] == 0.0
        assert report["attributed_seconds"] == pytest.approx(0.4)
        assert "acme" in report["tenants"]
        rendered = format_report(report)
        assert "select" in rendered and "acme" in rendered

    def test_report_runs_off_serialized_snapshot(self, tmp_path):
        OBS.enable()
        self._observe("update", [0.002] * 5)
        live = latency_report(OBS.registry)
        path = write_snapshot(OBS.registry, tmp_path / "m.json")
        assert latency_report(load_snapshot(path)) == live

    def test_empty_report_formats_gracefully(self):
        report = latency_report(MetricsRegistry())
        assert report["phases"] == []
        assert "no phase latencies" in format_report(report)


class TestFacade:
    def test_disabled_phase_is_shared_noop(self):
        first = OBS.phase("select")
        second = OBS.phase("collect")
        assert first is second  # no allocation on the disabled path

    def test_publish_deltas_never_double_counts(self):
        class Stats:
            def __init__(self):
                self.rounds = 0
                self.label = "not-numeric"

            def as_dict(self):
                return {"rounds": self.rounds, "label": self.label}

        OBS.enable()
        stats = Stats()
        stats.rounds = 3
        OBS.publish_deltas("repro_test", stats, tenant="a")
        OBS.publish_deltas("repro_test", stats, tenant="a")  # no growth
        stats.rounds = 5
        OBS.publish_deltas("repro_test", stats, tenant="a")
        family = OBS.registry.get("repro_test_rounds_total")
        assert family.labels(tenant="a").value == 5
        assert OBS.registry.get("repro_test_label_total") is None

    def test_publish_gauges_skips_non_numerics(self):
        OBS.enable()
        OBS.publish_gauges(
            "repro_test", {"depth": 4, "sticky": True, "name": "x"}
        )
        assert OBS.registry.get("repro_test_depth").labels().value == 4
        assert OBS.registry.get("repro_test_sticky") is None
        assert OBS.registry.get("repro_test_name") is None

    def test_consume_worker_delta_skips_none_replies(self):
        OBS.enable()
        OBS.consume_worker_delta("0", None)  # rebuilt-worker reply
        OBS.consume_worker_delta(
            "1",
            {"commands": {"commit": 2}, "busy_seconds": {"commit": 0.5}},
        )
        commands = OBS.registry.get("repro_shard_commands_total")
        assert commands.labels(shard="1", command="commit").value == 2

    def test_tenant_scope_restores_previous_label(self):
        OBS.enable()
        with OBS.tenant_scope("acme"):
            OBS.observe_phase("select", 0.001)
            assert OBS.tenant == "acme"
        assert OBS.tenant == ""
