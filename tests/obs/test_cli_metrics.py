"""CLI surface of the observability subsystem.

Pins the issue's acceptance criterion end to end: a real ``serve`` run
with two tenants, ``--metrics-out``/``--trace-out``, and
``--health-every`` produces a snapshot that ``repro metrics`` renders
into a latency breakdown covering select / collect / update / journal.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _clean_obs():
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture
def data_dir(tmp_path):
    out = tmp_path / "data"
    assert main([
        "generate", "--out", str(out), "--groups", "6",
        "--group-size", "4", "--answers", "5", "--seed", "1",
    ]) == 0
    return out


class TestServeWithObservability:
    def test_metrics_render_full_latency_breakdown(
        self, data_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        trace = tmp_path / "trace.jsonl"
        code = main([
            "serve", "--data", str(data_dir), "--theta", "0.85",
            "--group-size", "4", "--campaigns", "4", "--tenants", "2",
            "--budget", "30", "--health-every", "3",
            "--journal-root", str(tmp_path / "journals"),
            "--metrics-out", str(metrics),
            "--trace-out", str(trace),
        ])
        serve_out = capsys.readouterr().out
        assert code == 0
        assert "health: active=" in serve_out
        assert "p95_round=" in serve_out
        assert metrics.exists() and trace.exists()
        # Trace file holds valid JSONL spans.
        lines = trace.read_text().splitlines()
        assert lines and all(
            "name" in json.loads(line) for line in lines
        )

        assert main(["metrics", str(metrics)]) == 0
        report = capsys.readouterr().out
        for phase in ("select", "collect", "update", "journal", "round"):
            assert phase in report, f"missing {phase} in:\n{report}"
        # Both tenants appear in the per-tenant section.
        assert "tenant-0" in report and "tenant-1" in report

    def test_prometheus_rendering_from_snapshot(
        self, data_dir, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.json"
        assert main([
            "serve", "--data", str(data_dir), "--theta", "0.85",
            "--group-size", "4", "--campaigns", "2", "--tenants", "2",
            "--budget", "20",
            "--journal-root", str(tmp_path / "journals"),
            "--metrics-out", str(metrics),
        ]) == 0
        capsys.readouterr()
        assert main(["metrics", str(metrics), "--prometheus"]) == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_phase_seconds histogram" in text
        assert "repro_service_rounds_total" in text


class TestSessionWithObservability:
    def test_session_writes_snapshot_and_leaves_output_unchanged(
        self, data_dir, tmp_path, capsys
    ):
        baseline_args = [
            "session", "--data", str(data_dir), "--group-size", "4",
            "--theta", "0.85", "--budget", "20", "--seed", "3",
        ]
        assert main(baseline_args) == 0
        baseline = capsys.readouterr().out

        metrics = tmp_path / "metrics.json"
        assert main(
            baseline_args + ["--metrics-out", str(metrics)]
        ) == 0
        observed = capsys.readouterr().out
        assert f"metrics snapshot: {metrics}" in observed
        # Observability adds its own footer but never changes the
        # session's numbers.
        assert baseline in observed
        snapshot = json.loads(metrics.read_text())
        assert "repro_phase_seconds" in snapshot["metrics"]


class TestMetricsCommand:
    def test_rejects_unreadable_snapshot(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["metrics", str(bad)]) == 2
        captured = capsys.readouterr()
        assert "error" in (captured.out + captured.err).lower()
