"""The observability hard contract: enabled vs disabled is invisible.

Turning on tracing + metrics must never touch an RNG stream and never
change a journal byte.  Each test runs the same campaign twice — once
with ``OBS`` fully enabled (metrics, trace buffer, trace JSONL), once
disabled — and asserts the journals are byte-identical and the final
beliefs bit-identical.  Covered shapes: the serial sharded engine
(``jobs=1``), the parallel engine (``jobs=4``), and a streamed
campaign.  Each enabled run also asserts instrumentation actually
fired, so a regression that silently disables the hooks cannot pass as
"no perturbation".
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trust import TrustPolicy
from repro.datasets import WorkerPoolSpec, make_synthetic_dataset
from repro.engine import run_parallel_hc_session
from repro.obs import OBS
from repro.simulation import (
    FaultModel,
    FaultyExpertPanel,
    SessionConfig,
    SimulatedExpertPanel,
)
from repro.stream import StreamingCampaign

from ..stream.conftest import BUDGET, build_spec, events_for, experts_for


@pytest.fixture(autouse=True)
def _clean_obs():
    """Every run starts from a fresh, disabled facade."""
    OBS.reset()
    yield
    OBS.reset()


@pytest.fixture(autouse=True)
def _no_env_chaos(monkeypatch):
    # Byte comparisons; keep the CI chaos matrix out of the journals.
    for name in ("REPRO_CHAOS", "REPRO_CHAOS_SEED", "REPRO_SHARD_DEADLINE"):
        monkeypatch.delenv(name, raising=False)


def _dataset():
    return make_synthetic_dataset(
        num_groups=6,
        group_size=4,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=12, num_expert=3),
        seed=3,
    )


FAULTS = FaultModel(no_show=0.2, partial=0.2, seed=9)


def _config(journal_path):
    return SessionConfig(
        budget=30.0,
        k=2,
        seed=5,
        faults=FAULTS,
        trust_policy=TrustPolicy(seed=7),
        reserve_accuracies=(0.92, 0.9),
        journal_path=journal_path,
    )


def _run_engine(dataset, journal_path, jobs):
    return run_parallel_hc_session(
        dataset, _config(journal_path), jobs=jobs, inline=True
    )


def _assert_observed_something(tmp_path):
    """The enabled run must have actually recorded phases and spans."""
    snapshot = OBS.snapshot()
    phase = snapshot["metrics"].get("repro_phase_seconds")
    assert phase is not None, "no phase latencies recorded while enabled"
    phases = {
        series["labels"]["phase"] for series in phase["series"]
    }
    assert phases, "phase family exists but holds no series"
    assert OBS.tracer.enabled and len(OBS.tracer.spans()) > 0
    trace_file = tmp_path / "enabled.trace.jsonl"
    assert trace_file.exists() and trace_file.stat().st_size > 0
    return phases


@pytest.mark.parametrize("jobs", [1, 4])
def test_engine_journal_bytes_identical_enabled_vs_disabled(
    tmp_path, jobs
):
    dataset = _dataset()

    disabled_path = tmp_path / "disabled.jsonl"
    reference = _run_engine(dataset, disabled_path, jobs)
    disabled_bytes = disabled_path.read_bytes()

    OBS.reset()
    OBS.enable(trace_path=tmp_path / "enabled.trace.jsonl")
    enabled_path = tmp_path / "enabled.jsonl"
    observed = _run_engine(dataset, enabled_path, jobs)
    OBS.flush(tmp_path / "enabled.metrics.json")

    assert enabled_path.read_bytes() == disabled_bytes
    for ours, theirs in zip(observed.belief, reference.belief):
        assert np.array_equal(ours.probabilities, theirs.probabilities)
    assert observed.budgets == reference.budgets

    phases = _assert_observed_something(tmp_path)
    # The engine seams: selection, collection, belief update, shard
    # commit, and journal checkpoints all sit on the run path.
    assert {"select", "collect", "update", "commit", "journal"} <= phases


def test_stream_journal_bytes_identical_enabled_vs_disabled(tmp_path):
    dataset = make_synthetic_dataset(
        num_groups=3, group_size=3, answers_per_fact=6, seed=1
    )
    spec = build_spec()
    events = events_for(dataset, spec)
    experts = experts_for(dataset, spec)

    def run(path):
        campaign = StreamingCampaign(
            events, experts, BUDGET, spec=spec, journal_path=path
        )
        campaign.run()
        assert campaign.finished
        return path.read_bytes()

    disabled_bytes = run(tmp_path / "disabled.jsonl")

    OBS.reset()
    OBS.enable(trace_path=tmp_path / "enabled.trace.jsonl")
    enabled_bytes = run(tmp_path / "enabled.jsonl")

    assert enabled_bytes == disabled_bytes
    phases = _assert_observed_something(tmp_path)
    assert {"admit", "seal"} <= phases
