"""Unit tests for the BWA aggregator."""

import numpy as np
import pytest

from repro.aggregation import Bwa, MajorityVote


class TestBwa:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Bwa().fit(matrix).accuracy(truth) > 0.85

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        bwa = Bwa().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert bwa >= mv

    def test_prior_pulls_sparse_workers_toward_prior_mean(self, make_answers):
        """A worker with a single answer should sit near the Beta prior
        mean, not at 0 or 1."""
        matrix, _truth = make_answers(
            num_tasks=4, accuracies=(0.9, 0.9, 0.9), answers_per_task=3,
            seed=2,
        )
        result = Bwa(prior_correct=4.0, prior_incorrect=1.0).fit(matrix)
        prior_mean = 4.0 / 5.0
        assert np.all(np.abs(result.worker_reliability - prior_mean) < 0.25)

    def test_reliability_ordering(self, hard_crowd_answers):
        matrix, _truth = hard_crowd_answers
        reliability = Bwa().fit(matrix).worker_reliability
        assert reliability[0] > reliability[5]

    def test_converges(self, crowd_answers):
        matrix, _truth = crowd_answers
        assert Bwa(max_iter=300).fit(matrix).converged

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Bwa().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_invalid_prior_rejected(self):
        with pytest.raises(ValueError):
            Bwa(prior_correct=0.0)
        with pytest.raises(ValueError):
            Bwa(prior_incorrect=-1.0)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        assert Bwa().fit(matrix).accuracy(truth) > 0.7

    def test_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        assert np.array_equal(
            Bwa().fit(matrix).posteriors, Bwa().fit(matrix).posteriors
        )
