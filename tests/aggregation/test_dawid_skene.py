"""Unit tests for the Dawid-Skene EM aggregator."""

import numpy as np
import pytest

from repro.aggregation import AnswerMatrix, DawidSkene, MajorityVote


class TestDawidSkene:
    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        ds = DawidSkene().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert ds >= mv

    def test_high_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert DawidSkene().fit(matrix).accuracy(truth) > 0.85

    def test_converges(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = DawidSkene(max_iter=200).fit(matrix)
        assert result.converged
        assert result.iterations < 200

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = DawidSkene().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_recovers_worker_reliability_ordering(self, hard_crowd_answers):
        matrix, _truth = hard_crowd_answers
        result = DawidSkene().fit(matrix)
        reliability = result.worker_reliability
        # Workers 0-1 are the accurate ones (0.95, 0.9).
        assert reliability[0] > reliability[3]
        assert reliability[1] > reliability[4]

    def test_confusion_matrices_are_stochastic(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = DawidSkene().fit(matrix)
        confusion = result.extras["confusion"]
        assert np.allclose(confusion.sum(axis=2), 1.0)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        result = DawidSkene().fit(matrix)
        assert result.posteriors.shape == (matrix.num_tasks, 3)
        assert result.accuracy(truth) > 0.7

    def test_adversarial_worker_inverted(self):
        """DS's confusion matrices can exploit an always-wrong worker,
        which symmetric models cannot."""
        rng = np.random.default_rng(1)
        truth = rng.integers(0, 2, 300)
        annotations = []
        for task in range(300):
            # Two honest 0.7 workers and one perfectly adversarial one.
            for worker, accuracy in enumerate((0.7, 0.7)):
                label = truth[task] if rng.random() < accuracy else 1 - truth[task]
                annotations.append((task, worker, int(label)))
            annotations.append((task, 2, int(1 - truth[task])))
        matrix = AnswerMatrix(annotations)
        result = DawidSkene().fit(matrix)
        assert result.accuracy(truth) > 0.9

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DawidSkene(max_iter=0)
        with pytest.raises(ValueError):
            DawidSkene(smoothing=-1.0)

    def test_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        a = DawidSkene().fit(matrix).posteriors
        b = DawidSkene().fit(matrix).posteriors
        assert np.array_equal(a, b)
