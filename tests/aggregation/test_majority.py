"""Unit tests for majority voting (paper Eq. 5) and its weighted variant."""

import numpy as np
import pytest

from repro.aggregation import AnswerMatrix, MajorityVote, WeightedMajorityVote


class TestMajorityVote:
    def test_simple_majority(self):
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 1), (0, 2, 0)])
        result = MajorityVote().fit(matrix)
        assert result.predictions[0] == 1
        assert result.posteriors[0, 1] == pytest.approx(2 / 3)

    def test_smoothing_keeps_uncertainty(self):
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 1)])
        result = MajorityVote(smoothing=1.0).fit(matrix)
        assert 0.5 < result.posteriors[0, 1] < 1.0

    def test_unanimous_without_smoothing_is_certain(self):
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 1)])
        result = MajorityVote(smoothing=0.0).fit(matrix)
        assert result.posteriors[0, 1] == 1.0

    def test_unvoted_task_uniform(self):
        matrix = AnswerMatrix([(0, 0, 1)], num_tasks=2, num_classes=2)
        result = MajorityVote(smoothing=0.0).fit(matrix)
        assert np.allclose(result.posteriors[1], [0.5, 0.5])

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError):
            MajorityVote(smoothing=-1.0)

    def test_empty_matrix_rejected(self):
        matrix = AnswerMatrix([], num_tasks=1, num_workers=1, num_classes=2)
        with pytest.raises(ValueError, match="empty"):
            MajorityVote().fit(matrix)

    def test_multiclass(self):
        matrix = AnswerMatrix(
            [(0, 0, 2), (0, 1, 2), (0, 2, 1)], num_classes=3
        )
        result = MajorityVote().fit(matrix)
        assert result.predictions[0] == 2


class TestWeightedMajorityVote:
    def test_high_accuracy_worker_outvotes_two_weak(self):
        # Worker 0: accuracy 0.95; workers 1-2: accuracy 0.55.
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 0), (0, 2, 0)])
        aggregator = WeightedMajorityVote([0.95, 0.55, 0.55])
        result = aggregator.fit(matrix)
        assert result.predictions[0] == 1

    def test_binary_posterior_is_exact_bayes(self):
        """For binary labels the softmax of log-odds votes equals the
        exact posterior under independent symmetric noise."""
        accuracies = [0.9, 0.7]
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 0)])
        result = WeightedMajorityVote(accuracies).fit(matrix)
        # P(t=1) propto 0.9 * 0.3 ; P(t=0) propto 0.1 * 0.7
        expected = (0.9 * 0.3) / (0.9 * 0.3 + 0.1 * 0.7)
        assert result.posteriors[0, 1] == pytest.approx(expected)

    def test_missing_accuracy_rejected(self):
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 0)])
        with pytest.raises(ValueError, match="each of"):
            WeightedMajorityVote([0.9]).fit(matrix)

    def test_accuracy_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            WeightedMajorityVote([1.2])

    def test_extreme_accuracies_clipped(self):
        aggregator = WeightedMajorityVote([1.0, 0.0])
        assert aggregator.accuracies[0] < 1.0
        assert aggregator.accuracies[1] > 0.0

    def test_reliability_reported(self):
        matrix = AnswerMatrix([(0, 0, 1)])
        result = WeightedMajorityVote([0.8]).fit(matrix)
        assert result.worker_reliability[0] == pytest.approx(0.8)
