"""Unit tests for the CRH aggregator."""

import numpy as np
import pytest

from repro.aggregation import Crh, MajorityVote


class TestCrh:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Crh().fit(matrix).accuracy(truth) > 0.8

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        crh = Crh().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert crh >= mv

    def test_converges(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Crh(max_iter=100).fit(matrix)
        assert result.converged

    def test_weights_reward_agreement(self, hard_crowd_answers):
        matrix, _truth = hard_crowd_answers
        weights = Crh().fit(matrix).extras["weights"]
        assert weights[0] > weights[5]

    def test_weights_positive(self, crowd_answers):
        matrix, _truth = crowd_answers
        weights = Crh().fit(matrix).extras["weights"]
        assert np.all(weights > 0)

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Crh().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_reliability_scaled_to_unit_interval(self, crowd_answers):
        matrix, _truth = crowd_answers
        reliability = Crh().fit(matrix).worker_reliability
        assert np.all((reliability >= 0.0) & (reliability <= 1.0))
        assert reliability.max() == pytest.approx(1.0)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        assert Crh().fit(matrix).accuracy(truth) > 0.7

    def test_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        assert np.array_equal(
            Crh().fit(matrix).posteriors, Crh().fit(matrix).posteriors
        )
