"""Unit tests for the variational BCC aggregator."""

import numpy as np
import pytest

from repro.aggregation import AnswerMatrix, Bcc, MajorityVote


class TestBcc:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Bcc().fit(matrix).accuracy(truth) > 0.85

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        bcc = Bcc().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert bcc >= mv

    def test_confusion_rows_stochastic(self, crowd_answers):
        matrix, _truth = crowd_answers
        confusion = Bcc().fit(matrix).extras["confusion"]
        assert np.allclose(confusion.sum(axis=2), 1.0)

    def test_exploits_adversarial_worker(self):
        rng = np.random.default_rng(4)
        truth = rng.integers(0, 2, 300)
        annotations = []
        for task in range(300):
            for worker, accuracy in enumerate((0.7, 0.7)):
                label = (
                    truth[task]
                    if rng.random() < accuracy
                    else 1 - truth[task]
                )
                annotations.append((task, worker, int(label)))
            annotations.append((task, 2, int(1 - truth[task])))
        matrix = AnswerMatrix(annotations)
        assert Bcc().fit(matrix).accuracy(truth) > 0.85

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Bcc().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_invalid_priors_rejected(self):
        with pytest.raises(ValueError):
            Bcc(prior_strength=0.0)
        with pytest.raises(ValueError):
            Bcc(diagonal_prior=-1.0)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        assert Bcc().fit(matrix).accuracy(truth) > 0.7

    def test_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        assert np.array_equal(
            Bcc().fit(matrix).posteriors, Bcc().fit(matrix).posteriors
        )
