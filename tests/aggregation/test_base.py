"""Unit tests for repro.aggregation.base."""

import numpy as np
import pytest

from repro.aggregation import (
    AggregationResult,
    Annotation,
    AnswerMatrix,
)


class TestAnnotation:
    def test_fields(self):
        annotation = Annotation(task=1, worker=2, label=0)
        assert (annotation.task, annotation.worker, annotation.label) == (
            1, 2, 0,
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Annotation(task=-1, worker=0, label=0)
        with pytest.raises(ValueError):
            Annotation(task=0, worker=-1, label=0)
        with pytest.raises(ValueError):
            Annotation(task=0, worker=0, label=-1)


class TestAnswerMatrix:
    def test_sizes_inferred(self):
        matrix = AnswerMatrix([(0, 0, 1), (2, 3, 0)])
        assert matrix.num_tasks == 3
        assert matrix.num_workers == 4
        assert matrix.num_classes == 2

    def test_explicit_sizes(self):
        matrix = AnswerMatrix(
            [(0, 0, 1)], num_tasks=5, num_workers=2, num_classes=3
        )
        assert matrix.num_tasks == 5
        assert matrix.num_classes == 3

    def test_annotation_out_of_range(self):
        with pytest.raises(ValueError, match="task index"):
            AnswerMatrix([(5, 0, 0)], num_tasks=2)
        with pytest.raises(ValueError, match="worker index"):
            AnswerMatrix([(0, 5, 0)], num_workers=2)
        with pytest.raises(ValueError, match="label"):
            AnswerMatrix([(0, 0, 5)], num_classes=2)

    def test_duplicate_pair_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            AnswerMatrix([(0, 0, 1), (0, 0, 0)])

    def test_empty_needs_sizes(self):
        with pytest.raises(ValueError, match="explicit"):
            AnswerMatrix([])
        matrix = AnswerMatrix(
            [], num_tasks=2, num_workers=2, num_classes=2
        )
        assert matrix.num_annotations == 0

    def test_accepts_annotation_objects(self):
        matrix = AnswerMatrix([Annotation(0, 1, 1)])
        assert matrix.num_annotations == 1

    def test_dense(self):
        matrix = AnswerMatrix([(0, 0, 1), (1, 1, 0)])
        dense = matrix.dense()
        assert dense[0, 0] == 1
        assert dense[1, 1] == 0
        assert dense[0, 1] == -1

    def test_one_hot(self):
        matrix = AnswerMatrix([(0, 0, 1)], num_classes=2)
        tensor = matrix.one_hot()
        assert tensor.shape == (1, 1, 2)
        assert tensor[0, 0, 1] == 1.0
        assert tensor[0, 0, 0] == 0.0

    def test_vote_counts(self):
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 1), (0, 2, 0)])
        counts = matrix.vote_counts()
        assert counts[0, 1] == 2
        assert counts[0, 0] == 1

    def test_answers_per_task(self):
        matrix = AnswerMatrix(
            [(0, 0, 1), (0, 1, 0), (2, 0, 1)], num_tasks=3
        )
        assert list(matrix.answers_per_task()) == [2, 0, 1]

    def test_restrict_workers(self):
        matrix = AnswerMatrix([(0, 0, 1), (0, 1, 0), (1, 2, 1)])
        restricted = matrix.restrict_workers([0, 2])
        assert restricted.num_annotations == 2
        assert restricted.num_workers == matrix.num_workers
        assert all(a.worker in (0, 2) for a in restricted.annotations)

    def test_parallel_index_arrays(self):
        matrix = AnswerMatrix([(0, 1, 1), (2, 0, 0)])
        assert list(matrix.task_indices) == [0, 2]
        assert list(matrix.worker_indices) == [1, 0]
        assert list(matrix.label_values) == [1, 0]


class TestAggregationResult:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            AggregationResult(posteriors=np.array([[0.9, 0.3]]))

    def test_must_be_2d(self):
        with pytest.raises(ValueError, match="num_tasks"):
            AggregationResult(posteriors=np.array([0.5, 0.5]))

    def test_predictions_argmax(self):
        result = AggregationResult(
            posteriors=np.array([[0.8, 0.2], [0.4, 0.6]])
        )
        assert list(result.predictions) == [0, 1]

    def test_accuracy(self):
        result = AggregationResult(
            posteriors=np.array([[0.8, 0.2], [0.4, 0.6]])
        )
        assert result.accuracy([0, 0]) == 0.5
        assert result.accuracy([0, 1]) == 1.0

    def test_accuracy_length_mismatch(self):
        result = AggregationResult(posteriors=np.array([[1.0, 0.0]]))
        with pytest.raises(ValueError):
            result.accuracy([0, 1])
