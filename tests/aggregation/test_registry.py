"""Unit tests for the aggregator registry."""

import pytest

from repro.aggregation import (
    BASELINE_NAMES,
    Aggregator,
    MajorityVote,
    available_aggregators,
    make_aggregator,
    register_aggregator,
)


class TestRegistry:
    def test_all_baselines_available(self):
        available = available_aggregators()
        for name in BASELINE_NAMES:
            assert name in available

    def test_baseline_count_matches_paper(self):
        assert len(BASELINE_NAMES) == 8

    def test_make_returns_aggregator(self):
        for name in BASELINE_NAMES:
            aggregator = make_aggregator(name)
            assert isinstance(aggregator, Aggregator)

    def test_case_insensitive(self):
        assert type(make_aggregator("ebcc")) is type(make_aggregator("EBCC"))

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown aggregator"):
            make_aggregator("NOPE")

    def test_fresh_instance_each_call(self):
        assert make_aggregator("DS") is not make_aggregator("DS")

    def test_register_custom(self):
        register_aggregator(
            "test_custom", lambda: MajorityVote(smoothing=2.0)
        )
        try:
            aggregator = make_aggregator("test_custom")
            assert aggregator.smoothing == 2.0
        finally:
            # Clean up so repeated test runs in one session don't clash.
            register_aggregator(
                "test_custom", MajorityVote, overwrite=True
            )

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_aggregator("MV", MajorityVote)

    def test_register_overwrite_allowed(self):
        original = make_aggregator("MV")
        register_aggregator(
            "MV", lambda: MajorityVote(smoothing=9.0), overwrite=True
        )
        try:
            assert make_aggregator("MV").smoothing == 9.0
        finally:
            register_aggregator(
                "MV",
                lambda: MajorityVote(smoothing=original.smoothing),
                overwrite=True,
            )
