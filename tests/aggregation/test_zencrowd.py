"""Unit tests for the ZenCrowd EM aggregator."""

import numpy as np
import pytest

from repro.aggregation import MajorityVote, ZenCrowd


class TestZenCrowd:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert ZenCrowd().fit(matrix).accuracy(truth) > 0.85

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        zc = ZenCrowd().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert zc >= mv

    def test_reliability_estimates_ordered(self, hard_crowd_answers):
        matrix, _truth = hard_crowd_answers
        reliability = ZenCrowd().fit(matrix).worker_reliability
        assert reliability[0] > reliability[5]

    def test_reliability_in_unit_interval(self, crowd_answers):
        matrix, _truth = crowd_answers
        reliability = ZenCrowd().fit(matrix).worker_reliability
        assert np.all(reliability >= 0.0)
        assert np.all(reliability <= 1.0)

    def test_reliability_estimates_close_to_truth(self, make_answers):
        matrix, _truth = make_answers(
            num_tasks=600,
            accuracies=(0.9, 0.6, 0.8, 0.7, 0.75),
            answers_per_task=5,
            seed=11,
        )
        reliability = ZenCrowd().fit(matrix).worker_reliability
        assert reliability[0] == pytest.approx(0.9, abs=0.1)
        assert reliability[1] == pytest.approx(0.6, abs=0.1)
        assert reliability[3] == pytest.approx(0.7, abs=0.1)

    def test_converges(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = ZenCrowd(max_iter=300).fit(matrix)
        assert result.converged

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = ZenCrowd().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        result = ZenCrowd().fit(matrix)
        assert result.accuracy(truth) > 0.7

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZenCrowd(initial_reliability=1.0)
        with pytest.raises(ValueError):
            ZenCrowd(smoothing=-0.1)

    def test_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        assert np.array_equal(
            ZenCrowd().fit(matrix).posteriors,
            ZenCrowd().fit(matrix).posteriors,
        )
