"""Unit tests for the GLAD aggregator."""

import numpy as np
import pytest

from repro.aggregation import AnswerMatrix, Glad, MajorityVote


class TestGlad:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Glad().fit(matrix).accuracy(truth) > 0.8

    def test_competitive_with_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        glad = Glad().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert glad >= mv - 0.02

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Glad().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_ability_ordering(self, hard_crowd_answers):
        matrix, _truth = hard_crowd_answers
        alpha = Glad().fit(matrix).extras["alpha"]
        assert alpha[0] > alpha[4]

    def test_difficulty_estimated_per_task(self, crowd_answers):
        matrix, _truth = crowd_answers
        beta = Glad().fit(matrix).extras["beta"]
        assert beta.shape == (matrix.num_tasks,)
        assert np.all(beta > 0)

    def test_contested_task_harder_than_unanimous(self):
        """A task with split votes should get a lower inverse-difficulty
        beta than a unanimously-labeled one."""
        annotations = []
        # Tasks 0..9 unanimous, tasks 10..19 split 2-2.
        for task in range(10):
            for worker in range(4):
                annotations.append((task, worker, 1))
        for task in range(10, 20):
            for worker in range(4):
                annotations.append((task, worker, worker % 2))
        matrix = AnswerMatrix(annotations)
        beta = Glad(max_iter=30).fit(matrix).extras["beta"]
        assert beta[:10].mean() > beta[10:].mean()

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        assert Glad().fit(matrix).accuracy(truth) > 0.65

    def test_reliability_in_unit_interval(self, crowd_answers):
        matrix, _truth = crowd_answers
        reliability = Glad().fit(matrix).worker_reliability
        assert np.all((reliability >= 0.0) & (reliability <= 1.0))

    def test_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        assert np.array_equal(
            Glad().fit(matrix).posteriors, Glad().fit(matrix).posteriors
        )
