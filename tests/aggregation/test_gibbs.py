"""Unit tests for the Gibbs-sampling Dawid-Skene aggregator."""

import numpy as np
import pytest

from repro.aggregation import (
    AnswerMatrix,
    DawidSkene,
    GibbsDawidSkene,
    MajorityVote,
    make_aggregator,
)


class TestGibbsDawidSkene:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        result = GibbsDawidSkene(num_samples=80, burn_in=20).fit(matrix)
        assert result.accuracy(truth) > 0.85

    def test_competitive_with_em_ds(self, hard_crowd_answers):
        matrix, truth = hard_crowd_answers
        gibbs = GibbsDawidSkene(num_samples=100, burn_in=30).fit(matrix)
        em = DawidSkene().fit(matrix)
        assert gibbs.accuracy(truth) >= em.accuracy(truth) - 0.05

    def test_beats_or_matches_majority(self, hard_crowd_answers):
        matrix, truth = hard_crowd_answers
        gibbs = GibbsDawidSkene(num_samples=100, burn_in=30).fit(matrix)
        mv = MajorityVote().fit(matrix)
        assert gibbs.accuracy(truth) >= mv.accuracy(truth) - 0.02

    def test_posteriors_are_sample_frequencies(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = GibbsDawidSkene(num_samples=40, burn_in=5).fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)
        # Frequencies over 40 samples are multiples of 1/40.
        scaled = result.posteriors * 40
        assert np.allclose(scaled, np.round(scaled))

    def test_posterior_uncertainty_on_contested_task(self):
        """A 2-2 vote from equal workers should produce a genuinely
        uncertain posterior, not a hard label."""
        annotations = [(0, w, w % 2) for w in range(4)]
        # Anchor tasks so the sampler can estimate worker quality.
        for task in range(1, 30):
            for worker in range(4):
                annotations.append((task, worker, task % 2))
        matrix = AnswerMatrix(annotations)
        result = GibbsDawidSkene(num_samples=200, burn_in=50).fit(matrix)
        assert 0.15 < result.posteriors[0, 1] < 0.85

    def test_seed_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        a = GibbsDawidSkene(num_samples=30, seed=3).fit(matrix).posteriors
        b = GibbsDawidSkene(num_samples=30, seed=3).fit(matrix).posteriors
        assert np.array_equal(a, b)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        result = GibbsDawidSkene(num_samples=80, burn_in=20).fit(matrix)
        assert result.accuracy(truth) > 0.65

    def test_validation(self):
        with pytest.raises(ValueError):
            GibbsDawidSkene(num_samples=0)
        with pytest.raises(ValueError):
            GibbsDawidSkene(burn_in=-1)
        with pytest.raises(ValueError):
            GibbsDawidSkene(diagonal_prior=0.0)

    def test_registry(self, crowd_answers):
        matrix, truth = crowd_answers
        result = make_aggregator("GIBBS-DS").fit(matrix)
        assert result.accuracy(truth) > 0.8
