"""Fixtures shared by the aggregation tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation import AnswerMatrix


def make_crowd_answers(
    num_tasks: int = 150,
    accuracies: tuple[float, ...] = (0.9, 0.85, 0.7, 0.65, 0.6, 0.55),
    answers_per_task: int = 5,
    num_classes: int = 2,
    seed: int = 0,
) -> tuple[AnswerMatrix, np.ndarray]:
    """Synthetic symmetric-noise crowd answers with known truth."""
    rng = np.random.default_rng(seed)
    truth = rng.integers(0, num_classes, num_tasks)
    annotations = []
    for task in range(num_tasks):
        workers = rng.choice(
            len(accuracies), size=answers_per_task, replace=False
        )
        for worker in workers:
            if rng.random() < accuracies[worker]:
                label = truth[task]
            else:
                others = [c for c in range(num_classes) if c != truth[task]]
                label = others[rng.integers(len(others))]
            annotations.append((task, int(worker), int(label)))
    matrix = AnswerMatrix(annotations, num_classes=num_classes)
    return matrix, truth


@pytest.fixture
def make_answers():
    """Factory fixture so tests can generate bespoke crowd answers."""
    return make_crowd_answers


@pytest.fixture
def crowd_answers():
    """Default binary crowd-answer matrix plus ground truth."""
    return make_crowd_answers()


@pytest.fixture
def hard_crowd_answers():
    """Noisier crowd: models that estimate reliability should shine."""
    return make_crowd_answers(
        num_tasks=200,
        accuracies=(0.95, 0.9, 0.55, 0.55, 0.55, 0.55, 0.55, 0.55),
        answers_per_task=6,
        seed=7,
    )


@pytest.fixture
def multiclass_answers():
    return make_crowd_answers(
        num_tasks=120,
        accuracies=(0.9, 0.8, 0.7, 0.65, 0.6),
        answers_per_task=4,
        num_classes=3,
        seed=3,
    )
