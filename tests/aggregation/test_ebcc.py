"""Unit tests for the EBCC aggregator."""

import numpy as np
import pytest

from repro.aggregation import Bcc, Ebcc, MajorityVote


class TestEbcc:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Ebcc().fit(matrix).accuracy(truth) > 0.85

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        ebcc = Ebcc().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert ebcc >= mv

    def test_single_subtype_close_to_bcc(self, crowd_answers):
        """With M=1 the model collapses to BCC (up to VB tie-breaking)."""
        matrix, truth = crowd_answers
        ebcc = Ebcc(num_subtypes=1).fit(matrix)
        bcc = Bcc().fit(matrix)
        agreement = np.mean(ebcc.predictions == bcc.predictions)
        assert agreement > 0.97

    def test_posterior_shape_collapses_subtypes(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Ebcc(num_subtypes=3).fit(matrix)
        assert result.posteriors.shape == (matrix.num_tasks, 2)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_responsibilities_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        responsibilities = Ebcc().fit(matrix).extras["responsibilities"]
        assert np.allclose(responsibilities.sum(axis=(1, 2)), 1.0)

    def test_seed_controls_symmetry_breaking(self, crowd_answers):
        matrix, _truth = crowd_answers
        a = Ebcc(seed=1).fit(matrix).posteriors
        b = Ebcc(seed=1).fit(matrix).posteriors
        assert np.array_equal(a, b)

    def test_invalid_subtypes_rejected(self):
        with pytest.raises(ValueError):
            Ebcc(num_subtypes=0)

    def test_invalid_priors_rejected(self):
        with pytest.raises(ValueError):
            Ebcc(subtype_prior=0.0)

    def test_multiclass(self, multiclass_answers):
        matrix, truth = multiclass_answers
        assert Ebcc().fit(matrix).accuracy(truth) > 0.7

    def test_correlated_workers_scenario(self):
        """Two cliques of workers that err together: EBCC's subtypes are
        built for this; it must stay competitive with MV."""
        rng = np.random.default_rng(9)
        num_tasks = 300
        truth = rng.integers(0, 2, num_tasks)
        # 40% of tasks belong to a "hard subtype" on which clique B errs
        # together (accuracy 0.25); elsewhere both cliques are reliable.
        hard = rng.random(num_tasks) < 0.4
        annotations = []
        for task in range(num_tasks):
            for worker in range(4):  # clique A: honest 0.9
                label = (
                    truth[task]
                    if rng.random() < 0.9
                    else 1 - truth[task]
                )
                annotations.append((task, worker, int(label)))
            for worker in range(4, 7):  # clique B: correlated errors
                accuracy = 0.25 if hard[task] else 0.85
                label = (
                    truth[task]
                    if rng.random() < accuracy
                    else 1 - truth[task]
                )
                annotations.append((task, worker, int(label)))
        from repro.aggregation import AnswerMatrix

        matrix = AnswerMatrix(annotations)
        ebcc = Ebcc(num_subtypes=2).fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert ebcc > mv
