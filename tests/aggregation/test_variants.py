"""Unit tests for the majority-voting variants (MV-Freq, MV-Beta,
Paired-MV)."""

import numpy as np
import pytest

from repro.aggregation import (
    AnswerMatrix,
    MvBeta,
    MvFreq,
    PairedVote,
    make_aggregator,
)


def _votes(yes: int, no: int) -> AnswerMatrix:
    annotations = []
    worker = 0
    for _ in range(yes):
        annotations.append((0, worker, 1))
        worker += 1
    for _ in range(no):
        annotations.append((0, worker, 0))
        worker += 1
    return AnswerMatrix(annotations, num_classes=2)


class TestMvFreq:
    def test_posterior_is_frequency(self):
        result = MvFreq().fit(_votes(3, 1))
        assert result.posteriors[0, 1] == pytest.approx(0.75)

    def test_rejects_multiclass(self):
        matrix = AnswerMatrix([(0, 0, 2)], num_classes=3)
        with pytest.raises(ValueError, match="binary"):
            MvFreq().fit(matrix)

    def test_unvoted_task_uniform(self):
        matrix = AnswerMatrix([(0, 0, 1)], num_tasks=2, num_classes=2)
        result = MvFreq().fit(matrix)
        assert np.allclose(result.posteriors[1], [0.5, 0.5])


class TestMvBeta:
    def test_same_ratio_less_confident_with_fewer_votes(self):
        """Beta certainty grows with evidence at a fixed vote ratio —
        the whole point over MV-Freq."""
        few = MvBeta().fit(_votes(3, 1)).posteriors[0, 1]
        many = MvBeta().fit(_votes(9, 3)).posteriors[0, 1]
        assert many > few

    def test_split_vote_is_half(self):
        result = MvBeta().fit(_votes(2, 2))
        assert result.posteriors[0, 1] == pytest.approx(0.5)

    def test_agrees_with_majority_direction(self):
        assert MvBeta().fit(_votes(4, 1)).predictions[0] == 1
        assert MvBeta().fit(_votes(1, 4)).predictions[0] == 0

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            MvBeta(prior_alpha=0.0)

    def test_accuracy_matches_majority_direction_overall(
        self, crowd_answers
    ):
        """Certainty re-weighting never flips the majority direction,
        so MV-Beta's hard accuracy equals MV-Freq's."""
        matrix, truth = crowd_answers
        beta_accuracy = MvBeta().fit(matrix).accuracy(truth)
        freq_accuracy = MvFreq().fit(matrix).accuracy(truth)
        assert beta_accuracy == pytest.approx(freq_accuracy)


class TestPairedVote:
    def test_certain_task_single_example(self):
        aggregator = PairedVote(certainty_threshold=0.8)
        aggregator.fit(_votes(6, 0))
        examples = aggregator.paired_examples()
        assert len(examples) == 1
        assert examples[0].label == 1
        assert examples[0].weight == 1.0

    def test_uncertain_task_paired_examples(self):
        aggregator = PairedVote(certainty_threshold=0.9)
        aggregator.fit(_votes(2, 1))
        examples = aggregator.paired_examples()
        assert len(examples) == 2
        weights = {example.label: example.weight for example in examples}
        assert weights[1] == pytest.approx(2 / 3)
        assert weights[0] == pytest.approx(1 / 3)

    def test_weights_sum_to_one_per_uncertain_task(self, crowd_answers):
        matrix, _truth = crowd_answers
        aggregator = PairedVote(certainty_threshold=0.99)
        aggregator.fit(matrix)
        by_task: dict[int, float] = {}
        for example in aggregator.paired_examples():
            by_task[example.task] = by_task.get(example.task, 0.0) + example.weight
        assert all(
            total == pytest.approx(1.0) for total in by_task.values()
        )

    def test_paired_examples_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            PairedVote().paired_examples()

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PairedVote(certainty_threshold=0.3)


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", ["MV-FREQ", "MV-BETA", "PAIRED-MV"])
    def test_available_by_name(self, name, crowd_answers):
        matrix, truth = crowd_answers
        result = make_aggregator(name).fit(matrix)
        assert result.accuracy(truth) > 0.8
