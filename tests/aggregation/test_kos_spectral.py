"""Unit tests for the KOS and spectral truth-inference methods."""

import numpy as np
import pytest

from repro.aggregation import (
    AnswerMatrix,
    Kos,
    MajorityVote,
    Spectral,
    make_aggregator,
)


class TestKos:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Kos().fit(matrix).accuracy(truth) > 0.85

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        kos = Kos().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert kos >= mv - 0.02

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Kos().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_unanswered_task_uniform(self):
        matrix = AnswerMatrix(
            [(0, 0, 1), (0, 1, 1)], num_tasks=2, num_classes=2
        )
        result = Kos().fit(matrix)
        assert np.allclose(result.posteriors[1], [0.5, 0.5])

    def test_rejects_multiclass(self, multiclass_answers):
        matrix, _truth = multiclass_answers
        with pytest.raises(ValueError, match="binary"):
            Kos().fit(matrix)

    def test_seed_deterministic(self, crowd_answers):
        matrix, _truth = crowd_answers
        a = Kos(rng=5).fit(matrix).posteriors
        b = Kos(rng=5).fit(matrix).posteriors
        assert np.array_equal(a, b)

    def test_reliability_orders_workers(self, hard_crowd_answers):
        matrix, _truth = hard_crowd_answers
        reliability = Kos().fit(matrix).worker_reliability
        assert reliability[0] > reliability[5]

    def test_invalid_max_iter(self):
        with pytest.raises(ValueError):
            Kos(max_iter=0)

    def test_registry(self, crowd_answers):
        matrix, truth = crowd_answers
        assert make_aggregator("KOS").fit(matrix).accuracy(truth) > 0.85


class TestSpectral:
    def test_accuracy_on_easy_crowd(self, crowd_answers):
        matrix, truth = crowd_answers
        assert Spectral().fit(matrix).accuracy(truth) > 0.85

    def test_beats_or_matches_majority_on_noisy_crowd(
        self, hard_crowd_answers
    ):
        matrix, truth = hard_crowd_answers
        spectral = Spectral().fit(matrix).accuracy(truth)
        mv = MajorityVote().fit(matrix).accuracy(truth)
        assert spectral >= mv - 0.02

    def test_sign_resolution_matches_majority_direction(
        self, crowd_answers
    ):
        """Global sign ambiguity resolved: predictions must agree with
        majority voting on the overwhelming majority of tasks."""
        matrix, _truth = crowd_answers
        spectral = Spectral().fit(matrix).predictions
        mv = MajorityVote().fit(matrix).predictions
        assert np.mean(spectral == mv) > 0.8

    def test_reliability_recovers_accuracies(self, make_answers):
        """With enough redundancy the alignment-based reliability tracks
        the true accuracies closely (rank-1 recovery needs more than two
        columns to disambiguate)."""
        matrix, _truth = make_answers(
            num_tasks=600,
            accuracies=(0.95, 0.55, 0.75, 0.85),
            answers_per_task=4,
            seed=9,
        )
        reliability = Spectral().fit(matrix).worker_reliability
        for estimated, true in zip(reliability, (0.95, 0.55, 0.75, 0.85)):
            assert estimated == pytest.approx(true, abs=0.08)

    def test_posteriors_normalized(self, crowd_answers):
        matrix, _truth = crowd_answers
        result = Spectral().fit(matrix)
        assert np.allclose(result.posteriors.sum(axis=1), 1.0)

    def test_unanswered_task_uniform(self):
        matrix = AnswerMatrix(
            [(0, 0, 1), (0, 1, 1)], num_tasks=3, num_classes=2
        )
        result = Spectral().fit(matrix)
        assert np.allclose(result.posteriors[2], [0.5, 0.5])

    def test_rejects_multiclass(self, multiclass_answers):
        matrix, _truth = multiclass_answers
        with pytest.raises(ValueError, match="binary"):
            Spectral().fit(matrix)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            Spectral(temperature=0.0)

    def test_registry(self, crowd_answers):
        matrix, truth = crowd_answers
        assert (
            make_aggregator("SPECTRAL").fit(matrix).accuracy(truth) > 0.85
        )
