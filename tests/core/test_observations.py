"""Unit tests for repro.core.observations."""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    FactSet,
    FactoredBelief,
    observation_index,
    truth_table,
)


class TestTruthTable:
    def test_shape(self):
        assert truth_table(3).shape == (8, 3)

    def test_zero_facts(self):
        table = truth_table(0)
        assert table.shape == (1, 0)

    def test_little_endian_bits(self):
        table = truth_table(3)
        # observation 5 = 0b101 -> facts 0 and 2 true, fact 1 false
        assert list(table[5]) == [True, False, True]

    def test_all_rows_distinct(self):
        table = truth_table(4)
        as_ints = table @ (1 << np.arange(4))
        assert len(set(as_ints.tolist())) == 16

    def test_read_only(self):
        table = truth_table(2)
        with pytest.raises(ValueError):
            table[0, 0] = True

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            truth_table(-1)

    def test_too_large_rejected(self):
        with pytest.raises(ValueError, match="too large"):
            truth_table(25)


class TestObservationIndex:
    def test_empty(self):
        assert observation_index([]) == 0

    def test_round_trip_with_table(self):
        table = truth_table(3)
        for state in range(8):
            assert observation_index(list(table[state])) == state


class TestBeliefState:
    def test_normalizes(self, three_facts):
        belief = BeliefState(three_facts, np.ones(8) * 3.0)
        assert belief.probabilities.sum() == pytest.approx(1.0)

    def test_wrong_shape_rejected(self, three_facts):
        with pytest.raises(ValueError, match="expected 8"):
            BeliefState(three_facts, np.ones(4))

    def test_negative_rejected(self, three_facts):
        probs = np.ones(8)
        probs[0] = -0.5
        with pytest.raises(ValueError, match="non-negative"):
            BeliefState(three_facts, probs)

    def test_zero_sum_rejected(self, three_facts):
        with pytest.raises(ValueError, match="sum to zero"):
            BeliefState(three_facts, np.zeros(8))

    def test_probabilities_read_only(self, table1_belief):
        with pytest.raises(ValueError):
            table1_belief.probabilities[0] = 0.5

    def test_uniform(self, three_facts):
        belief = BeliefState.uniform(three_facts)
        assert np.allclose(belief.probabilities, 1 / 8)

    def test_table1_marginals(self, table1_belief):
        """Paper Eq. 4: P(f1)=0.58, P(f2)=0.63, P(f3)=0.50."""
        assert table1_belief.marginal(1) == pytest.approx(0.58)
        assert table1_belief.marginal(2) == pytest.approx(0.63)
        assert table1_belief.marginal(3) == pytest.approx(0.50)

    def test_marginals_vector_matches_scalar(self, table1_belief):
        vector = table1_belief.marginals()
        for position, fact_id in enumerate((1, 2, 3)):
            assert vector[position] == pytest.approx(
                table1_belief.marginal(fact_id)
            )

    def test_table1_joint_not_product_of_marginals(self, table1_belief):
        """Paper's point after Eq. 4: the facts are correlated."""
        product = (
            (1 - table1_belief.marginal(1))
            * (1 - table1_belief.marginal(2))
            * (1 - table1_belief.marginal(3))
        )
        joint = table1_belief.probability_of((False, False, False))
        assert abs(product - joint) > 0.01

    def test_probability_of(self, table1_belief):
        assert table1_belief.probability_of(
            (True, True, False)
        ) == pytest.approx(0.20)

    def test_from_marginals_product(self, three_facts):
        belief = BeliefState.from_marginals(three_facts, [0.5, 0.5, 0.5])
        assert np.allclose(belief.probabilities, 1 / 8)

    def test_from_marginals_bad_length(self, three_facts):
        with pytest.raises(ValueError, match="one marginal"):
            BeliefState.from_marginals(three_facts, [0.5])

    def test_from_marginals_out_of_range(self, three_facts):
        with pytest.raises(ValueError, match="lie in"):
            BeliefState.from_marginals(three_facts, [0.5, 1.5, 0.5])

    def test_from_marginals_extreme_ok(self, three_facts):
        belief = BeliefState.from_marginals(three_facts, [1.0, 0.0, 1.0])
        assert belief.probability_of((True, False, True)) == pytest.approx(1.0)

    def test_from_mapping_rejects_wrong_length(self, three_facts):
        with pytest.raises(ValueError, match="length"):
            BeliefState.from_mapping(three_facts, {(True,): 1.0})

    def test_point_mass(self, three_facts):
        belief = BeliefState.point_mass(three_facts, (True, False, True))
        assert belief.probability_of((True, False, True)) == 1.0
        assert belief.map_labels() == {1: True, 2: False, 3: True}

    def test_map_observation(self, table1_belief):
        # Largest mass in Table I is o4 = (True, True, False) at 0.20.
        assert table1_belief.map_observation() == observation_index(
            (True, True, False)
        )

    def test_map_labels(self, table1_belief):
        assert table1_belief.map_labels() == {1: True, 2: True, 3: False}

    def test_reweighted_is_bayes(self, table1_belief):
        likelihood = np.linspace(1.0, 2.0, 8)
        posterior = table1_belief.reweighted(likelihood)
        expected = table1_belief.probabilities * likelihood
        expected /= expected.sum()
        assert np.allclose(posterior.probabilities, expected)

    def test_reweighted_wrong_shape(self, table1_belief):
        with pytest.raises(ValueError):
            table1_belief.reweighted(np.ones(4))

    def test_with_probabilities(self, table1_belief):
        updated = table1_belief.with_probabilities(np.ones(8))
        assert np.allclose(updated.probabilities, 1 / 8)
        assert updated.facts == table1_belief.facts


class TestFactoredBelief:
    def _two_groups(self):
        group_a = BeliefState.uniform(FactSet.from_ids([0, 1]))
        group_b = BeliefState.uniform(FactSet.from_ids([2, 3, 4]))
        return FactoredBelief([group_a, group_b])

    def test_len_and_num_facts(self):
        belief = self._two_groups()
        assert len(belief) == 2
        assert belief.num_facts == 5

    def test_fact_ids_order(self):
        assert self._two_groups().fact_ids == [0, 1, 2, 3, 4]

    def test_group_lookup(self):
        belief = self._two_groups()
        assert belief.group_index_of(3) == 1
        assert belief.group_of(0) is belief[0]

    def test_duplicate_fact_across_groups_rejected(self):
        group = BeliefState.uniform(FactSet.from_ids([0]))
        with pytest.raises(ValueError, match="multiple groups"):
            FactoredBelief([group, group])

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FactoredBelief([])

    def test_replace_group(self):
        belief = self._two_groups()
        new_state = BeliefState.point_mass(
            FactSet.from_ids([0, 1]), (True, True)
        )
        belief.replace_group(0, new_state)
        assert belief.marginal(0) == pytest.approx(1.0)

    def test_replace_group_wrong_facts_rejected(self):
        belief = self._two_groups()
        wrong = BeliefState.uniform(FactSet.from_ids([9, 10]))
        with pytest.raises(ValueError, match="same facts"):
            belief.replace_group(0, wrong)

    def test_map_labels_covers_all_facts(self):
        labels = self._two_groups().map_labels()
        assert set(labels) == {0, 1, 2, 3, 4}

    def test_copy_is_independent(self):
        belief = self._two_groups()
        clone = belief.copy()
        new_state = BeliefState.point_mass(
            FactSet.from_ids([0, 1]), (True, True)
        )
        clone.replace_group(0, new_state)
        assert belief.marginal(0) == pytest.approx(0.5)
        assert clone.marginal(0) == pytest.approx(1.0)


class TestLogReweighted:
    def _belief(self):
        return BeliefState.from_marginals(
            FactSet.from_ids([1, 2]), [0.6, 0.3]
        )

    def test_matches_linear_reweighting(self):
        belief = self._belief()
        likelihood = np.array([0.9, 0.05, 0.4, 0.7])
        linear = belief.reweighted(likelihood)
        logged = belief.log_reweighted(np.log(likelihood))
        assert np.allclose(linear.probabilities, logged.probabilities)

    def test_survives_extreme_log_likelihoods(self):
        belief = self._belief()
        log_likelihood = np.array([-800.0, -805.0, -900.0, -1000.0])
        posterior = belief.log_reweighted(log_likelihood)
        assert np.all(np.isfinite(posterior.probabilities))
        assert posterior.probabilities.sum() == pytest.approx(1.0)
        # only the relative weights matter: -800 vs -805 is e^5
        ratio = posterior.probabilities[0] / posterior.probabilities[1]
        expected = np.exp(5.0) * belief.probabilities[0] / belief.probabilities[1]
        assert ratio == pytest.approx(expected)

    def test_all_minus_inf_raises(self):
        belief = self._belief()
        with pytest.raises(ValueError, match="-inf"):
            belief.log_reweighted(np.full(4, -np.inf))

    def test_minus_inf_only_off_support_is_fine(self):
        facts = FactSet.from_ids([1, 2])
        belief = BeliefState.from_mapping(
            facts,
            {
                (False, False): 0.5,
                (True, False): 0.5,
                (False, True): 0.0,
                (True, True): 0.0,
            },
        )
        log_likelihood = np.array([0.0, -1.0, -np.inf, -np.inf])
        posterior = belief.log_reweighted(log_likelihood)
        assert posterior.probabilities.sum() == pytest.approx(1.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="shape|length|observation"):
            self._belief().log_reweighted(np.zeros(3))
