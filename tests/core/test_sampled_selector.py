"""Tests for the Monte Carlo greedy selector."""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    SampledGreedySelector,
)


def _belief() -> FactoredBelief:
    rng = np.random.default_rng(3)
    groups = []
    for start in (0, 3):
        facts = FactSet.from_ids(range(start, start + 3))
        groups.append(BeliefState(facts, rng.dirichlet(np.ones(8))))
    return FactoredBelief(groups)


class TestSampledGreedySelector:
    def test_agrees_with_exact_greedy_when_gains_are_clear(
        self, two_experts
    ):
        """With enough samples, the MC greedy's first pick matches the
        exact greedy's on instances with a clear best fact."""
        belief = _belief()
        exact_pick = GreedySelector().select(belief, two_experts, 1)
        mc_pick = SampledGreedySelector(
            num_samples=4000, rng=0
        ).select(belief, two_experts, 1)
        assert mc_pick == exact_pick

    def test_handles_huge_crowds(self):
        """40 checkers x multi-query sets: far beyond enumeration; the
        MC greedy must still stack queries where beneficial."""
        belief = _belief()
        big_crowd = Crowd.from_accuracies([0.85] * 40)
        selected = SampledGreedySelector(
            num_samples=300, rng=1
        ).select(belief, big_crowd, 3)
        assert len(selected) == 3
        assert len(set(selected)) == 3

    def test_certain_belief_selects_nothing(self, two_experts):
        certain = FactoredBelief(
            [
                BeliefState.point_mass(
                    FactSet.from_ids([0, 1]), (True, False)
                )
            ]
        )
        selected = SampledGreedySelector(
            num_samples=500, rng=2
        ).select(certain, two_experts, 2)
        assert selected == []

    def test_k_zero_and_validation(self, two_experts):
        belief = _belief()
        selector = SampledGreedySelector(num_samples=100, rng=0)
        assert selector.select(belief, two_experts, 0) == []
        with pytest.raises(ValueError):
            selector.select(belief, two_experts, -1)
        with pytest.raises(ValueError):
            SampledGreedySelector(num_samples=0)

    def test_zero_information_crowd_selects_nothing(self, two_experts):
        """Regression: coin-flip checkers carry zero information, so
        every gain must be *exactly* zero and the selection empty at the
        default tolerance.  The old selector re-estimated the current
        group entropy with fresh draws per candidate, and the difference
        of two independently-noisy estimates of the same quantity
        produced phantom "gains" that it happily chased."""
        belief = _belief()
        coin_flippers = Crowd.from_accuracies([0.5, 0.5])
        for seed in range(5):
            selector = SampledGreedySelector(num_samples=300, rng=seed)
            assert selector.select(belief, coin_flippers, 3) == []

    def test_each_entropy_estimated_once_per_round(self, two_experts):
        """Regression: with 2 groups x 3 facts, one greedy iteration
        needs exactly one MC estimate per candidate singleton (the
        current group entropies are the cached priors) — not O(N) extra
        re-estimates of the current entropy."""
        selector = SampledGreedySelector(num_samples=200, rng=0)
        selector.select(_belief(), two_experts, 1)
        assert selector.stats.sampled_evaluations == 6
        assert selector.stats.prior_evaluations == 2

        # Second iteration adds only the two 2-query sets of the
        # selected fact's group; everything else is cache hits.
        selector = SampledGreedySelector(num_samples=200, rng=0)
        selector.select(_belief(), two_experts, 2)
        assert selector.stats.sampled_evaluations == 8

    def test_usable_in_full_loop(self):
        """End-to-end: NO-HC-style whole-crowd checking driven by the MC
        greedy improves quality."""
        from repro.core import HierarchicalCrowdsourcing
        from repro.simulation import SimulatedExpertPanel

        truth = {fact_id: bool(fact_id % 2) for fact_id in range(6)}
        crowd = Crowd.from_accuracies(
            np.linspace(0.6, 0.95, 12).tolist()
        )
        belief = FactoredBelief(
            [
                BeliefState.uniform(FactSet.from_ids([0, 1, 2])),
                BeliefState.uniform(FactSet.from_ids([3, 4, 5])),
            ]
        )
        panel = SimulatedExpertPanel(truth, rng=4)
        runner = HierarchicalCrowdsourcing(
            crowd,
            selector=SampledGreedySelector(num_samples=200, rng=4),
            k=1,
        )
        result = runner.run(belief, panel, budget=48, ground_truth=truth)
        assert result.history[-1].quality > result.history[0].quality
