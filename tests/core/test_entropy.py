"""Unit tests for repro.core.entropy (Definitions 2/4/5, Theorems 1-2)."""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    answer_family_entropy,
    binary_entropy,
    conditional_entropy,
    conditional_entropy_naive,
    expected_quality,
    expected_quality_improvement,
    observation_entropy,
    quality,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_maximal(self):
        assert shannon_entropy(np.ones(8)) == pytest.approx(3.0)

    def test_point_mass_zero(self):
        probs = np.zeros(4)
        probs[2] = 1.0
        assert shannon_entropy(probs) == 0.0

    def test_zero_log_zero_convention(self):
        assert shannon_entropy(np.array([0.5, 0.5, 0.0])) == pytest.approx(1.0)

    def test_normalizes_input(self):
        assert shannon_entropy(np.array([2.0, 2.0])) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.array([0.5, -0.1]))

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            shannon_entropy(np.zeros(3))


class TestBinaryEntropy:
    def test_fair_coin(self):
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_endpoints(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0

    def test_symmetry(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.1)


class TestQuality:
    def test_definition2_sign(self, table1_belief):
        """Q(F) = -H(O) <= 0, equal iff certain."""
        assert quality(table1_belief) == pytest.approx(
            -observation_entropy(table1_belief)
        )
        assert quality(table1_belief) < 0

    def test_certainty_gives_zero(self, three_facts):
        certain = BeliefState.point_mass(three_facts, (True, False, True))
        assert quality(certain) == 0.0

    def test_uniform_is_worst(self, three_facts, table1_belief):
        uniform = BeliefState.uniform(three_facts)
        assert quality(uniform) <= quality(table1_belief)


class TestAnswerFamilyEntropy:
    def test_empty_query_zero(self, table1_belief, two_experts):
        assert answer_family_entropy(table1_belief, [], two_experts) == 0.0

    def test_definition4_direct_sum(self, table1_belief, two_experts):
        """H(AS) must equal -sum P(A) log P(A) over enumerated families."""
        from repro.core import enumerate_answer_families, family_probability

        fast = answer_family_entropy(table1_belief, [1, 2], two_experts)
        probabilities = np.array(
            [
                family_probability(table1_belief, family)
                for family in enumerate_answer_families([1, 2], two_experts)
            ]
        )
        assert fast == pytest.approx(shannon_entropy(probabilities))

    def test_grows_with_queries(self, table1_belief, two_experts):
        one = answer_family_entropy(table1_belief, [1], two_experts)
        two = answer_family_entropy(table1_belief, [1, 2], two_experts)
        assert two > one


class TestConditionalEntropy:
    @pytest.mark.parametrize("query", [[1], [2], [3], [1, 2], [1, 3], [1, 2, 3]])
    def test_identity_matches_naive(self, table1_belief, two_experts, query):
        """The chain-rule implementation equals the Eq. 34 double sum."""
        fast = conditional_entropy(table1_belief, query, two_experts)
        naive = conditional_entropy_naive(table1_belief, query, two_experts)
        assert fast == pytest.approx(naive, abs=1e-9)

    def test_empty_query_returns_prior(self, table1_belief, two_experts):
        assert conditional_entropy(
            table1_belief, [], two_experts
        ) == pytest.approx(observation_entropy(table1_belief))

    def test_information_never_hurts(self, table1_belief, two_experts):
        """H(O|AS) <= H(O) for every query set."""
        prior = observation_entropy(table1_belief)
        for query in ([1], [2], [1, 3], [1, 2, 3]):
            assert conditional_entropy(
                table1_belief, query, two_experts
            ) <= prior + 1e-12

    def test_monotone_in_queries(self, table1_belief, two_experts):
        """Adding queries cannot increase the conditional entropy."""
        h1 = conditional_entropy(table1_belief, [1], two_experts)
        h12 = conditional_entropy(table1_belief, [1, 2], two_experts)
        h123 = conditional_entropy(table1_belief, [1, 2, 3], two_experts)
        assert h12 <= h1 + 1e-12
        assert h123 <= h12 + 1e-12

    def test_useless_worker_gives_no_information(self, table1_belief):
        coin_flipper = Crowd.from_accuracies([0.5])
        prior = observation_entropy(table1_belief)
        assert conditional_entropy(
            table1_belief, [1, 2, 3], coin_flipper
        ) == pytest.approx(prior, abs=1e-9)

    def test_perfect_workers_resolve_queried_facts(self, table1_belief):
        oracle = Crowd.from_accuracies([1.0])
        residual = conditional_entropy(table1_belief, [1, 2, 3], oracle)
        assert residual == pytest.approx(0.0, abs=1e-9)

    def test_more_accurate_worker_learns_more(self, table1_belief):
        weak = conditional_entropy(
            table1_belief, [1], Crowd.from_accuracies([0.6])
        )
        strong = conditional_entropy(
            table1_belief, [1], Crowd.from_accuracies([0.95])
        )
        assert strong < weak

    def test_two_workers_beat_one(self, table1_belief):
        one = conditional_entropy(
            table1_belief, [1], Crowd.from_accuracies([0.8])
        )
        two = conditional_entropy(
            table1_belief, [1], Crowd.from_accuracies([0.8, 0.8])
        )
        assert two < one

    def test_prior_entropy_shortcut(self, table1_belief, two_experts):
        prior = observation_entropy(table1_belief)
        with_hint = conditional_entropy(
            table1_belief, [1, 2], two_experts, prior_entropy=prior
        )
        without = conditional_entropy(table1_belief, [1, 2], two_experts)
        assert with_hint == pytest.approx(without)


class TestExpectedQuality:
    def test_definition5_sign(self, table1_belief, two_experts):
        """Q(F|T) = -H(O|AS^T)."""
        assert expected_quality(
            table1_belief, [1, 2], two_experts
        ) == pytest.approx(
            -conditional_entropy(table1_belief, [1, 2], two_experts)
        )

    def test_theorem1_improvement_non_negative(
        self, table1_belief, two_experts
    ):
        """Theorem 1: dQ = H(O) - H(O|AS) = I(O; AS) >= 0."""
        for query in ([1], [2, 3], [1, 2, 3]):
            gain = expected_quality_improvement(
                table1_belief, query, two_experts
            )
            assert gain >= 0.0

    def test_improvement_is_mutual_information(
        self, table1_belief, two_experts
    ):
        """dQ = H(AS) - H(AS|O), the symmetric MI form (Eq. 31)."""
        query = [1, 3]
        family_entropy = answer_family_entropy(
            table1_belief, query, two_experts
        )
        entropy_given_o = len(query) * sum(
            binary_entropy(worker.accuracy) for worker in two_experts
        )
        gain = expected_quality_improvement(table1_belief, query, two_experts)
        assert gain == pytest.approx(
            family_entropy - entropy_given_o, abs=1e-9
        )

    def test_certain_belief_gains_nothing(self, three_facts, two_experts):
        certain = BeliefState.point_mass(three_facts, (True, True, False))
        assert expected_quality_improvement(
            certain, [1, 2, 3], two_experts
        ) == pytest.approx(0.0, abs=1e-9)
