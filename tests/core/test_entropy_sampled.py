"""Tests for the Monte Carlo conditional-entropy estimator."""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    DegenerateSamplesError,
    FactSet,
    conditional_entropy,
    conditional_entropy_sampled,
    observation_entropy,
)


@pytest.fixture
def belief():
    rng = np.random.default_rng(0)
    facts = FactSet.from_ids([0, 1, 2])
    return BeliefState(facts, rng.dirichlet(np.ones(8)))


class TestConditionalEntropySampled:
    def test_matches_exact_small_instance(self, belief, two_experts):
        exact = conditional_entropy(belief, [0, 2], two_experts)
        sampled = conditional_entropy_sampled(
            belief, [0, 2], two_experts, num_samples=6000, rng=1
        )
        assert sampled == pytest.approx(exact, abs=0.03)

    def test_matches_exact_single_query(self, belief, two_experts):
        exact = conditional_entropy(belief, [1], two_experts)
        sampled = conditional_entropy_sampled(
            belief, [1], two_experts, num_samples=6000, rng=2
        )
        assert sampled == pytest.approx(exact, abs=0.03)

    def test_empty_query_is_prior(self, belief, two_experts):
        assert conditional_entropy_sampled(
            belief, [], two_experts, rng=0
        ) == pytest.approx(observation_entropy(belief))

    def test_empty_crowd_is_prior(self, belief):
        assert conditional_entropy_sampled(
            belief, [0], Crowd([]), rng=0
        ) == pytest.approx(observation_entropy(belief))

    def test_works_beyond_enumeration_cap(self, belief):
        """30 experts x 2 queries = 60 family bits — far beyond exact
        enumeration; the estimator must return a sane value."""
        big_crowd = Crowd.from_accuracies([0.9] * 30)
        value = conditional_entropy_sampled(
            belief, [0, 1], big_crowd, num_samples=500, rng=3
        )
        assert 0.0 <= value <= observation_entropy(belief) + 1e-9
        # 30 strong experts nearly resolve the queried facts.
        assert value < 1.5

    def test_information_never_hurts_in_estimate(self, belief):
        experts = Crowd.from_accuracies([0.85, 0.9, 0.95])
        prior = observation_entropy(belief)
        value = conditional_entropy_sampled(
            belief, [0, 1, 2], experts, num_samples=3000, rng=4
        )
        # MC noise allowance on top of the information inequality.
        assert value <= prior + 0.05

    def test_seeded_reproducibility(self, belief, two_experts):
        a = conditional_entropy_sampled(
            belief, [0], two_experts, num_samples=200, rng=7
        )
        b = conditional_entropy_sampled(
            belief, [0], two_experts, num_samples=200, rng=7
        )
        assert a == b

    def test_invalid_samples(self, belief, two_experts):
        with pytest.raises(ValueError):
            conditional_entropy_sampled(
                belief, [0], two_experts, num_samples=0
            )

    def test_all_degenerate_samples_raise(self, belief):
        """A 2200-coin-flipper panel drives every family likelihood to
        ``0.5**2200`` — below the float64 floor — so every sample has
        zero posterior mass.  The estimator must refuse rather than
        return the old silent 0.0 ("perfect certainty")."""
        coin_flippers = Crowd.from_accuracies([0.5] * 2200)
        with pytest.raises(DegenerateSamplesError):
            conditional_entropy_sampled(
                belief, [0], coin_flippers, num_samples=50, rng=0
            )

    def test_partial_degeneracy_averages_over_retained(self):
        """Dividing by ``num_samples`` while skipping zero-mass samples
        biased the estimate toward 0 (overstating information gain).

        Construction: two independent uniform facts, query only fact 0
        with 1300 workers of accuracy 0.25.  For every sample the
        likelihood of the *wrong* fact-0 value underflows to exactly 0,
        so a retained sample's posterior is exactly (1/2, 1/2) over the
        unqueried fact — entropy exactly 1 bit.  The likelihood of the
        *correct* value sits right at the float64 floor, so with this
        seed a fifth of the samples underflow everywhere (degenerate).
        Averaging over retained samples gives exactly 1.0; the old
        divide-by-``num_samples`` gave the retained fraction (~0.79).
        """
        belief = BeliefState(
            FactSet.from_ids([0, 1]), np.full(4, 0.25)
        )
        crowd = Crowd.from_accuracies([0.25] * 1300)
        value = conditional_entropy_sampled(
            belief, [0], crowd, num_samples=300, rng=5
        )
        assert value == pytest.approx(1.0, abs=1e-12)

    def test_precision_improves_with_samples(self, belief, two_experts):
        exact = conditional_entropy(belief, [0, 1], two_experts)
        coarse_errors = []
        fine_errors = []
        for seed in range(5):
            coarse_errors.append(
                abs(
                    conditional_entropy_sampled(
                        belief, [0, 1], two_experts,
                        num_samples=100, rng=seed,
                    )
                    - exact
                )
            )
            fine_errors.append(
                abs(
                    conditional_entropy_sampled(
                        belief, [0, 1], two_experts,
                        num_samples=5000, rng=seed,
                    )
                    - exact
                )
            )
        assert np.mean(fine_errors) < np.mean(coarse_errors)
