"""Unit tests for repro.core.selection (Algorithm 2 and baselines)."""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    ExactSelector,
    FactSet,
    FactoredBelief,
    FactoredExactSelector,
    GreedySelector,
    MaxMarginalEntropySelector,
    RandomSelector,
    SelectionTimeout,
    conditional_entropy,
)


def _objective(belief: FactoredBelief, experts: Crowd, subset) -> float:
    """Total H(O|AS^T) over all groups for a global query subset."""
    per_group: dict[int, list[int]] = {}
    for fact_id in subset:
        per_group.setdefault(belief.group_index_of(fact_id), []).append(
            fact_id
        )
    total = 0.0
    for group_index, state in enumerate(belief):
        queries = per_group.get(group_index, [])
        total += conditional_entropy(state, queries, experts)
    return total


def _two_group_belief() -> FactoredBelief:
    rng = np.random.default_rng(5)
    groups = []
    for start in (0, 3):
        facts = FactSet.from_ids(range(start, start + 3))
        weights = rng.dirichlet(np.ones(8))
        groups.append(BeliefState(facts, weights))
    return FactoredBelief(groups)


class TestGreedySelector:
    def test_selects_k(self, factored_table1, two_experts):
        selected = GreedySelector().select(factored_table1, two_experts, 2)
        assert len(selected) == 2
        assert len(set(selected)) == 2

    def test_k_zero(self, factored_table1, two_experts):
        assert GreedySelector().select(factored_table1, two_experts, 0) == []

    def test_negative_k_rejected(self, factored_table1, two_experts):
        with pytest.raises(ValueError):
            GreedySelector().select(factored_table1, two_experts, -1)

    def test_k_exceeding_facts_capped(self, factored_table1, two_experts):
        selected = GreedySelector().select(factored_table1, two_experts, 99)
        assert len(selected) <= 3

    def test_first_pick_is_best_single(self, factored_table1, two_experts):
        """Greedy's first pick must be the argmax single-fact gain."""
        selected = GreedySelector().select(factored_table1, two_experts, 1)
        best = min(
            (1, 2, 3),
            key=lambda f: conditional_entropy(
                factored_table1[0], [f], two_experts
            ),
        )
        assert selected == [best]

    def test_stops_on_zero_gain(self, three_facts):
        """Algorithm 2 line 4: certain beliefs offer no positive gain."""
        certain = BeliefState.point_mass(three_facts, (True, False, True))
        belief = FactoredBelief([certain])
        experts = Crowd.from_accuracies([0.9])
        assert GreedySelector().select(belief, experts, 3) == []

    def test_skips_certain_group(self, two_experts):
        certain = BeliefState.point_mass(
            FactSet.from_ids([0, 1]), (True, False)
        )
        uncertain = BeliefState.uniform(FactSet.from_ids([2, 3]))
        belief = FactoredBelief([certain, uncertain])
        selected = GreedySelector().select(belief, two_experts, 2)
        assert set(selected) <= {2, 3}

    def test_cache_does_not_change_result(self, two_experts):
        """A reused selector (warm cache) must pick the same facts as a
        fresh one."""
        belief = _two_group_belief()
        warm = GreedySelector()
        first = warm.select(belief, two_experts, 2)
        again = warm.select(belief, two_experts, 2)
        fresh = GreedySelector().select(belief, two_experts, 2)
        assert first == again == fresh

    def test_cache_invalidated_on_group_update(self, two_experts):
        belief = _two_group_belief()
        selector = GreedySelector()
        selector.select(belief, two_experts, 1)
        # Resolve group 0 completely; the selector must now avoid it.
        certain = BeliefState.point_mass(
            belief[0].facts, (True, True, True)
        )
        belief.replace_group(0, certain)
        selected = selector.select(belief, two_experts, 2)
        assert all(belief.group_index_of(f) == 1 for f in selected)

    def test_spreads_across_correlated_groups(self, two_experts):
        """With identical groups of strongly *correlated* facts, the
        first check already resolves most of a group, so the submodular
        gains push the greedy to spread queries across groups."""

        def coupled_group(fact_ids):
            # Both facts equal with probability 0.95, marginal 0.5.
            facts = FactSet.from_ids(fact_ids)
            return BeliefState.from_mapping(
                facts,
                {
                    (True, True): 0.475,
                    (False, False): 0.475,
                    (True, False): 0.025,
                    (False, True): 0.025,
                },
            )

        belief = FactoredBelief([coupled_group([0, 1]), coupled_group([2, 3])])
        selected = GreedySelector().select(belief, two_experts, 2)
        touched = {belief.group_index_of(f) for f in selected}
        assert len(touched) == 2


class TestFamilySpaceGuard:
    def test_greedy_spreads_when_stacking_is_unenumerable(self):
        """With a huge expert crowd, two queries in one group exceed the
        family-space cap; the greedy must skip those candidates and
        spread across groups instead of crashing."""
        big_crowd = Crowd.from_accuracies([0.9] * 16)
        belief = _two_group_belief()
        selected = GreedySelector().select(belief, big_crowd, 2)
        assert len(selected) == 2
        touched = {belief.group_index_of(f) for f in selected}
        assert len(touched) == 2

    def test_exact_skips_unenumerable_subsets(self):
        big_crowd = Crowd.from_accuracies([0.9] * 16)
        belief = _two_group_belief()
        selected = ExactSelector().select(belief, big_crowd, 2)
        touched = {belief.group_index_of(f) for f in selected}
        assert len(touched) == 2


class TestExactSelector:
    def test_optimal_on_table1(self, factored_table1, two_experts):
        """OPT's choice must reach the minimum objective over all pairs."""
        import itertools

        selected = ExactSelector().select(factored_table1, two_experts, 2)
        best = min(
            _objective(factored_table1, two_experts, subset)
            for subset in itertools.combinations((1, 2, 3), 2)
        )
        assert _objective(
            factored_table1, two_experts, selected
        ) == pytest.approx(best)

    def test_greedy_never_beats_opt(self, two_experts):
        belief = _two_group_belief()
        for k in (1, 2, 3):
            opt = ExactSelector().select(belief, two_experts, k)
            greedy = GreedySelector().select(belief, two_experts, k)
            assert _objective(belief, two_experts, opt) <= _objective(
                belief, two_experts, greedy
            ) + 1e-9

    def test_greedy_within_submodular_bound(self, two_experts):
        """The (1 - 1/e) guarantee on the gain (section III-C)."""
        belief = _two_group_belief()
        prior = _objective(belief, two_experts, [])
        for k in (1, 2, 3):
            opt_gain = prior - _objective(
                belief, two_experts,
                ExactSelector().select(belief, two_experts, k),
            )
            greedy_gain = prior - _objective(
                belief, two_experts,
                GreedySelector().select(belief, two_experts, k),
            )
            assert greedy_gain >= (1 - 1 / np.e) * opt_gain - 1e-9

    def test_max_subsets_guard(self, two_experts):
        belief = _two_group_belief()
        with pytest.raises(RuntimeError, match="enumerate"):
            ExactSelector(max_subsets=2).select(belief, two_experts, 3)

    def test_timeout_raises(self, two_experts):
        belief = _two_group_belief()
        with pytest.raises(SelectionTimeout):
            ExactSelector(deadline_seconds=0.0).select(
                belief, two_experts, 3
            )

    def test_k_zero(self, factored_table1, two_experts):
        assert ExactSelector().select(factored_table1, two_experts, 0) == []


class TestFactoredExactSelector:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_matches_brute_force_objective(self, two_experts, k):
        belief = _two_group_belief()
        brute = ExactSelector().select(belief, two_experts, k)
        dp = FactoredExactSelector().select(belief, two_experts, k)
        assert _objective(belief, two_experts, dp) == pytest.approx(
            _objective(belief, two_experts, brute), abs=1e-9
        )

    def test_certain_belief_selects_nothing(self, two_experts):
        certain = BeliefState.point_mass(
            FactSet.from_ids([0, 1]), (True, True)
        )
        belief = FactoredBelief([certain])
        assert FactoredExactSelector().select(belief, two_experts, 2) == []

    def test_k_zero(self, factored_table1, two_experts):
        assert (
            FactoredExactSelector().select(factored_table1, two_experts, 0)
            == []
        )


class TestRandomSelector:
    def test_size_and_uniqueness(self, two_experts):
        belief = _two_group_belief()
        selected = RandomSelector(rng=1).select(belief, two_experts, 4)
        assert len(selected) == 4
        assert len(set(selected)) == 4
        assert set(selected) <= set(belief.fact_ids)

    def test_seeded_reproducibility(self, two_experts):
        belief = _two_group_belief()
        a = RandomSelector(rng=7).select(belief, two_experts, 3)
        b = RandomSelector(rng=7).select(belief, two_experts, 3)
        assert a == b

    def test_k_capped_at_num_facts(self, factored_table1, two_experts):
        selected = RandomSelector(rng=0).select(
            factored_table1, two_experts, 10
        )
        assert sorted(selected) == [1, 2, 3]


class TestMaxMarginalEntropySelector:
    def test_prefers_most_uncertain_marginal(self, two_experts):
        belief = FactoredBelief(
            [
                BeliefState.from_marginals(
                    FactSet.from_ids([0, 1, 2]), [0.95, 0.5, 0.8]
                )
            ]
        )
        selected = MaxMarginalEntropySelector().select(
            belief, two_experts, 1
        )
        assert selected == [1]

    def test_order_is_entropy_descending(self, two_experts):
        belief = FactoredBelief(
            [
                BeliefState.from_marginals(
                    FactSet.from_ids([0, 1, 2]), [0.9, 0.55, 0.7]
                )
            ]
        )
        selected = MaxMarginalEntropySelector().select(
            belief, two_experts, 3
        )
        assert selected == [1, 2, 0]

    def test_single_query_special_case_matches_greedy(self, single_expert):
        """For k=1 and one worker the trivial max-marginal-entropy rule
        is optimal (the [41] special case the paper discusses): both
        selectors must agree."""
        belief = FactoredBelief(
            [
                BeliefState.from_marginals(
                    FactSet.from_ids([0, 1, 2]), [0.9, 0.52, 0.7]
                )
            ]
        )
        marginal_pick = MaxMarginalEntropySelector().select(
            belief, single_expert, 1
        )
        greedy_pick = GreedySelector().select(belief, single_expert, 1)
        assert marginal_pick == greedy_pick == [1]

    def test_ignores_correlations_unlike_greedy(self, single_expert):
        """At k=2 the marginal rule wastes its second query on a fact
        coupled to the first, while the greedy accounts for the reduced
        conditional gain and diversifies."""
        facts = FactSet.from_ids([0, 1, 2])
        # f1 == f2 always (marginal 0.5 each); f0 independent, P=0.45.
        table = {
            (True, True, True): 0.45 * 0.5,
            (True, False, False): 0.45 * 0.5,
            (False, True, True): 0.55 * 0.5,
            (False, False, False): 0.55 * 0.5,
        }
        belief = FactoredBelief([BeliefState.from_mapping(facts, table)])
        marginal_pick = set(
            MaxMarginalEntropySelector().select(belief, single_expert, 2)
        )
        greedy_pick = set(GreedySelector().select(belief, single_expert, 2))
        assert marginal_pick == {1, 2}
        assert 0 in greedy_pick
