"""Tests for the CELF lazy-greedy selector and the batch gain kernel.

The lazy selector's contract is *exact equivalence* with the eager
``GreedySelector`` (same gain function, same stop rule, same
tie-breaking) at a fraction of the entropy-evaluation cost; these tests
pin both halves of that contract, plus the cross-round cache behaviour
(identity keying, evict-on-write, explicit invalidation).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    LazyGreedySelector,
    conditional_entropy,
    first_step_gains,
    observation_entropy,
    update_with_answer_set,
    AnswerSet,
)


def _random_belief(
    seed: int, num_groups: int = 4, group_size: int = 3
) -> FactoredBelief:
    rng = np.random.default_rng(seed)
    groups = []
    for index in range(num_groups):
        start = index * group_size
        facts = FactSet.from_ids(range(start, start + group_size))
        groups.append(
            BeliefState(facts, rng.dirichlet(np.ones(2 ** group_size)))
        )
    return FactoredBelief(groups)


class TestBatchGainKernel:
    """``first_step_gains`` must match the scalar path exactly."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_gains(self, seed):
        rng = np.random.default_rng(seed)
        num_facts = int(rng.integers(1, 5))
        state = BeliefState(
            FactSet.from_ids(range(num_facts)),
            rng.dirichlet(np.ones(2 ** num_facts)),
        )
        experts = Crowd.from_accuracies(
            rng.uniform(0.5, 0.99, size=int(rng.integers(1, 4))).tolist()
        )
        prior = observation_entropy(state)
        batched = first_step_gains(state, experts, prior_entropy=prior)
        for position, fact in enumerate(state.facts):
            scalar = prior - conditional_entropy(
                state, [fact.fact_id], experts, prior_entropy=prior
            )
            assert batched[position] == pytest.approx(scalar, abs=1e-10)

    def test_empty_crowd_is_all_zero(self):
        state = BeliefState.uniform(FactSet.from_ids([0, 1]))
        assert first_step_gains(state, Crowd([])).tolist() == [0.0, 0.0]


class TestLazyEagerEquivalence:
    """The tentpole guarantee: identical selections, fewer evaluations."""

    @given(
        seed=st.integers(0, 10_000),
        num_groups=st.integers(1, 5),
        group_size=st.integers(1, 3),
        k=st.integers(0, 6),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_selections(self, seed, num_groups, group_size, k):
        rng = np.random.default_rng(seed)
        belief = _random_belief(
            seed, num_groups=num_groups, group_size=group_size
        )
        experts = Crowd.from_accuracies(
            rng.uniform(0.5, 0.99, size=int(rng.integers(1, 4))).tolist()
        )
        eager = GreedySelector().select(belief, experts, k)
        lazy = LazyGreedySelector().select(belief, experts, k)
        assert lazy == eager

    def test_identical_selections_across_rounds(self):
        """Equivalence must survive belief updates and cache reuse."""
        eager, lazy = GreedySelector(), LazyGreedySelector()
        belief_a = _random_belief(1)
        belief_b = _random_belief(2)
        experts = Crowd.from_accuracies([0.8, 0.9])
        for belief in (belief_a, belief_b, belief_a):
            for k in (1, 3, 5):
                assert lazy.select(belief, experts, k) == eager.select(
                    belief, experts, k
                )

    def test_lazy_needs_fewer_evaluations(self):
        """At 20 groups x 4 facts, k=5, the eager greedy pays O(N k)
        scalar kernels; the lazy one pays one batch kernel per group
        plus a handful of re-evaluations."""
        belief = _random_belief(7, num_groups=20, group_size=4)
        experts = Crowd.from_accuracies([0.8, 0.9])
        eager, lazy = GreedySelector(), LazyGreedySelector()
        assert lazy.select(belief, experts, 5) == eager.select(
            belief, experts, 5
        )
        assert lazy.stats.total_evaluations < eager.stats.total_evaluations
        # The first-step gains never go through the scalar kernel at all.
        assert lazy.stats.batch_evaluations == 20
        assert lazy.stats.batch_facts == 80
        assert lazy.stats.entropy_evaluations < 20
        # Eager evaluates ~every candidate every iteration.
        assert eager.stats.entropy_evaluations >= 80

    def test_cache_makes_repeat_rounds_free(self):
        """Same belief, next round: zero new kernel evaluations."""
        belief = _random_belief(3)
        experts = Crowd.from_accuracies([0.85, 0.9])
        lazy = LazyGreedySelector()
        first = lazy.select(belief, experts, 2)
        evaluations = lazy.stats.total_evaluations
        assert lazy.select(belief, experts, 2) == first
        assert lazy.stats.batch_evaluations == len(belief)
        assert lazy.stats.total_evaluations == evaluations

    def test_infeasible_stacking_matches_eager(self):
        """8 checkers x 3 stacked queries = 24 family bits > the cap:
        both selectors must spread across groups identically instead of
        dying on FamilySpaceTooLarge."""
        belief = _random_belief(11, num_groups=3, group_size=4)
        experts = Crowd.from_accuracies([0.8] * 8)
        eager = GreedySelector().select(belief, experts, 9)
        lazy = LazyGreedySelector().select(belief, experts, 9)
        assert lazy == eager
        # Feasibility cap binds: nobody stacks 3+ queries on one group.
        groups = [fact_id // 4 for fact_id in lazy]
        assert max(groups.count(g) for g in set(groups)) == 2

    def test_k_zero_empty_crowd_and_validation(self):
        belief = _random_belief(0)
        experts = Crowd.from_accuracies([0.9])
        lazy = LazyGreedySelector()
        assert lazy.select(belief, experts, 0) == []
        assert lazy.select(belief, Crowd([]), 3) == []
        with pytest.raises(ValueError):
            lazy.select(belief, experts, -1)

    def test_certain_belief_selects_nothing(self):
        certain = FactoredBelief(
            [BeliefState.point_mass(FactSet.from_ids([0, 1]), (True, False))]
        )
        experts = Crowd.from_accuracies([0.9, 0.95])
        assert LazyGreedySelector().select(certain, experts, 2) == []


def _updated(belief: FactoredBelief, fact_id: int, seed: int) -> None:
    """Apply a fresh expert answer to ``fact_id``'s group in place."""
    rng = np.random.default_rng(seed)
    group_index = belief.group_index_of(fact_id)
    state = belief[group_index]
    worker = Crowd.from_accuracies([0.9], prefix="e")[0]
    answer_set = AnswerSet(
        worker=worker, answers={fact_id: bool(rng.integers(2))}
    )
    belief.replace_group(group_index, update_with_answer_set(state, answer_set))


class TestCacheRetention:
    """Memory stays bounded by the *current* belief across rounds."""

    @pytest.mark.parametrize(
        "selector_factory", [GreedySelector, LazyGreedySelector]
    )
    def test_cache_bounded_across_many_rounds(self, selector_factory):
        belief = _random_belief(5, num_groups=4, group_size=3)
        experts = Crowd.from_accuracies([0.85, 0.9])
        selector = selector_factory()
        sizes = []
        for round_index in range(30):
            selected = selector.select(belief, experts, 2)
            for fact_id in selected:
                _updated(belief, fact_id, seed=round_index)
            selector.invalidate_groups(
                {belief.group_index_of(fact_id) for fact_id in selected}
            )
            sizes.append(selector.cache_entries)
        # Superseded states are evicted, so the entry count plateaus
        # instead of growing linearly with rounds.
        assert max(sizes) == max(sizes[:4])

    @pytest.mark.parametrize(
        "selector_factory", [GreedySelector, LazyGreedySelector]
    )
    def test_eviction_without_explicit_invalidation(self, selector_factory):
        """Identity keying alone (no invalidate_groups call) must also
        evict superseded per-group entries on the next write."""
        belief = _random_belief(6, num_groups=3, group_size=3)
        experts = Crowd.from_accuracies([0.85, 0.9])
        selector = selector_factory()
        sizes = []
        for round_index in range(20):
            selected = selector.select(belief, experts, 2)
            for fact_id in selected:
                _updated(belief, fact_id, seed=100 + round_index)
            sizes.append(selector.cache_entries)
        # Without eviction the count grows by a few entries every round;
        # with it, the count plateaus within the first few rounds at a
        # level bounded by the current belief (priors + per-fact gains +
        # per-group query-set entries).
        assert max(sizes) == max(sizes[:8])
        groups, facts = 3, 9
        assert max(sizes) <= groups + facts + groups * 2 ** 3

    @pytest.mark.parametrize(
        "selector_factory", [GreedySelector, LazyGreedySelector]
    )
    def test_crowd_change_invalidates_cached_gains(self, selector_factory):
        """A cross-round cache must not serve gains computed for a
        different expert crowd (trust supervision shrinks the panel
        mid-campaign).  Same belief, weaker crowd -> same answer as a
        fresh selector, not the cached strong-crowd answer."""
        belief = _random_belief(9, num_groups=3, group_size=3)
        strong = Crowd.from_accuracies([0.95, 0.99])
        weak = Crowd.from_accuracies([0.55])
        selector = selector_factory()
        selector.select(belief, strong, 3)
        assert selector.select(belief, weak, 3) == selector_factory().select(
            belief, weak, 3
        )
        # Degenerate shrinkage: an emptied panel yields no selection.
        assert selector.select(belief, Crowd([]), 3) == []

    def test_invalidate_groups_releases_entries(self):
        belief = _random_belief(8, num_groups=3, group_size=3)
        experts = Crowd.from_accuracies([0.9])
        lazy = LazyGreedySelector()
        lazy.select(belief, experts, 3)
        populated = lazy.cache_entries
        assert populated > 0
        lazy.invalidate_groups(range(len(belief)))
        assert lazy.cache_entries == 0
        # And the next round simply recomputes.
        assert lazy.select(belief, experts, 3) == LazyGreedySelector().select(
            belief, experts, 3
        )
