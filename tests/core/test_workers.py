"""Unit tests for repro.core.workers."""

import numpy as np
import pytest

from repro.core import Crowd, Worker, estimate_accuracy


class TestWorker:
    def test_fields(self):
        worker = Worker(worker_id="w1", accuracy=0.8)
        assert worker.worker_id == "w1"
        assert worker.accuracy == 0.8

    def test_accuracy_out_of_range(self):
        with pytest.raises(ValueError, match="accuracy"):
            Worker(worker_id="w", accuracy=1.5)
        with pytest.raises(ValueError, match="accuracy"):
            Worker(worker_id="w", accuracy=-0.1)

    def test_is_usable_threshold(self):
        assert Worker("a", 0.5).is_usable
        assert Worker("b", 0.9).is_usable
        assert not Worker("c", 0.49).is_usable

    def test_frozen(self):
        worker = Worker("w", 0.7)
        with pytest.raises(AttributeError):
            worker.accuracy = 0.9


class TestCrowd:
    def test_from_accuracies_names(self):
        crowd = Crowd.from_accuracies([0.6, 0.7])
        assert crowd.worker_ids == ("w0", "w1")

    def test_from_accuracies_prefix(self):
        crowd = Crowd.from_accuracies([0.6], prefix="expert")
        assert crowd.worker_ids == ("expert0",)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Crowd([Worker("a", 0.6), Worker("a", 0.7)])

    def test_len_iter_getitem(self):
        crowd = Crowd.from_accuracies([0.6, 0.7, 0.8])
        assert len(crowd) == 3
        assert crowd[1].accuracy == 0.7
        assert [w.accuracy for w in crowd] == [0.6, 0.7, 0.8]

    def test_contains(self):
        crowd = Crowd.from_accuracies([0.6])
        assert "w0" in crowd
        assert Worker("w0", 0.6) in crowd
        assert "w9" not in crowd
        assert 42 not in crowd

    def test_by_id(self):
        crowd = Crowd.from_accuracies([0.6, 0.9])
        assert crowd.by_id("w1").accuracy == 0.9

    def test_accuracies_array(self):
        crowd = Crowd.from_accuracies([0.6, 0.9])
        assert np.allclose(crowd.accuracies, [0.6, 0.9])

    def test_usable_filters_below_half(self):
        crowd = Crowd.from_accuracies([0.4, 0.5, 0.9])
        usable = crowd.usable()
        assert [w.accuracy for w in usable] == [0.5, 0.9]

    def test_split_paper_equation1(self):
        """Paper Eq. 1: CE = workers with Pr >= theta, CP = rest."""
        crowd = Crowd.from_accuracies([0.6, 0.85, 0.9, 0.95])
        experts, preliminary = crowd.split(0.9)
        assert [w.accuracy for w in experts] == [0.9, 0.95]
        assert [w.accuracy for w in preliminary] == [0.6, 0.85]

    def test_split_boundary_inclusive(self):
        crowd = Crowd.from_accuracies([0.9])
        experts, preliminary = crowd.split(0.9)
        assert len(experts) == 1
        assert len(preliminary) == 0

    def test_split_theta_out_of_range(self):
        with pytest.raises(ValueError, match="theta"):
            Crowd.from_accuracies([0.6]).split(1.2)

    def test_split_partitions(self):
        crowd = Crowd.from_accuracies(
            np.linspace(0.5, 0.99, 20).tolist()
        )
        experts, preliminary = crowd.split(0.8)
        assert len(experts) + len(preliminary) == len(crowd)
        assert all(w.accuracy >= 0.8 for w in experts)
        assert all(w.accuracy < 0.8 for w in preliminary)

    def test_equality(self):
        assert Crowd.from_accuracies([0.6]) == Crowd.from_accuracies([0.6])
        assert Crowd.from_accuracies([0.6]) != Crowd.from_accuracies([0.7])


class TestEstimateAccuracy:
    def test_perfect_answers_smoothed(self):
        estimate = estimate_accuracy(
            [True, True, True], [True, True, True]
        )
        assert 0.5 < estimate < 1.0

    def test_all_wrong_smoothed(self):
        estimate = estimate_accuracy(
            [True] * 4, [False] * 4
        )
        assert 0.0 < estimate < 0.5

    def test_empty_returns_half(self):
        assert estimate_accuracy([], []) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            estimate_accuracy([True], [True, False])

    def test_no_smoothing_exact_fraction(self):
        estimate = estimate_accuracy(
            [True, False, True, True],
            [True, True, True, True],
            smoothing=0.0,
        )
        assert estimate == pytest.approx(0.75)

    def test_converges_to_true_accuracy(self, rng):
        truth = rng.random(5000) < 0.5
        correct = rng.random(5000) < 0.8
        answers = np.where(correct, truth, ~truth)
        estimate = estimate_accuracy(answers.tolist(), truth.tolist())
        assert estimate == pytest.approx(0.8, abs=0.03)
