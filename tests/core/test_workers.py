"""Unit tests for repro.core.workers."""

import numpy as np
import pytest

from repro.core import Crowd, Worker, estimate_accuracy


class TestWorker:
    def test_fields(self):
        worker = Worker(worker_id="w1", accuracy=0.8)
        assert worker.worker_id == "w1"
        assert worker.accuracy == 0.8

    def test_accuracy_out_of_range(self):
        with pytest.raises(ValueError, match="accuracy"):
            Worker(worker_id="w", accuracy=1.5)
        with pytest.raises(ValueError, match="accuracy"):
            Worker(worker_id="w", accuracy=-0.1)

    def test_is_usable_threshold(self):
        assert Worker("a", 0.5).is_usable
        assert Worker("b", 0.9).is_usable
        assert not Worker("c", 0.49).is_usable

    def test_frozen(self):
        worker = Worker("w", 0.7)
        with pytest.raises(AttributeError):
            worker.accuracy = 0.9


class TestCrowd:
    def test_from_accuracies_names(self):
        crowd = Crowd.from_accuracies([0.6, 0.7])
        assert crowd.worker_ids == ("w0", "w1")

    def test_from_accuracies_prefix(self):
        crowd = Crowd.from_accuracies([0.6], prefix="expert")
        assert crowd.worker_ids == ("expert0",)

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Crowd([Worker("a", 0.6), Worker("a", 0.7)])

    def test_len_iter_getitem(self):
        crowd = Crowd.from_accuracies([0.6, 0.7, 0.8])
        assert len(crowd) == 3
        assert crowd[1].accuracy == 0.7
        assert [w.accuracy for w in crowd] == [0.6, 0.7, 0.8]

    def test_contains(self):
        crowd = Crowd.from_accuracies([0.6])
        assert "w0" in crowd
        assert Worker("w0", 0.6) in crowd
        assert "w9" not in crowd
        assert 42 not in crowd

    def test_by_id(self):
        crowd = Crowd.from_accuracies([0.6, 0.9])
        assert crowd.by_id("w1").accuracy == 0.9

    def test_accuracies_array(self):
        crowd = Crowd.from_accuracies([0.6, 0.9])
        assert np.allclose(crowd.accuracies, [0.6, 0.9])

    def test_usable_filters_below_half(self):
        crowd = Crowd.from_accuracies([0.4, 0.5, 0.9])
        usable = crowd.usable()
        assert [w.accuracy for w in usable] == [0.5, 0.9]

    def test_split_paper_equation1(self):
        """Paper Eq. 1: CE = workers with Pr >= theta, CP = rest."""
        crowd = Crowd.from_accuracies([0.6, 0.85, 0.9, 0.95])
        experts, preliminary = crowd.split(0.9)
        assert [w.accuracy for w in experts] == [0.9, 0.95]
        assert [w.accuracy for w in preliminary] == [0.6, 0.85]

    def test_split_boundary_inclusive(self):
        crowd = Crowd.from_accuracies([0.9])
        experts, preliminary = crowd.split(0.9)
        assert len(experts) == 1
        assert len(preliminary) == 0

    def test_split_theta_out_of_range(self):
        with pytest.raises(ValueError, match="theta"):
            Crowd.from_accuracies([0.6]).split(1.2)

    def test_split_partitions(self):
        crowd = Crowd.from_accuracies(
            np.linspace(0.5, 0.99, 20).tolist()
        )
        experts, preliminary = crowd.split(0.8)
        assert len(experts) + len(preliminary) == len(crowd)
        assert all(w.accuracy >= 0.8 for w in experts)
        assert all(w.accuracy < 0.8 for w in preliminary)

    def test_equality(self):
        assert Crowd.from_accuracies([0.6]) == Crowd.from_accuracies([0.6])
        assert Crowd.from_accuracies([0.6]) != Crowd.from_accuracies([0.7])


class TestEstimateAccuracy:
    def test_perfect_answers_smoothed(self):
        estimate = estimate_accuracy(
            [True, True, True], [True, True, True]
        )
        assert 0.5 < estimate < 1.0

    def test_all_wrong_smoothed(self):
        estimate = estimate_accuracy(
            [True] * 4, [False] * 4
        )
        assert 0.0 < estimate < 0.5

    def test_empty_returns_half(self):
        assert estimate_accuracy([], []) == 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            estimate_accuracy([True], [True, False])

    def test_no_smoothing_exact_fraction(self):
        estimate = estimate_accuracy(
            [True, False, True, True],
            [True, True, True, True],
            smoothing=0.0,
        )
        assert estimate == pytest.approx(0.75)

    def test_converges_to_true_accuracy(self, rng):
        truth = rng.random(5000) < 0.5
        correct = rng.random(5000) < 0.8
        answers = np.where(correct, truth, ~truth)
        estimate = estimate_accuracy(answers.tolist(), truth.tolist())
        assert estimate == pytest.approx(0.8, abs=0.03)


class TestClampAccuracy:
    def test_passthrough_in_interior(self):
        from repro.core import clamp_accuracy

        assert clamp_accuracy(0.75) == 0.75

    def test_clamps_both_endpoints(self):
        from repro.core import ACCURACY_EPSILON, clamp_accuracy

        assert clamp_accuracy(0.0) == ACCURACY_EPSILON
        assert clamp_accuracy(1.0) == 1.0 - ACCURACY_EPSILON
        assert clamp_accuracy(-3.0) == ACCURACY_EPSILON
        assert clamp_accuracy(4.0) == 1.0 - ACCURACY_EPSILON

    def test_custom_epsilon(self):
        from repro.core import clamp_accuracy

        assert clamp_accuracy(1.0, epsilon=0.01) == 0.99

    @pytest.mark.parametrize("epsilon", [0.0, 0.5, -0.1, 1.0])
    def test_invalid_epsilon(self, epsilon):
        from repro.core import clamp_accuracy

        with pytest.raises(ValueError, match="epsilon"):
            clamp_accuracy(0.5, epsilon=epsilon)


class TestWorkerValidation:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf"), "0.9", None])
    def test_non_finite_or_non_numeric_rejected(self, bad):
        with pytest.raises((ValueError, TypeError)):
            Worker(worker_id="w", accuracy=bad)

    def test_endpoints_remain_legal_declarations(self):
        # declared accuracies of exactly 0/1 are the paper's
        # deterministic workers; only *estimates* get clamped
        assert Worker("perfect", 1.0).accuracy == 1.0
        assert Worker("inverter", 0.0).accuracy == 0.0

    def test_with_accuracy_keeps_id(self):
        worker = Worker("w", 0.9)
        swapped = worker.with_accuracy(0.6)
        assert swapped.worker_id == "w"
        assert swapped.accuracy == 0.6
        assert worker.accuracy == 0.9  # original untouched


class TestEstimateAccuracyClamping:
    def test_perfect_record_without_smoothing_is_clamped(self):
        from repro.core import ACCURACY_EPSILON

        estimate = estimate_accuracy(
            [True] * 6, [True] * 6, smoothing=0.0
        )
        assert estimate == 1.0 - ACCURACY_EPSILON

    def test_zero_record_without_smoothing_is_clamped(self):
        from repro.core import ACCURACY_EPSILON

        estimate = estimate_accuracy(
            [True] * 6, [False] * 6, smoothing=0.0
        )
        assert estimate == ACCURACY_EPSILON

    def test_negative_smoothing_rejected(self):
        with pytest.raises(ValueError, match="smoothing"):
            estimate_accuracy([True], [True], smoothing=-1.0)
