"""Unit tests for repro.core.answers (Lemmas 1 and 2)."""

import numpy as np
import pytest

from repro.core import (
    AnswerFamily,
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    FamilySpaceTooLarge,
    Worker,
    answer_set_likelihood,
    answer_set_probability,
    consistent_sets,
    enumerate_answer_families,
    family_distribution,
    family_likelihood,
    family_probability,
    log_answer_set_likelihood,
    log_family_likelihood,
    observation_index,
    pattern_marginal,
    worker_response_matrix,
)


@pytest.fixture
def worker() -> Worker:
    return Worker("w", 0.9)


class TestAnswerSet:
    def test_answers_copied(self, worker):
        source = {1: True}
        answer_set = AnswerSet(worker=worker, answers=source)
        source[1] = False
        assert answer_set.answer_for(1) is True

    def test_bits_order(self, worker):
        answer_set = AnswerSet(worker=worker, answers={1: True, 2: False})
        assert list(answer_set.bits([2, 1])) == [False, True]

    def test_query_fact_ids(self, worker):
        answer_set = AnswerSet(worker=worker, answers={3: True, 1: False})
        assert set(answer_set.query_fact_ids) == {1, 3}


class TestAnswerFamily:
    def test_mismatched_queries_rejected(self, worker):
        a = AnswerSet(worker=worker, answers={1: True})
        b = AnswerSet(worker=Worker("v", 0.8), answers={2: True})
        with pytest.raises(ValueError, match="same query set"):
            AnswerFamily(answer_sets=(a, b))

    def test_votes_for(self):
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=Worker("a", 0.9), answers={1: True}),
                AnswerSet(worker=Worker("b", 0.8), answers={1: False}),
            )
        )
        assert family.votes_for(1) == [True, False]

    def test_len_iter(self):
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=Worker("a", 0.9), answers={1: True}),
            )
        )
        assert len(family) == 1
        assert [a.worker.worker_id for a in family] == ["a"]


class TestConsistentSets:
    def test_paper_eq7_partition(self, table1_belief, worker):
        """T+ and T- partition the query set (paper Eq. 9)."""
        answer_set = AnswerSet(worker=worker, answers={1: True, 3: False})
        for state in range(8):
            consistent, inconsistent = consistent_sets(
                table1_belief, state, answer_set
            )
            assert consistent | inconsistent == {1, 3}
            assert consistent & inconsistent == set()

    def test_known_observation(self, table1_belief, worker):
        state = observation_index((True, True, False))
        answer_set = AnswerSet(worker=worker, answers={1: True, 3: True})
        consistent, inconsistent = consistent_sets(
            table1_belief, state, answer_set
        )
        assert consistent == {1}
        assert inconsistent == {3}


class TestAnswerSetLikelihood:
    def test_lemma1_values(self, table1_belief, worker):
        """P(A|o) = p^{|T+|} (1-p)^{|T-|} (Lemma 1, Eq. 6)."""
        answer_set = AnswerSet(worker=worker, answers={1: True, 2: False})
        likelihood = answer_set_likelihood(table1_belief, answer_set)
        for state in range(8):
            consistent, inconsistent = consistent_sets(
                table1_belief, state, answer_set
            )
            expected = 0.9 ** len(consistent) * 0.1 ** len(inconsistent)
            assert likelihood[state] == pytest.approx(expected)

    def test_empty_query_set(self, table1_belief, worker):
        answer_set = AnswerSet(worker=worker, answers={})
        assert np.allclose(
            answer_set_likelihood(table1_belief, answer_set), 1.0
        )

    def test_single_fact_probability_eq10(self, table1_belief, worker):
        """Paper Eq. 10: P(answer 'Yes' for f) = p*P(f) + (1-p)*P(~f)."""
        answer_set = AnswerSet(worker=worker, answers={1: True})
        probability = answer_set_probability(table1_belief, answer_set)
        marginal = table1_belief.marginal(1)
        assert probability == pytest.approx(
            0.9 * marginal + 0.1 * (1 - marginal)
        )

    def test_probabilities_sum_to_one_over_answers(
        self, table1_belief, worker
    ):
        total = 0.0
        for bits in range(4):
            answers = {1: bool(bits & 1), 2: bool(bits & 2)}
            answer_set = AnswerSet(worker=worker, answers=answers)
            total += answer_set_probability(table1_belief, answer_set)
        assert total == pytest.approx(1.0)


class TestFamilyLikelihood:
    def test_product_of_workers(self, table1_belief):
        a = AnswerSet(worker=Worker("a", 0.9), answers={1: True})
        b = AnswerSet(worker=Worker("b", 0.8), answers={1: True})
        family = AnswerFamily(answer_sets=(a, b))
        combined = family_likelihood(table1_belief, family)
        separate = answer_set_likelihood(
            table1_belief, a
        ) * answer_set_likelihood(table1_belief, b)
        assert np.allclose(combined, separate)

    def test_family_probabilities_sum_to_one(
        self, table1_belief, two_experts
    ):
        total = sum(
            family_probability(table1_belief, family)
            for family in enumerate_answer_families([1, 2], two_experts)
        )
        assert total == pytest.approx(1.0)


class TestWorkerResponseMatrix:
    def test_rows_sum_to_one(self):
        matrix = worker_response_matrix(3, 0.85)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_diagonal_is_full_agreement(self):
        matrix = worker_response_matrix(2, 0.9)
        assert np.allclose(np.diag(matrix), 0.81)

    def test_perfect_worker_identity(self):
        assert np.allclose(worker_response_matrix(2, 1.0), np.eye(4))

    def test_coin_flip_worker_uniform(self):
        assert np.allclose(worker_response_matrix(2, 0.5), 0.25)

    def test_invalid_accuracy(self):
        with pytest.raises(ValueError):
            worker_response_matrix(2, 1.5)


class TestPatternMarginal:
    def test_sums_to_one(self, table1_belief):
        marginal = pattern_marginal(table1_belief, [1, 3])
        assert marginal.sum() == pytest.approx(1.0)

    def test_single_fact_matches_marginal(self, table1_belief):
        marginal = pattern_marginal(table1_belief, [2])
        assert marginal[1] == pytest.approx(table1_belief.marginal(2))
        assert marginal[0] == pytest.approx(1 - table1_belief.marginal(2))

    def test_full_query_recovers_distribution(self, table1_belief):
        marginal = pattern_marginal(table1_belief, [1, 2, 3])
        assert np.allclose(marginal, table1_belief.probabilities)

    def test_empty_query(self, table1_belief):
        assert np.allclose(pattern_marginal(table1_belief, []), [1.0])


class TestFamilyDistribution:
    def test_matches_enumeration(self, table1_belief, two_experts):
        """The einsum enumeration must match the definitional one."""
        fast = np.sort(
            family_distribution(table1_belief, [1, 2], two_experts)
        )
        slow = np.sort(
            [
                family_probability(table1_belief, family)
                for family in enumerate_answer_families([1, 2], two_experts)
            ]
        )
        assert np.allclose(fast, slow)

    def test_sums_to_one(self, table1_belief, two_experts):
        distribution = family_distribution(
            table1_belief, [1, 2, 3], two_experts
        )
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution.size == 2 ** (3 * 2)

    def test_size_guard(self, table1_belief, two_experts):
        with pytest.raises(FamilySpaceTooLarge):
            family_distribution(
                table1_belief, [1, 2, 3], two_experts, max_family_bits=5
            )

    def test_empty_inputs(self, table1_belief):
        empty_crowd = Crowd([])
        assert np.allclose(
            family_distribution(table1_belief, [1], empty_crowd), [1.0]
        )
        two = Crowd.from_accuracies([0.9, 0.8])
        assert np.allclose(
            family_distribution(table1_belief, [], two), [1.0]
        )

    def test_many_workers(self, table1_belief):
        crowd = Crowd.from_accuracies([0.8] * 6)
        distribution = family_distribution(table1_belief, [1], crowd)
        assert distribution.size == 64
        assert distribution.sum() == pytest.approx(1.0)


class TestEnumerateAnswerFamilies:
    def test_count(self, two_experts):
        families = list(enumerate_answer_families([1, 2], two_experts))
        assert len(families) == 2 ** (2 * 2)

    def test_all_distinct(self, two_experts):
        seen = set()
        for family in enumerate_answer_families([1, 2], two_experts):
            key = tuple(
                (a.worker.worker_id, a.answer_for(1), a.answer_for(2))
                for a in family
            )
            seen.add(key)
        assert len(seen) == 16


class TestPartialAnswerFamily:
    def _make(self, answer_sets):
        from repro.core import PartialAnswerFamily

        return PartialAnswerFamily(
            intended_query_fact_ids=(1, 2),
            intended_worker_ids=("a", "b"),
            answer_sets=tuple(answer_sets),
        )

    def test_accessors(self):
        from repro.core import AnswerSet, Worker

        family = self._make(
            [
                AnswerSet(
                    worker=Worker("a", 0.9), answers={1: True, 2: False}
                ),
            ]
        )
        assert family.answered_worker_ids == ("a",)
        assert family.missing_worker_ids == ("b",)
        assert family.answered_fact_ids == (1, 2)
        assert family.num_answers == 2
        assert not family.is_empty
        assert not family.is_complete
        assert len(family) == 1

    def test_complete_family_converts_back(self):
        from repro.core import AnswerFamily, AnswerSet, Worker

        family = self._make(
            [
                AnswerSet(
                    worker=Worker(wid, 0.9), answers={1: True, 2: False}
                )
                for wid in ("a", "b")
            ]
        )
        assert family.is_complete
        assert isinstance(family.to_family(), AnswerFamily)

    def test_incomplete_family_refuses_conversion(self):
        from repro.core import AnswerSet, Worker

        family = self._make(
            [AnswerSet(worker=Worker("a", 0.9), answers={1: True})]
        )
        with pytest.raises(ValueError, match="complete"):
            family.to_family()

    def test_from_family_round_trip(self):
        from repro.core import (
            AnswerFamily,
            AnswerSet,
            PartialAnswerFamily,
            Worker,
        )

        full = AnswerFamily(
            answer_sets=tuple(
                AnswerSet(worker=Worker(wid, 0.9), answers={1: True})
                for wid in ("a", "b")
            )
        )
        partial = PartialAnswerFamily.from_family(full)
        assert partial.is_complete
        assert partial.intended_query_fact_ids == (1,)

    def test_rejects_answers_outside_intended_scope(self):
        from repro.core import AnswerSet, Worker

        with pytest.raises(ValueError, match="unqueried facts"):
            self._make(
                [AnswerSet(worker=Worker("a", 0.9), answers={9: True})]
            )
        with pytest.raises(ValueError, match="unexpected worker"):
            self._make(
                [AnswerSet(worker=Worker("z", 0.9), answers={1: True})]
            )

    def test_rejects_duplicate_workers(self):
        from repro.core import AnswerSet, Worker

        with pytest.raises(ValueError, match="duplicate"):
            self._make(
                [
                    AnswerSet(worker=Worker("a", 0.9), answers={1: True}),
                    AnswerSet(worker=Worker("a", 0.9), answers={2: True}),
                ]
            )


class TestLogLikelihoods:
    def test_log_answer_set_matches_linear(self, worker):
        belief = BeliefState.from_marginals(
            FactSet.from_ids([1, 2, 3]), [0.6, 0.5, 0.3]
        )
        answer_set = AnswerSet(worker=worker, answers={1: True, 3: False})
        linear = answer_set_likelihood(belief, answer_set)
        logged = log_answer_set_likelihood(belief, answer_set)
        assert np.allclose(np.exp(logged), linear)

    def test_log_family_is_sum_of_sets(self, worker):
        belief = BeliefState.from_marginals(
            FactSet.from_ids([1, 2]), [0.6, 0.4]
        )
        a = AnswerSet(worker=Worker("a", 0.9), answers={1: True, 2: False})
        b = AnswerSet(worker=Worker("b", 0.7), answers={1: False, 2: False})
        family = AnswerFamily(answer_sets=(a, b))
        total = log_family_likelihood(belief, family)
        assert np.allclose(
            total,
            log_answer_set_likelihood(belief, a)
            + log_answer_set_likelihood(belief, b),
        )

    def test_extreme_accuracy_stays_finite_in_log_space(self):
        belief = BeliefState.uniform(FactSet.from_ids(range(10)))
        answers = {fact_id: True for fact_id in range(10)}
        family = AnswerFamily(
            answer_sets=tuple(
                AnswerSet(worker=Worker(f"w{i}", 0.999), answers=answers)
                for i in range(20)
            )
        )
        logged = log_family_likelihood(belief, family)
        # the all-True row is a near-hit for every worker; the all-False
        # row collects 200 log(0.001) factors but remains representable
        assert np.isfinite(logged.max())
        assert logged.max() == pytest.approx(200 * np.log(0.999))
        assert logged.min() == pytest.approx(200 * np.log(1 - 0.999))

    def test_perfect_worker_gives_minus_inf_not_error(self):
        belief = BeliefState.from_marginals(FactSet.from_ids([1]), [0.5])
        answer_set = AnswerSet(
            worker=Worker("oracle", 1.0), answers={1: True}
        )
        logged = log_answer_set_likelihood(belief, answer_set)
        assert np.isneginf(logged).any()  # the contradicted observation
        assert np.allclose(
            np.exp(logged), answer_set_likelihood(belief, answer_set)
        )

    def test_empty_query_set_is_log_one(self, worker):
        belief = BeliefState.from_marginals(FactSet.from_ids([1]), [0.5])
        answer_set = AnswerSet(worker=worker, answers={})
        assert np.array_equal(
            log_answer_set_likelihood(belief, answer_set), np.zeros(2)
        )
