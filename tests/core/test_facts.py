"""Unit tests for repro.core.facts."""

import pytest

from repro.core import Fact, FactSet


class TestFact:
    def test_fields(self):
        fact = Fact(fact_id=7, instance_id="tweet42", label="positive")
        assert fact.fact_id == 7
        assert fact.instance_id == "tweet42"
        assert fact.label == "positive"

    def test_frozen(self):
        fact = Fact(fact_id=1)
        with pytest.raises(AttributeError):
            fact.fact_id = 2

    def test_ordering_by_id(self):
        assert Fact(fact_id=1) < Fact(fact_id=2)

    def test_equality_ignores_text(self):
        assert Fact(fact_id=1, text="a") == Fact(fact_id=1, text="b")

    def test_query_text_mentions_label(self):
        fact = Fact(fact_id=1, instance_id="x", label="positive")
        assert "positive" in fact.query_text()

    def test_query_text_prefers_text(self):
        fact = Fact(fact_id=1, instance_id="x", text="Great product!")
        assert "Great product!" in fact.query_text()

    def test_query_text_falls_back_to_fact_id(self):
        fact = Fact(fact_id=9)
        assert "9" in fact.query_text()


class TestFactSet:
    def test_from_ids(self):
        facts = FactSet.from_ids([3, 1, 2])
        assert facts.fact_ids == (3, 1, 2)

    def test_len_and_iter(self):
        facts = FactSet.from_ids([1, 2, 3])
        assert len(facts) == 3
        assert [fact.fact_id for fact in facts] == [1, 2, 3]

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            FactSet.from_ids([1, 1])

    def test_positional_access(self):
        facts = FactSet.from_ids([10, 20])
        assert facts[0].fact_id == 10
        assert facts[1].fact_id == 20

    def test_position_of(self):
        facts = FactSet.from_ids([10, 20, 30])
        assert facts.position_of(20) == 1

    def test_position_of_unknown_raises(self):
        facts = FactSet.from_ids([1])
        with pytest.raises(KeyError):
            facts.position_of(99)

    def test_by_id(self):
        facts = FactSet.from_ids([5, 6])
        assert facts.by_id(6).fact_id == 6

    def test_contains_fact_and_id(self):
        facts = FactSet.from_ids([1, 2])
        assert 1 in facts
        assert Fact(fact_id=2) in facts
        assert 3 not in facts
        assert "1" not in facts

    def test_equality_and_hash(self):
        a = FactSet.from_ids([1, 2])
        b = FactSet.from_ids([1, 2])
        c = FactSet.from_ids([2, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_equality_with_other_type(self):
        assert FactSet.from_ids([1]) != "not a fact set"

    def test_subset_preserves_order_given(self):
        facts = FactSet.from_ids([1, 2, 3, 4])
        sub = facts.subset([3, 1])
        assert sub.fact_ids == (3, 1)

    def test_subset_unknown_id_raises(self):
        facts = FactSet.from_ids([1])
        with pytest.raises(KeyError):
            facts.subset([2])

    def test_empty_fact_set(self):
        facts = FactSet([])
        assert len(facts) == 0
        assert list(facts) == []

    def test_repr_lists_ids(self):
        assert "1" in repr(FactSet.from_ids([1]))
