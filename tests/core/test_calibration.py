"""Unit tests for gold-task calibration."""

import numpy as np
import pytest

from repro.core import (
    Crowd,
    calibrate_crowd,
    simulate_calibration,
    split_with_calibration,
)


class TestCalibrateCrowd:
    def test_exact_estimation_without_smoothing(self):
        gold_truth = [True, False, True, True]
        answers = {"w0": [True, False, True, False]}  # 3/4 correct
        crowd = calibrate_crowd(answers, gold_truth, smoothing=0.0)
        assert crowd.by_id("w0").accuracy == pytest.approx(0.75)

    def test_smoothing_pulls_toward_half(self):
        gold_truth = [True, True]
        answers = {"w0": [True, True]}
        crowd = calibrate_crowd(answers, gold_truth, smoothing=1.0)
        assert 0.5 < crowd.by_id("w0").accuracy < 1.0

    def test_partial_answer_prefix(self):
        gold_truth = [True, False, True]
        answers = {"w0": [True]}  # answered only the first gold fact
        crowd = calibrate_crowd(answers, gold_truth, smoothing=0.0)
        # A perfect raw ratio is clamped into the epsilon-open interval
        # so the estimate can never make P(A | o) degenerate.
        assert crowd.by_id("w0").accuracy == pytest.approx(1.0, abs=1e-5)
        assert crowd.by_id("w0").accuracy < 1.0

    def test_too_many_answers_rejected(self):
        with pytest.raises(ValueError, match="more gold facts"):
            calibrate_crowd({"w0": [True, True]}, [True])

    def test_no_answers_gets_default(self):
        crowd = calibrate_crowd(
            {"w0": []}, [True], default_accuracy=0.5
        )
        assert crowd.by_id("w0").accuracy == 0.5


class TestSimulateCalibration:
    def test_preserves_ids_and_order(self):
        true_crowd = Crowd.from_accuracies([0.6, 0.9], prefix="p")
        estimated = simulate_calibration(true_crowd, 20, rng=0)
        assert estimated.worker_ids == true_crowd.worker_ids

    def test_estimates_converge_with_gold_count(self):
        true_crowd = Crowd.from_accuracies([0.6, 0.75, 0.9, 0.95])
        rng = np.random.default_rng(1)
        estimated = simulate_calibration(true_crowd, 2000, rng=rng)
        for true_worker, estimated_worker in zip(true_crowd, estimated):
            assert estimated_worker.accuracy == pytest.approx(
                true_worker.accuracy, abs=0.05
            )

    def test_few_gold_tasks_are_noisy(self):
        """With 5 gold facts, at least some of many workers should be
        misestimated by more than 0.1 — calibration is not free."""
        true_crowd = Crowd.from_accuracies([0.75] * 40)
        estimated = simulate_calibration(true_crowd, 5, rng=2)
        deviations = [
            abs(worker.accuracy - 0.75) for worker in estimated
        ]
        assert max(deviations) > 0.1

    def test_invalid_gold_count(self):
        with pytest.raises(ValueError):
            simulate_calibration(Crowd.from_accuracies([0.8]), 0)

    def test_deterministic_with_seed(self):
        crowd = Crowd.from_accuracies([0.7, 0.9])
        a = simulate_calibration(crowd, 10, rng=3)
        b = simulate_calibration(crowd, 10, rng=3)
        assert a == b


class TestSplitWithCalibration:
    def test_report_fields(self):
        crowd = Crowd.from_accuracies([0.6, 0.95])
        report = split_with_calibration(crowd, 0.9, num_gold=50, rng=0)
        total = len(report.estimated_experts) + len(
            report.estimated_preliminary
        )
        assert total == len(crowd)

    def test_perfect_calibration_no_errors(self):
        """With a huge gold set, tiering matches the truth."""
        crowd = Crowd.from_accuracies([0.55, 0.7, 0.93, 0.97])
        report = split_with_calibration(
            crowd, 0.9, num_gold=5000, rng=1, smoothing=0.0
        )
        assert report.num_tiering_errors == 0
        assert len(report.estimated_experts) == 2

    def test_borderline_workers_get_mistiered(self):
        """Workers right at theta are the ones calibration misplaces."""
        crowd = Crowd.from_accuracies([0.89, 0.9, 0.91] * 10, prefix="b")
        errors = []
        for seed in range(5):
            report = split_with_calibration(
                crowd, 0.9, num_gold=10, rng=seed
            )
            errors.append(report.num_tiering_errors)
        assert max(errors) > 0

    def test_error_ids_disjoint(self):
        crowd = Crowd.from_accuracies(
            np.linspace(0.6, 0.97, 15).tolist()
        )
        report = split_with_calibration(crowd, 0.9, num_gold=8, rng=4)
        assert not (
            set(report.demoted_expert_ids)
            & set(report.promoted_preliminary_ids)
        )
