"""Deterministic tie-breaking of the greedy selectors.

Uniform groups make every fact's gain *exactly* equal at every greedy
step (a uniform joint factorizes into independent uniform facts), so
the selected set is decided purely by tie-breaking.  Both greedy
engines must break ties on the lowest fact id — independent of hash
randomization (this file runs in CI under a PYTHONHASHSEED matrix) and
of the order groups or ids are presented in.
"""

from __future__ import annotations

import pytest

from repro.core import (
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    LazyGreedySelector,
)


def _uniform_belief(starts=(0, 3, 6), size: int = 3) -> FactoredBelief:
    return FactoredBelief(
        [
            BeliefState.uniform(FactSet.from_ids(range(s, s + size)))
            for s in starts
        ]
    )


@pytest.fixture
def experts() -> Crowd:
    return Crowd.from_accuracies([0.8, 0.9], prefix="e")


@pytest.mark.parametrize(
    "selector_factory", [GreedySelector, LazyGreedySelector]
)
class TestTieBreaking:
    def test_all_ties_select_lowest_fact_ids(self, selector_factory, experts):
        """Every gain ties, so the selection is the k lowest ids."""
        selected = selector_factory().select(_uniform_belief(), experts, 5)
        assert selected == [0, 1, 2, 3, 4]

    def test_group_presentation_order_is_irrelevant(
        self, selector_factory, experts
    ):
        """Shuffling which group holds the low ids must not change the
        id-ordered outcome."""
        shuffled = _uniform_belief(starts=(6, 0, 3))
        selected = selector_factory().select(shuffled, experts, 4)
        assert selected == [0, 1, 2, 3]

    def test_repeated_runs_identical(self, selector_factory, experts):
        """Fresh selectors on fresh (but equal) instances agree — no
        dependence on set iteration order or interpreter state."""
        runs = [
            selector_factory().select(_uniform_belief(), experts, 5)
            for _ in range(3)
        ]
        assert runs[0] == runs[1] == runs[2]

    def test_noncontiguous_ids_still_lowest_first(
        self, selector_factory, experts
    ):
        belief = _uniform_belief(starts=(100, 7, 40))
        selected = selector_factory().select(belief, experts, 3)
        assert selected == [7, 8, 9]


def test_engines_agree_on_ties(experts):
    """The two greedy engines resolve every tie the same way, so they
    stay interchangeable even on fully symmetric instances."""
    for k in range(1, 10):
        assert LazyGreedySelector().select(
            _uniform_belief(), experts, k
        ) == GreedySelector().select(_uniform_belief(), experts, k)
