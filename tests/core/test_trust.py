"""Unit tests for the online trust supervision layer."""

import json

import pytest

from repro.core import (
    BetaTrust,
    CircuitBreaker,
    Crowd,
    TrustPolicy,
    TrustSupervisor,
    Worker,
    select_gold_probes,
)
from repro.core.trust import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)


class TestTrustPolicy:
    def test_defaults_are_valid(self):
        TrustPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quarantine_lcb": 0.0},
            {"quarantine_lcb": 1.0},
            {"prior_strength": 0.0},
            {"z": -1.0},
            {"trip_confirmations": 0},
            {"agreement_weight": 0.0},
            {"agreement_weight": 1.5},
            {"probe_rate": -0.1},
            {"max_probes_per_round": 0},
            {"cooldown_rounds": -1},
            {"probation_probes": 0},
            {"probation_pass": 5, "probation_probes": 3},
            {"drift_threshold": 0.0},
            {"drift_slack": 1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrustPolicy(**kwargs)

    def test_dict_round_trip(self):
        policy = TrustPolicy(probe_rate=0.5, quarantine_lcb=0.65, seed=9)
        restored = TrustPolicy.from_dict(
            json.loads(json.dumps(policy.to_dict()))
        )
        assert restored == policy


class TestBetaTrust:
    def test_prior_from_declared(self):
        trust = BetaTrust.from_declared(0.95, strength=8.0)
        assert trust.alpha == pytest.approx(1.0 + 8.0 * 0.95)
        assert trust.beta == pytest.approx(1.0 + 8.0 * 0.05)
        assert 0.5 < trust.mean < 0.95
        assert trust.observations == 0.0

    def test_observe_moves_posterior(self):
        trust = BetaTrust.from_declared(0.9, strength=8.0)
        before = trust.mean
        for _ in range(10):
            trust.observe(False, 1.0, slack=0.1)
        assert trust.mean < before
        assert trust.observations == pytest.approx(10.0)

    def test_lcb_below_mean_and_tightens(self):
        trust = BetaTrust.from_declared(0.9, strength=8.0)
        loose = trust.lcb(1.645)
        assert loose < trust.mean
        for _ in range(100):
            trust.observe(True, 1.0, slack=0.1)
        assert trust.lcb(1.645) > loose

    def test_cusum_accumulates_on_misses_only(self):
        trust = BetaTrust.from_declared(0.9, 8.0)
        trust.observe(True, 1.0, slack=0.1)
        assert trust.cusum == 0.0  # correct answers do not accumulate
        trust.observe(False, 1.0, slack=0.1)
        assert trust.cusum == pytest.approx(0.8)
        trust.observe(False, 1.0, slack=0.1)
        assert trust.cusum == pytest.approx(1.6)

    def test_invalid_weight(self):
        trust = BetaTrust.from_declared(0.9, 8.0)
        with pytest.raises(ValueError):
            trust.observe(True, 0.0, slack=0.1)

    def test_reset_restores_fresh_prior(self):
        trust = BetaTrust.from_declared(0.9, 8.0)
        for _ in range(20):
            trust.observe(False, 1.0, slack=0.1)
        trust.reset(8.0)
        fresh = BetaTrust.from_declared(0.9, 8.0)
        assert trust.alpha == fresh.alpha
        assert trust.beta == fresh.beta
        assert trust.cusum == 0.0
        assert trust.observations == 0.0

    def test_dict_round_trip_is_exact(self):
        trust = BetaTrust.from_declared(0.937, 8.0)
        trust.observe(True, 0.5, slack=0.1)
        trust.observe(False, 1.0, slack=0.1)
        restored = BetaTrust.from_dict(
            json.loads(json.dumps(trust.to_dict()))
        )
        assert restored == trust


class TestCircuitBreaker:
    def test_lifecycle(self):
        breaker = CircuitBreaker()
        assert breaker.state == BREAKER_CLOSED
        breaker.trip(5, "lcb below threshold")
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_at_round == 5
        breaker.to_half_open()
        assert breaker.state == BREAKER_HALF_OPEN
        breaker.close()
        assert breaker.state == BREAKER_CLOSED
        assert breaker.trip_reason == ""

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            CircuitBreaker(state="melted")

    def test_dict_round_trip(self):
        breaker = CircuitBreaker()
        breaker.trip(3, "drift")
        restored = CircuitBreaker.from_dict(
            json.loads(json.dumps(breaker.to_dict()))
        )
        assert restored == breaker


class TestSelectGoldProbes:
    TRUTH = {i: bool(i % 2) for i in range(20)}

    def test_deterministic_for_seed(self):
        a = select_gold_probes(self.TRUTH, fraction=0.2, seed=3)
        b = select_gold_probes(self.TRUTH, fraction=0.2, seed=3)
        assert a == b

    def test_subset_of_truth_with_matching_labels(self):
        gold = select_gold_probes(self.TRUTH, fraction=0.3, seed=1)
        assert set(gold) <= set(self.TRUTH)
        assert all(gold[fact] == self.TRUTH[fact] for fact in gold)

    def test_fraction_controls_size(self):
        gold = select_gold_probes(self.TRUTH, fraction=0.25, seed=0)
        assert len(gold) == 5

    def test_at_least_one_probe(self):
        gold = select_gold_probes({1: True, 2: False}, fraction=0.01)
        assert len(gold) == 1

    def test_empty_truth(self):
        assert select_gold_probes({}, fraction=0.5) == {}

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            select_gold_probes(self.TRUTH, fraction=0.0)


def _supervisor(policy=None, gold=None, accuracies=(0.95, 0.9)):
    experts = Crowd.from_accuracies(list(accuracies), prefix="e")
    return TrustSupervisor(experts, policy=policy, gold=gold)


class TestTrustSupervisor:
    def test_register_is_idempotent(self):
        supervisor = _supervisor()
        supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        supervisor.register(Worker("e0", 0.95))
        assert supervisor.trust_of("e0").observations == 1.0  # not reset

    def test_accuracy_overrides_are_clamped_posterior_means(self):
        supervisor = _supervisor()
        overrides = supervisor.accuracy_overrides()
        assert set(overrides) == {"e0", "e1"}
        for value in overrides.values():
            assert 0.0 < value < 1.0

    def test_probe_selection_persists_until_cleared(self):
        gold = {1: True, 2: False, 3: True}
        supervisor = _supervisor(
            TrustPolicy(probe_rate=1.0, seed=0), gold=gold
        )
        first = supervisor.select_probes()
        assert supervisor.select_probes() == first  # no RNG re-advance
        supervisor.clear_probes()
        assert supervisor.pending_probes is None

    def test_probes_avoid_excluded_facts(self):
        gold = {1: True, 2: False}
        supervisor = _supervisor(
            TrustPolicy(probe_rate=1.0, seed=0), gold=gold
        )
        probes = supervisor.select_probes(exclude=[1])
        assert 1 not in probes

    def test_zero_probe_rate_never_probes(self):
        supervisor = _supervisor(
            TrustPolicy(probe_rate=0.0), gold={1: True}
        )
        for _ in range(10):
            assert supervisor.select_probes() == ()
            supervisor.clear_probes()

    def test_score_gold_rejects_non_gold_fact(self):
        supervisor = _supervisor(gold={1: True})
        with pytest.raises(KeyError):
            supervisor.score_gold("e0", {2: True})

    def test_score_gold_updates_posterior_at_weight_one(self):
        supervisor = _supervisor(gold={1: True, 2: False})
        correct, total = supervisor.score_gold(
            "e0", {1: True, 2: True}
        )
        assert (correct, total) == (1, 2)
        assert supervisor.trust_of("e0").observations == pytest.approx(2.0)

    def test_observe_round_weights_gold_above_agreement(self):
        policy = TrustPolicy(agreement_weight=0.5)
        supervisor = _supervisor(policy, gold={1: True})
        supervisor.observe_round(
            {"e0": {1: True, 2: True}}, map_labels={2: True}
        )
        # one gold hit at weight 1 + one MAP agreement at weight 0.5
        assert supervisor.trust_of("e0").observations == pytest.approx(1.5)

    def test_observe_round_ignores_unknown_workers_and_facts(self):
        supervisor = _supervisor(gold={})
        supervisor.observe_round(
            {"ghost": {1: True}, "e0": {9: True}}, map_labels={}
        )
        assert supervisor.trust_of("e0").observations == 0.0

    def test_evaluate_strikes_before_tripping(self):
        policy = TrustPolicy(
            min_observations=2.0, trip_confirmations=2, quarantine_lcb=0.7
        )
        supervisor = _supervisor(policy)
        for _ in range(6):
            supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        first = supervisor.evaluate(0, ["e0", "e1"])
        assert [d.kind for d in first] == ["drift"]
        assert supervisor.breaker_of("e0").state == BREAKER_CLOSED
        second = supervisor.evaluate(1, ["e0", "e1"])
        assert [d.kind for d in second] == ["quarantine"]
        assert supervisor.breaker_of("e0").state == BREAKER_OPEN
        assert supervisor.quarantines == 1

    def test_recovery_resets_strikes(self):
        policy = TrustPolicy(
            min_observations=2.0, trip_confirmations=2, quarantine_lcb=0.7
        )
        supervisor = _supervisor(policy)
        for _ in range(6):
            supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        supervisor.evaluate(0, ["e0"])  # strike 1
        for _ in range(60):
            supervisor.trust_of("e0").observe(True, 1.0, 0.1)
        assert supervisor.evaluate(1, ["e0"]) == []
        assert supervisor.breaker_of("e0").strikes == 0

    def test_min_observations_gates_evaluation(self):
        policy = TrustPolicy(min_observations=10.0)
        supervisor = _supervisor(policy)
        for _ in range(5):
            supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        assert supervisor.evaluate(0, ["e0"]) == []

    def test_inactive_workers_not_evaluated(self):
        policy = TrustPolicy(min_observations=1.0, trip_confirmations=1)
        supervisor = _supervisor(policy)
        for _ in range(6):
            supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        assert supervisor.evaluate(0, ["e1"]) == []

    def test_cusum_drift_trips_even_with_healthy_lcb(self):
        policy = TrustPolicy(
            min_observations=1.0,
            trip_confirmations=1,
            quarantine_lcb=0.01,  # LCB can never trip
            drift_threshold=1.0,
            drift_slack=0.0,
        )
        supervisor = _supervisor(policy)
        for _ in range(3):
            supervisor.trust_of("e0").observe(False, 1.0, 0.0)
        decisions = supervisor.evaluate(0, ["e0"])
        assert [d.kind for d in decisions] == ["quarantine"]
        assert "cusum" in decisions[0].reason

    def test_open_breaker_cools_down_into_probation(self):
        policy = TrustPolicy(
            min_observations=1.0, trip_confirmations=1, cooldown_rounds=2
        )
        supervisor = _supervisor(policy, gold={1: True})
        for _ in range(20):
            supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        supervisor.evaluate(0, ["e0"])
        assert supervisor.breaker_of("e0").state == BREAKER_OPEN
        assert supervisor.evaluate(1, []) == []  # still cooling down
        decisions = supervisor.evaluate(2, [])
        assert [d.kind for d in decisions] == ["probation"]
        assert supervisor.breaker_of("e0").state == BREAKER_HALF_OPEN

    def test_probation_pass_readmits_with_fresh_prior(self):
        gold = {1: True, 2: False, 3: True}
        policy = TrustPolicy(
            min_observations=1.0,
            trip_confirmations=1,
            probation_probes=3,
            probation_pass=3,
        )
        supervisor = _supervisor(policy, gold=gold)
        for _ in range(20):
            supervisor.trust_of("e0").observe(False, 1.0, 0.1)
        supervisor.evaluate(0, ["e0"])
        supervisor.quarantine_worker(Worker("e0", 0.95))
        supervisor.breaker_of("e0").to_half_open()
        verdict = supervisor.score_probation(
            "e0", {1: True, 2: False, 3: True}, round_index=3
        )
        assert verdict.kind == "readmit"
        assert supervisor.breaker_of("e0").state == BREAKER_CLOSED
        assert supervisor.readmissions == 1
        # clean slate: the polluted posterior is gone
        assert supervisor.trust_of("e0").observations == 0.0
        assert supervisor.quarantined_workers == ()

    def test_probation_failure_reopens(self):
        gold = {1: True, 2: False, 3: True}
        policy = TrustPolicy(
            min_observations=1.0,
            trip_confirmations=1,
            probation_probes=3,
            probation_pass=3,
        )
        supervisor = _supervisor(policy, gold=gold)
        supervisor.quarantine_worker(Worker("e0", 0.95))
        supervisor.breaker_of("e0").trip(0, "test")
        supervisor.breaker_of("e0").to_half_open()
        verdict = supervisor.score_probation(
            "e0", {1: False, 2: True, 3: True}, round_index=3
        )
        assert verdict.kind == "reopen"
        assert supervisor.breaker_of("e0").state == BREAKER_OPEN
        assert supervisor.readmissions == 0

    def test_report_lists_every_tracked_worker(self):
        supervisor = _supervisor()
        supervisor.register(Worker("r0", 0.93))
        report = supervisor.report()
        assert [s.worker_id for s in report.workers] == ["e0", "e1", "r0"]
        assert report.quarantines == 0
        assert report.quarantined_worker_ids == ()

    def test_state_round_trip_is_exact(self):
        gold = {1: True, 2: False, 3: True, 4: False}
        supervisor = _supervisor(
            TrustPolicy(probe_rate=0.7, seed=5), gold=gold
        )
        supervisor.select_probes(exclude=[2])
        supervisor.score_gold("e0", {1: True})
        supervisor.observe_round({"e1": {9: False}}, map_labels={9: False})
        supervisor.quarantine_worker(Worker("e1", 0.9))
        supervisor.breaker_of("e1").trip(4, "test trip")
        restored = TrustSupervisor.from_state(
            json.loads(json.dumps(supervisor.get_state()))
        )
        assert restored.policy == supervisor.policy
        assert restored.pending_probes == supervisor.pending_probes
        assert restored.gold_fact_ids == supervisor.gold_fact_ids
        for worker_id in ("e0", "e1"):
            assert restored.trust_of(worker_id) == supervisor.trust_of(
                worker_id
            )
            assert restored.breaker_of(worker_id) == supervisor.breaker_of(
                worker_id
            )
        assert restored.quarantined_workers == supervisor.quarantined_workers
        # the probe RNG continues identically after restore
        assert restored.probation_probes_for(
            "e1"
        ) == supervisor.probation_probes_for("e1")
