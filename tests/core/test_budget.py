"""Unit tests for repro.core.budget (Algorithm 3 accounting)."""

import pytest

from repro.core import CheckingBudget, CostModel, Crowd, Worker


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.9, 0.95], prefix="e")


class TestCostModel:
    def test_default_unit_cost(self, experts):
        model = CostModel()
        assert model.round_cost(3, experts) == 6.0  # |T| * |CE|

    def test_answer_cost_default_and_override(self, experts):
        model = CostModel(per_worker={"e0": 2.5})
        assert model.answer_cost(experts.by_id("e0")) == 2.5
        assert model.answer_cost(experts.by_id("e1")) == 1.0

    def test_accuracy_proportional(self, experts):
        model = CostModel.accuracy_proportional(experts, rate=2.0)
        assert model.answer_cost(experts.by_id("e0")) == pytest.approx(1.8)
        assert model.answer_cost(experts.by_id("e1")) == pytest.approx(1.9)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(default_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(per_worker={"w": -0.5})

    def test_round_cost_scales_with_queries(self, experts):
        model = CostModel.accuracy_proportional(experts)
        assert model.round_cost(2, experts) == pytest.approx(
            2 * (0.9 + 0.95)
        )


class TestCheckingBudget:
    def test_initial_state(self):
        budget = CheckingBudget(10)
        assert budget.total == 10
        assert budget.spent == 0
        assert budget.remaining == 10

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            CheckingBudget(-1)

    def test_charge_round_paper_line7(self, experts):
        """Algorithm 3 line 7: B <- B - |T| * |CE|."""
        budget = CheckingBudget(10)
        charged = budget.charge_round(2, experts)
        assert charged == 4.0
        assert budget.remaining == 6.0

    def test_charge_beyond_remaining_rejected(self, experts):
        budget = CheckingBudget(3)
        with pytest.raises(ValueError, match="exceeds"):
            budget.charge_round(2, experts)

    def test_affordable_queries_clamps_to_k(self, experts):
        budget = CheckingBudget(100)
        assert budget.affordable_queries(experts, 3) == 3

    def test_affordable_queries_clamps_to_budget(self, experts):
        budget = CheckingBudget(5)  # one query costs 2
        assert budget.affordable_queries(experts, 10) == 2

    def test_affordable_queries_zero_when_exhausted(self, experts):
        budget = CheckingBudget(1)  # cheaper than one query (cost 2)
        assert budget.affordable_queries(experts, 5) == 0

    def test_affordable_queries_empty_crowd(self):
        budget = CheckingBudget(10)
        assert budget.affordable_queries(Crowd([]), 5) == 0

    def test_affordable_queries_k_zero(self, experts):
        assert CheckingBudget(10).affordable_queries(experts, 0) == 0

    def test_stopping_rule_matches_paper_line8(self, experts):
        """Loop in Algorithm 3 stops when B < |T| * |CE|."""
        budget = CheckingBudget(7)
        rounds = 0
        while budget.affordable_queries(experts, 1) >= 1:
            budget.charge_round(1, experts)
            rounds += 1
        assert rounds == 3  # 7 // 2
        assert budget.remaining == 1.0

    def test_cost_model_integration(self, experts):
        model = CostModel(per_worker={"e0": 3.0, "e1": 2.0})
        budget = CheckingBudget(11, cost_model=model)
        assert budget.affordable_queries(experts, 5) == 2  # 5 per query
        budget.charge_round(2, experts)
        assert budget.remaining == 1.0

    def test_free_workers_afford_everything(self):
        free = Crowd([Worker("v", 0.9)])
        model = CostModel(default_cost=0.0)
        budget = CheckingBudget(0, cost_model=model)
        assert budget.affordable_queries(free, 4) == 4
        budget.charge_round(4, free)
        assert budget.spent == 0.0


class TestPartialFamilyCharging:
    """Budget invariants for partial answer families (fault tolerance)."""

    def _partial(self, experts, answered):
        from repro.core import AnswerSet, PartialAnswerFamily

        return PartialAnswerFamily(
            intended_query_fact_ids=(0, 1),
            intended_worker_ids=experts.worker_ids,
            answer_sets=tuple(
                AnswerSet(
                    worker=experts.by_id(worker_id),
                    answers={fact_id: True for fact_id in fact_ids},
                )
                for worker_id, fact_ids in answered.items()
            ),
        )

    def test_family_cost_counts_only_received_answers(self, experts):
        model = CostModel()
        family = self._partial(experts, {"e0": [0, 1], "e1": [0]})
        assert model.family_cost(family) == 3.0
        # a no-show costs nothing
        assert model.family_cost(self._partial(experts, {"e0": [0]})) == 1.0
        assert model.family_cost(self._partial(experts, {})) == 0.0

    def test_partial_never_exceeds_full_round(self, experts):
        model = CostModel(per_worker={"e0": 2.0, "e1": 3.0})
        full = model.round_cost(2, experts)
        for answered in (
            {"e0": [0, 1], "e1": [0, 1]},
            {"e0": [0, 1], "e1": [0]},
            {"e1": [1]},
            {},
        ):
            family = self._partial(experts, answered)
            assert model.family_cost(family) <= full

    def test_charge_family_keeps_budget_non_negative(self, experts):
        budget = CheckingBudget(3)
        budget.charge_family(self._partial(experts, {"e0": [0, 1]}))
        budget.charge_family(self._partial(experts, {"e1": [0]}))
        assert budget.remaining == 0.0
        assert budget.spent == 3.0
        with pytest.raises(ValueError, match="exceeds remaining"):
            budget.charge_family(self._partial(experts, {"e0": [0]}))
        assert budget.remaining == 0.0  # the refused charge left no mark

    def test_charge_family_charges_only_answered_workers(self, experts):
        model = CostModel(per_worker={"e0": 5.0, "e1": 1.0})
        budget = CheckingBudget(10, cost_model=model)
        cost = budget.charge_family(self._partial(experts, {"e1": [0, 1]}))
        assert cost == 2.0  # e0's no-show is free
        assert budget.spent == 2.0

    def test_accuracy_proportional_composes_with_reassignment(self):
        """Section III-D pricing must extend over the union of the
        original panel and reserves swapped in mid-campaign."""
        from repro.core import AnswerSet, PartialAnswerFamily

        panel = Crowd.from_accuracies([0.9, 0.95], prefix="e")
        reserve = Crowd([Worker("r0", 0.8)])
        union = Crowd(list(panel) + list(reserve))
        model = CostModel.accuracy_proportional(union, rate=2.0)
        budget = CheckingBudget(10, cost_model=model)
        mixed = PartialAnswerFamily(
            intended_query_fact_ids=(0,),
            intended_worker_ids=union.worker_ids,
            answer_sets=(
                AnswerSet(worker=panel.by_id("e1"), answers={0: True}),
                AnswerSet(worker=reserve.by_id("r0"), answers={0: False}),
            ),
        )
        cost = budget.charge_family(mixed)
        assert cost == pytest.approx(2.0 * 0.95 + 2.0 * 0.8)
        assert budget.remaining == pytest.approx(10 - cost)
