"""Unit tests for repro.core.budget (Algorithm 3 accounting)."""

import pytest

from repro.core import CheckingBudget, CostModel, Crowd, Worker


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.9, 0.95], prefix="e")


class TestCostModel:
    def test_default_unit_cost(self, experts):
        model = CostModel()
        assert model.round_cost(3, experts) == 6.0  # |T| * |CE|

    def test_answer_cost_default_and_override(self, experts):
        model = CostModel(per_worker={"e0": 2.5})
        assert model.answer_cost(experts.by_id("e0")) == 2.5
        assert model.answer_cost(experts.by_id("e1")) == 1.0

    def test_accuracy_proportional(self, experts):
        model = CostModel.accuracy_proportional(experts, rate=2.0)
        assert model.answer_cost(experts.by_id("e0")) == pytest.approx(1.8)
        assert model.answer_cost(experts.by_id("e1")) == pytest.approx(1.9)

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            CostModel(default_cost=-1.0)
        with pytest.raises(ValueError):
            CostModel(per_worker={"w": -0.5})

    def test_round_cost_scales_with_queries(self, experts):
        model = CostModel.accuracy_proportional(experts)
        assert model.round_cost(2, experts) == pytest.approx(
            2 * (0.9 + 0.95)
        )


class TestCheckingBudget:
    def test_initial_state(self):
        budget = CheckingBudget(10)
        assert budget.total == 10
        assert budget.spent == 0
        assert budget.remaining == 10

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            CheckingBudget(-1)

    def test_charge_round_paper_line7(self, experts):
        """Algorithm 3 line 7: B <- B - |T| * |CE|."""
        budget = CheckingBudget(10)
        charged = budget.charge_round(2, experts)
        assert charged == 4.0
        assert budget.remaining == 6.0

    def test_charge_beyond_remaining_rejected(self, experts):
        budget = CheckingBudget(3)
        with pytest.raises(ValueError, match="exceeds"):
            budget.charge_round(2, experts)

    def test_affordable_queries_clamps_to_k(self, experts):
        budget = CheckingBudget(100)
        assert budget.affordable_queries(experts, 3) == 3

    def test_affordable_queries_clamps_to_budget(self, experts):
        budget = CheckingBudget(5)  # one query costs 2
        assert budget.affordable_queries(experts, 10) == 2

    def test_affordable_queries_zero_when_exhausted(self, experts):
        budget = CheckingBudget(1)  # cheaper than one query (cost 2)
        assert budget.affordable_queries(experts, 5) == 0

    def test_affordable_queries_empty_crowd(self):
        budget = CheckingBudget(10)
        assert budget.affordable_queries(Crowd([]), 5) == 0

    def test_affordable_queries_k_zero(self, experts):
        assert CheckingBudget(10).affordable_queries(experts, 0) == 0

    def test_stopping_rule_matches_paper_line8(self, experts):
        """Loop in Algorithm 3 stops when B < |T| * |CE|."""
        budget = CheckingBudget(7)
        rounds = 0
        while budget.affordable_queries(experts, 1) >= 1:
            budget.charge_round(1, experts)
            rounds += 1
        assert rounds == 3  # 7 // 2
        assert budget.remaining == 1.0

    def test_cost_model_integration(self, experts):
        model = CostModel(per_worker={"e0": 3.0, "e1": 2.0})
        budget = CheckingBudget(11, cost_model=model)
        assert budget.affordable_queries(experts, 5) == 2  # 5 per query
        budget.charge_round(2, experts)
        assert budget.remaining == 1.0

    def test_free_workers_afford_everything(self):
        free = Crowd([Worker("v", 0.9)])
        model = CostModel(default_cost=0.0)
        budget = CheckingBudget(0, cost_model=model)
        assert budget.affordable_queries(free, 4) == 4
        budget.charge_round(4, free)
        assert budget.spent == 0.0
