"""Property-based suite: the sparse/truncated kernel vs the dense reference.

The contract the tentpole rewrite must honor (hypothesis-driven, over
randomized beliefs, crowds, and truncation budgets):

* every truncation stays within its total-variation budget — at
  initialization exactly, and per update against the untruncated twin;
* ``epsilon=0`` never instantiates the sparse kernel in product code
  (``initialize_from_votes`` routes dense), and a full-support sparse
  twin drives the CELF selector to *identical* selections;
* the sparse canonical form (ascending unique support, strictly
  positive renormalized values) survives arbitrary update chains.

Journal-level byte-identity for ``run_parallel_hc_session`` and
``repro stream`` resume lives with the other resume suites
(tests/engine/test_resume.py, tests/stream/test_resume.py).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    FactoredBelief,
    LazyGreedySelector,
    SparseBeliefState,
    Worker,
    sparse_from_marginals,
    update_with_answer_set,
)
from repro.core.update import initialize_from_votes

#: Float slack on top of the analytic TV bounds (renormalization ulps).
TV_SLACK = 1e-9


def _tv(p: np.ndarray, q: np.ndarray) -> float:
    return 0.5 * float(np.abs(p - q).sum())


# --------------------------------------------------------------------
# strategies
# --------------------------------------------------------------------


@st.composite
def marginal_vectors(draw, min_facts: int = 1, max_facts: int = 4):
    num_facts = draw(st.integers(min_facts, max_facts))
    return draw(
        st.lists(
            st.floats(0.02, 0.98, allow_nan=False),
            min_size=num_facts,
            max_size=num_facts,
        )
    )


@st.composite
def answer_sets_for(draw, num_facts: int):
    accuracy = draw(st.floats(0.55, 0.95, allow_nan=False))
    queried = draw(
        st.lists(
            st.integers(0, num_facts - 1),
            min_size=1,
            max_size=num_facts,
            unique=True,
        )
    )
    answers = {
        fact_id: draw(st.booleans()) for fact_id in sorted(queried)
    }
    return AnswerSet(worker=Worker("w", accuracy), answers=answers)


epsilons = st.floats(1e-9, 0.2, allow_nan=False)


# --------------------------------------------------------------------
# truncation stays within its TV budget
# --------------------------------------------------------------------


class TestTruncationBudget:
    @settings(max_examples=60, deadline=None)
    @given(marginal_vectors(), epsilons)
    def test_initialization_tv_within_epsilon(self, marginals, epsilon):
        facts = FactSet.from_ids(range(len(marginals)))
        dense = BeliefState.from_marginals(facts, marginals)
        sparse = sparse_from_marginals(facts, marginals, epsilon)
        assert isinstance(sparse, SparseBeliefState)
        assert _tv(sparse.probabilities, dense.probabilities) <= (
            epsilon + TV_SLACK
        )

    @settings(max_examples=60, deadline=None)
    @given(marginal_vectors(min_facts=2), epsilons, st.data())
    def test_each_update_tv_within_epsilon(self, marginals, epsilon, data):
        """One update's truncation, isolated: the truncated posterior
        vs the *untruncated* posterior of the same sparse prior."""
        facts = FactSet.from_ids(range(len(marginals)))
        prior = sparse_from_marginals(facts, marginals, epsilon)
        exact_twin = SparseBeliefState.from_support(
            facts, prior.support, prior.sparse_probabilities, 0.0
        )
        answer_set = data.draw(answer_sets_for(len(marginals)))
        truncated = update_with_answer_set(prior, answer_set)
        exact = update_with_answer_set(exact_twin, answer_set)
        assert _tv(truncated.probabilities, exact.probabilities) <= (
            epsilon + TV_SLACK
        )

    @settings(max_examples=40, deadline=None)
    @given(marginal_vectors(min_facts=2), st.data())
    def test_tiny_epsilon_chain_stays_near_dense(self, marginals, data):
        """Three chained updates at epsilon=1e-9: accumulated error vs
        the dense reference stays far below any decision threshold.
        (Conditioning can amplify truncated mass by the worst-case
        likelihood ratio, ~81 per update at these accuracies, so the
        honest bound is 1e-9 * 81**3 < 1e-3 — not 3e-9.)"""
        facts = FactSet.from_ids(range(len(marginals)))
        dense = BeliefState.from_marginals(facts, marginals)
        sparse = sparse_from_marginals(facts, marginals, 1e-9)
        for _ in range(3):
            answer_set = data.draw(answer_sets_for(len(marginals)))
            dense = update_with_answer_set(dense, answer_set)
            sparse = update_with_answer_set(sparse, answer_set)
        assert _tv(sparse.probabilities, dense.probabilities) <= 1e-3


# --------------------------------------------------------------------
# the canonical sparse form survives update chains
# --------------------------------------------------------------------


class TestCanonicalForm:
    @settings(max_examples=40, deadline=None)
    @given(marginal_vectors(min_facts=2), epsilons, st.data())
    def test_support_invariants_after_updates(
        self, marginals, epsilon, data
    ):
        facts = FactSet.from_ids(range(len(marginals)))
        state = sparse_from_marginals(facts, marginals, epsilon)
        for _ in range(data.draw(st.integers(1, 3))):
            state = update_with_answer_set(
                state, data.draw(answer_sets_for(len(marginals)))
            )
        support = state.support
        values = state.sparse_probabilities
        assert support.dtype == np.int64
        assert np.all(np.diff(support) > 0)  # ascending, unique
        assert np.all(values > 0.0)  # no dead weight carried
        assert values.sum() == pytest.approx(1.0, abs=1e-12)
        assert state.support_size == support.size


# --------------------------------------------------------------------
# epsilon = 0: dense everywhere, identical selections
# --------------------------------------------------------------------


class TestEpsilonZeroIdentity:
    @settings(max_examples=40, deadline=None)
    @given(marginal_vectors())
    def test_epsilon_zero_routes_to_the_dense_kernel(self, marginals):
        facts = FactSet.from_ids(range(len(marginals)))
        belief = initialize_from_votes(facts, marginals, epsilon=0.0)
        assert type(belief) is BeliefState
        positive = initialize_from_votes(facts, marginals, epsilon=1e-4)
        assert isinstance(positive, SparseBeliefState)

    @settings(max_examples=25, deadline=None)
    @given(
        marginal_vectors(min_facts=2, max_facts=4),
        st.lists(
            st.floats(0.6, 0.9, allow_nan=False), min_size=1, max_size=3
        ),
        st.integers(1, 3),
    )
    def test_full_support_sparse_selects_identically(
        self, marginals, accuracies, k
    ):
        """A full-support sparse twin of a dense belief must drive CELF
        to the same selections (same gains, same tie-breaks)."""
        facts = FactSet.from_ids(range(len(marginals)))
        dense = BeliefState.from_marginals(facts, marginals)
        twin = SparseBeliefState.from_support(
            facts,
            np.arange(dense.probabilities.size, dtype=np.int64),
            dense.probabilities,
            0.0,
        )
        experts = Crowd(
            Worker(f"e{i}", accuracy)
            for i, accuracy in enumerate(accuracies)
        )
        dense_picks = LazyGreedySelector().select(
            FactoredBelief([dense]), experts, k
        )
        sparse_picks = LazyGreedySelector().select(
            FactoredBelief([twin]), experts, k
        )
        assert dense_picks == sparse_picks
