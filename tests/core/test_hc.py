"""Unit tests for repro.core.hc (Algorithms 1 and 3)."""

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    CostModel,
    Crowd,
    FactSet,
    FactoredBelief,
    GreedySelector,
    HierarchicalCrowdsourcing,
    MaxMarginalEntropySelector,
    RandomSelector,
    Worker,
    labeling_accuracy,
    run_flat_checking,
    run_tiered_checking,
    total_quality,
)
from repro.simulation import ScriptedAnswerSource, SimulatedExpertPanel


def _belief_two_groups() -> FactoredBelief:
    return FactoredBelief(
        [
            BeliefState.from_marginals(
                FactSet.from_ids([0, 1]), [0.7, 0.4]
            ),
            BeliefState.from_marginals(
                FactSet.from_ids([2, 3]), [0.55, 0.8]
            ),
        ]
    )


GROUND_TRUTH = {0: True, 1: False, 2: True, 3: True}


@pytest.fixture
def experts():
    return Crowd.from_accuracies([0.92, 0.96], prefix="e")


@pytest.fixture
def panel():
    return SimulatedExpertPanel(GROUND_TRUTH, rng=0)


class TestHelpers:
    def test_total_quality_sums_groups(self):
        belief = _belief_two_groups()
        from repro.core import quality

        assert total_quality(belief) == pytest.approx(
            quality(belief[0]) + quality(belief[1])
        )

    def test_labeling_accuracy(self):
        belief = FactoredBelief(
            [
                BeliefState.point_mass(
                    FactSet.from_ids([0, 1]), (True, False)
                )
            ]
        )
        assert labeling_accuracy(belief, {0: True, 1: True}) == 0.5

    def test_labeling_accuracy_partial_truth(self):
        belief = FactoredBelief(
            [BeliefState.point_mass(FactSet.from_ids([0, 1]), (True, True))]
        )
        assert labeling_accuracy(belief, {0: True}) == 1.0

    def test_labeling_accuracy_no_overlap_raises(self):
        belief = FactoredBelief(
            [BeliefState.point_mass(FactSet.from_ids([0]), (True,))]
        )
        with pytest.raises(ValueError):
            labeling_accuracy(belief, {9: True})


class TestHierarchicalCrowdsourcing:
    def test_constructor_validation(self, experts):
        with pytest.raises(ValueError, match="k must be"):
            HierarchicalCrowdsourcing(experts, k=0)
        with pytest.raises(ValueError, match="must not be empty"):
            HierarchicalCrowdsourcing(Crowd([]))

    def test_budget_never_exceeded(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=7)
        assert result.history[-1].budget_spent <= 7

    def test_round_cost_is_queries_times_experts(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=2)
        result = runner.run(_belief_two_groups(), panel, budget=8)
        for record in result.history[1:]:
            assert record.cost == len(record.query_fact_ids) * len(experts)

    def test_history_starts_at_zero_budget(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=4)
        assert result.history[0].round_index == -1
        assert result.history[0].budget_spent == 0.0
        assert result.history[0].query_fact_ids == ()

    def test_budget_monotone_in_history(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=10)
        spends = result.budgets
        assert spends == sorted(spends)

    def test_zero_budget_runs_no_rounds(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=0)
        assert len(result.history) == 1

    def test_input_belief_untouched(self, experts, panel):
        belief = _belief_two_groups()
        before = [group.probabilities.copy() for group in belief]
        runner = HierarchicalCrowdsourcing(experts, k=1)
        runner.run(belief, panel, budget=10)
        for group, original in zip(belief, before):
            assert np.allclose(group.probabilities, original)

    def test_ground_truth_enables_accuracy(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(
            _belief_two_groups(), panel, budget=6, ground_truth=GROUND_TRUTH
        )
        assert all(record.accuracy is not None for record in result.history)

    def test_no_ground_truth_accuracy_none(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=6)
        assert all(record.accuracy is None for record in result.history)

    def test_on_round_callback(self, experts, panel):
        seen = []
        runner = HierarchicalCrowdsourcing(experts, k=1)
        runner.run(
            _belief_two_groups(), panel, budget=6, on_round=seen.append
        )
        assert len(seen) == 3
        assert [record.round_index for record in seen] == [0, 1, 2]

    def test_max_rounds_caps_loop(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(
            _belief_two_groups(), panel, budget=100, max_rounds=2
        )
        assert len(result.history) == 3

    def test_quality_improves_with_reliable_experts(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=20)
        assert result.history[-1].quality > result.history[0].quality

    def test_scripted_answers_update_expected_fact(self, experts):
        """With a scripted 'Yes' consensus on the selected fact, the
        posterior marginal of that fact must rise."""
        belief = _belief_two_groups()
        selector = GreedySelector()
        chosen = selector.select(belief, experts, 1)[0]
        script = {
            (worker.worker_id, chosen): True for worker in experts
        }
        source = ScriptedAnswerSource(script)
        runner = HierarchicalCrowdsourcing(
            experts, selector=GreedySelector(), k=1
        )
        result = runner.run(belief, source, budget=2)
        assert result.history[1].query_fact_ids == (chosen,)
        assert result.belief.marginal(chosen) > belief.marginal(chosen)

    def test_final_labels_match_map(self, experts, panel):
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(_belief_two_groups(), panel, budget=10)
        assert result.final_labels == result.belief.map_labels()

    def test_stops_when_no_positive_gain(self, experts):
        certain = FactoredBelief(
            [
                BeliefState.point_mass(
                    FactSet.from_ids([0, 1]), (True, False)
                )
            ]
        )
        panel = SimulatedExpertPanel({0: True, 1: False}, rng=0)
        runner = HierarchicalCrowdsourcing(experts, k=1)
        result = runner.run(certain, panel, budget=100)
        assert len(result.history) == 1  # selector returns nothing

    def test_cost_model_shortens_run(self, experts):
        belief = _belief_two_groups()
        expensive = CostModel(default_cost=2.0)
        panel_a = SimulatedExpertPanel(GROUND_TRUTH, rng=1)
        panel_b = SimulatedExpertPanel(GROUND_TRUTH, rng=1)
        cheap_run = HierarchicalCrowdsourcing(experts, k=1).run(
            belief, panel_a, budget=12
        )
        costly_run = HierarchicalCrowdsourcing(
            experts, k=1, cost_model=expensive
        ).run(belief, panel_b, budget=12)
        assert len(costly_run.history) < len(cheap_run.history)

    def test_k_clamped_by_remaining_budget(self, experts, panel):
        """With k=3 but only budget for 1 query per round, |T| = 1."""
        runner = HierarchicalCrowdsourcing(experts, k=3)
        result = runner.run(_belief_two_groups(), panel, budget=2)
        assert len(result.history) == 2
        assert len(result.history[1].query_fact_ids) == 1

    def test_multi_group_query_updates_both_groups(self, experts):
        belief = _belief_two_groups()
        script = {}
        for worker in experts:
            script[(worker.worker_id, 1)] = False
            script[(worker.worker_id, 2)] = True
        source = ScriptedAnswerSource(
            {**script, **{(w.worker_id, f): True
                          for w in experts for f in (0, 3)}}
        )
        runner = HierarchicalCrowdsourcing(
            experts, selector=MaxMarginalEntropySelector(), k=2
        )
        result = runner.run(belief, source, budget=4)
        queried = result.history[1].query_fact_ids
        groups_touched = {result.belief.group_index_of(f) for f in queried}
        assert len(groups_touched) == 2  # 2 (0.55) and 1 (0.4) are widest


class TestRunFlatChecking:
    def test_uniform_start_and_whole_crowd(self):
        crowd = Crowd.from_accuracies([0.6, 0.7, 0.95])
        panel = SimulatedExpertPanel(GROUND_TRUTH, rng=0)
        result = run_flat_checking(
            [FactSet.from_ids([0, 1]), FactSet.from_ids([2, 3])],
            crowd,
            panel,
            budget=9,
            selector=MaxMarginalEntropySelector(),
            ground_truth=GROUND_TRUTH,
        )
        # Round cost = |C| = 3 -> exactly 3 rounds on budget 9.
        assert len(result.history) == 4
        assert result.history[0].quality == pytest.approx(-4.0)  # 2x uniform

    def test_accepts_plain_fact_iterables(self):
        from repro.core import Fact

        crowd = Crowd.from_accuracies([0.9])
        panel = SimulatedExpertPanel({0: True}, rng=0)
        result = run_flat_checking(
            [[Fact(fact_id=0)]], crowd, panel, budget=2,
            selector=MaxMarginalEntropySelector(),
        )
        assert result.history[-1].budget_spent == 2


class TestRunTieredChecking:
    def test_budget_length_mismatch(self, experts, panel):
        with pytest.raises(ValueError, match="one budget per tier"):
            run_tiered_checking(
                _belief_two_groups(), [experts], panel, [10, 20]
            )

    def test_tiers_chain_beliefs(self, experts):
        belief = _belief_two_groups()
        tier2 = Crowd([Worker("senior", 0.99)])
        panel = SimulatedExpertPanel(GROUND_TRUTH, rng=3)
        results = run_tiered_checking(
            belief,
            [experts, tier2],
            panel,
            budget_per_tier=[8, 4],
            ground_truth=GROUND_TRUTH,
        )
        assert len(results) == 2
        # Tier 2 starts from tier 1's final quality.
        assert results[1].history[0].quality == pytest.approx(
            results[0].history[-1].quality
        )

    def test_quality_weakly_improves_over_tiers(self, experts):
        belief = _belief_two_groups()
        panel = SimulatedExpertPanel(GROUND_TRUTH, rng=4)
        results = run_tiered_checking(
            belief, [experts, experts], panel, budget_per_tier=[10, 10]
        )
        assert (
            results[1].history[-1].quality
            >= results[0].history[0].quality
        )


class TestInconsistentEvidenceContext:
    """Regression: a zero-evidence round must surface which queries and
    answers caused it, not just 'zero probability'."""

    def test_error_names_query_set_and_answer_family(self):
        from repro.core import InconsistentEvidenceError

        # Two infallible experts disagreeing on the same fact leave no
        # observation with positive likelihood: zero evidence on the
        # very first round, whatever the selector picks.
        belief = FactoredBelief(
            [
                BeliefState.from_marginals(
                    FactSet.from_ids([0, 1]), [0.7, 0.4]
                )
            ]
        )
        panel = Crowd([Worker("yes", 1.0), Worker("no", 1.0)])
        script = ScriptedAnswerSource(
            {
                **{("yes", fact_id): True for fact_id in (0, 1)},
                **{("no", fact_id): False for fact_id in (0, 1)},
            }
        )
        runner = HierarchicalCrowdsourcing(panel, k=1)
        with pytest.raises(InconsistentEvidenceError) as excinfo:
            runner.run(belief, script, budget=8)
        message = str(excinfo.value)
        assert "query set" in message
        assert "answer family" in message
        # the offending answers are rendered worker-by-worker
        assert "yes" in message and "no" in message
        assert ": Y" in message and ": N" in message

    def test_describe_family_truncates_large_panels(self):
        from repro.core import AnswerFamily, AnswerSet, describe_family

        family = AnswerFamily(
            answer_sets=tuple(
                AnswerSet(worker=Worker(f"w{i}", 0.9), answers={0: True})
                for i in range(12)
            )
        )
        rendered = describe_family(family, max_workers=8)
        assert "w0" in rendered and "w7" in rendered
        assert "w8" not in rendered
        assert "4 more workers" in rendered
