"""Unit tests for repro.core.update (Lemma 3, Eq. 15-19)."""

import numpy as np
import pytest

from repro.core import (
    AnswerFamily,
    AnswerSet,
    BeliefState,
    Crowd,
    FactSet,
    InconsistentEvidenceError,
    Worker,
    answer_set_likelihood,
    initialize_from_votes,
    observation_entropy,
    tempered_posterior,
    tempered_update_with_answer_set,
    tempered_update_with_family,
    update_with_answer_set,
    update_with_family,
)


@pytest.fixture
def worker():
    return Worker("w", 0.9)


class TestInitializeFromVotes:
    def test_eq15_product_form(self, three_facts):
        """P(o) = prod ob(o, f) with vote fractions (paper Eq. 15/16)."""
        belief = initialize_from_votes(
            three_facts, {1: 0.8, 2: 0.6, 3: 0.4}, smoothing=0.01
        )
        expected = 0.8 * 0.6 * (1 - 0.4)
        assert belief.probability_of((True, True, False)) == pytest.approx(
            expected
        )

    def test_sequence_input(self, three_facts):
        belief = initialize_from_votes(three_facts, [0.7, 0.7, 0.7])
        assert belief.marginal(1) == pytest.approx(0.7)

    def test_sequence_wrong_length(self, three_facts):
        with pytest.raises(ValueError, match="one vote fraction"):
            initialize_from_votes(three_facts, [0.5])

    def test_smoothing_avoids_point_mass(self, three_facts):
        belief = initialize_from_votes(
            three_facts, [1.0, 1.0, 1.0], smoothing=0.01
        )
        # A unanimous crowd must not create irrecoverable certainty.
        assert belief.probability_of((True, True, True)) < 1.0
        assert observation_entropy(belief) > 0.0

    @pytest.mark.parametrize("smoothing", [0.6, 0.5, 0.0, -0.1])
    def test_invalid_smoothing(self, three_facts, smoothing):
        """Smoothing must lie strictly inside (0, 0.5) — zero would keep
        an irrecoverable point mass from a unanimous crowd."""
        with pytest.raises(ValueError, match=r"smoothing must lie in"):
            initialize_from_votes(
                three_facts, [0.5] * 3, smoothing=smoothing
            )

    def test_boundary_smoothing_accepted(self, three_facts):
        belief = initialize_from_votes(
            three_facts, [1.0] * 3, smoothing=0.499
        )
        assert belief.marginal(1) == pytest.approx(0.501)

    def test_marginals_clipped(self, three_facts):
        belief = initialize_from_votes(
            three_facts, [0.0, 1.0, 0.5], smoothing=0.05
        )
        assert belief.marginal(1) == pytest.approx(0.05)
        assert belief.marginal(2) == pytest.approx(0.95)


class TestUpdateWithAnswerSet:
    def test_lemma3_bayes_rule(self, table1_belief, worker):
        """Posterior must equal P(o) P(A|o) / P(A) exactly (Eq. 19)."""
        answer_set = AnswerSet(worker=worker, answers={1: True, 3: False})
        posterior = update_with_answer_set(table1_belief, answer_set)
        likelihood = answer_set_likelihood(table1_belief, answer_set)
        expected = table1_belief.probabilities * likelihood
        expected /= expected.sum()
        assert np.allclose(posterior.probabilities, expected)

    def test_posterior_normalized(self, table1_belief, worker):
        answer_set = AnswerSet(worker=worker, answers={2: True})
        posterior = update_with_answer_set(table1_belief, answer_set)
        assert posterior.probabilities.sum() == pytest.approx(1.0)

    def test_yes_answer_raises_marginal(self, table1_belief, worker):
        answer_set = AnswerSet(worker=worker, answers={3: True})
        posterior = update_with_answer_set(table1_belief, answer_set)
        assert posterior.marginal(3) > table1_belief.marginal(3)

    def test_no_answer_lowers_marginal(self, table1_belief, worker):
        answer_set = AnswerSet(worker=worker, answers={3: False})
        posterior = update_with_answer_set(table1_belief, answer_set)
        assert posterior.marginal(3) < table1_belief.marginal(3)

    def test_coin_flip_worker_changes_nothing(self, table1_belief):
        flipper = Worker("c", 0.5)
        answer_set = AnswerSet(worker=flipper, answers={1: True, 2: False})
        posterior = update_with_answer_set(table1_belief, answer_set)
        assert np.allclose(
            posterior.probabilities, table1_belief.probabilities
        )

    def test_unqueried_fact_marginal_moves_via_correlation(
        self, table1_belief, worker
    ):
        """Correlated facts: updating f1 should shift P(f2) too, which is
        exactly what independent-per-fact methods miss."""
        answer_set = AnswerSet(worker=worker, answers={1: True})
        posterior = update_with_answer_set(table1_belief, answer_set)
        assert posterior.marginal(2) != pytest.approx(
            table1_belief.marginal(2)
        )

    def test_inconsistent_evidence_raises(self, three_facts):
        certain = BeliefState.point_mass(three_facts, (True, True, True))
        oracle = Worker("o", 1.0)
        contradiction = AnswerSet(worker=oracle, answers={1: False})
        with pytest.raises(InconsistentEvidenceError):
            update_with_answer_set(certain, contradiction)


class TestUpdateWithFamily:
    def test_family_equals_sequential_updates(self, table1_belief):
        """Workers are independent given o, so one family update equals
        updating with each answer set in turn (Eq. 23)."""
        a = AnswerSet(worker=Worker("a", 0.9), answers={1: True, 2: False})
        b = AnswerSet(worker=Worker("b", 0.8), answers={1: False, 2: False})
        family = AnswerFamily(answer_sets=(a, b))
        at_once = update_with_family(table1_belief, family)
        stepwise = update_with_answer_set(
            update_with_answer_set(table1_belief, a), b
        )
        assert np.allclose(at_once.probabilities, stepwise.probabilities)

    def test_order_invariance(self, table1_belief):
        a = AnswerSet(worker=Worker("a", 0.9), answers={1: True})
        b = AnswerSet(worker=Worker("b", 0.7), answers={1: False})
        forward = update_with_family(
            table1_belief, AnswerFamily(answer_sets=(a, b))
        )
        backward = update_with_family(
            table1_belief, AnswerFamily(answer_sets=(b, a))
        )
        assert np.allclose(forward.probabilities, backward.probabilities)

    def test_agreeing_experts_sharpen_more_than_one(self, table1_belief):
        one = update_with_family(
            table1_belief,
            AnswerFamily(
                answer_sets=(
                    AnswerSet(worker=Worker("a", 0.9), answers={3: True}),
                )
            ),
        )
        two = update_with_family(
            table1_belief,
            AnswerFamily(
                answer_sets=(
                    AnswerSet(worker=Worker("a", 0.9), answers={3: True}),
                    AnswerSet(worker=Worker("b", 0.9), answers={3: True}),
                )
            ),
        )
        assert two.marginal(3) > one.marginal(3)

    def test_disagreeing_equal_experts_cancel(self, table1_belief):
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=Worker("a", 0.9), answers={3: True}),
                AnswerSet(worker=Worker("b", 0.9), answers={3: False}),
            )
        )
        posterior = update_with_family(table1_belief, family)
        assert posterior.marginal(3) == pytest.approx(
            table1_belief.marginal(3)
        )

    def test_tempered_matches_exact_update_when_consistent(
        self, table1_belief, worker
    ):
        answer_set = AnswerSet(worker=worker, answers={1: True, 3: False})
        exact = update_with_answer_set(table1_belief, answer_set)
        tempered, was_tempered = tempered_update_with_answer_set(
            table1_belief, answer_set
        )
        assert not was_tempered
        assert np.array_equal(tempered.probabilities, exact.probabilities)

    def test_tempered_absorbs_zero_evidence(self, three_facts):
        certain = BeliefState.point_mass(three_facts, (True, True, True))
        oracle = Worker("o", 1.0)
        contradiction = AnswerSet(worker=oracle, answers={1: False})
        posterior, was_tempered = tempered_update_with_answer_set(
            certain, contradiction
        )
        assert was_tempered
        assert posterior.probabilities.sum() == pytest.approx(1.0)
        assert np.all(posterior.probabilities >= 0.0)
        # flooring the likelihood cannot resurrect states the prior
        # excludes: against a true point mass the update is a no-op
        assert np.array_equal(
            posterior.probabilities, certain.probabilities
        )

    def test_tempered_family_flags_zero_evidence(self, three_facts):
        certain = BeliefState.point_mass(three_facts, (True, True, True))
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=Worker("o", 1.0), answers={1: False}),
            )
        )
        posterior, was_tempered = tempered_update_with_family(
            certain, family
        )
        assert was_tempered
        assert posterior.probabilities.sum() == pytest.approx(1.0)

    def test_tempered_posterior_rejects_bad_floor(self, table1_belief):
        with pytest.raises(ValueError, match="floor"):
            tempered_posterior(
                table1_belief,
                np.ones_like(table1_belief.probabilities),
                floor=0.0,
            )

    def test_expected_posterior_entropy_drops(self, table1_belief):
        """Averaged over the family distribution, posterior entropy must
        fall (information never hurts) — spot-check by sampling."""
        from repro.core import enumerate_answer_families, family_probability

        experts = Crowd.from_accuracies([0.85, 0.9])
        prior_entropy = observation_entropy(table1_belief)
        expected = 0.0
        for family in enumerate_answer_families([1, 2], experts):
            weight = family_probability(table1_belief, family)
            if weight == 0.0:
                continue
            posterior = update_with_family(table1_belief, family)
            expected += weight * observation_entropy(posterior)
        assert expected < prior_entropy


class TestLogSpaceUnderflow:
    """High-accuracy workers must not crash the update via float64
    underflow: 20 workers at 0.999 split into two contradicting camps
    (11 yes, 9 no) drive every linear-space likelihood product to
    exactly 0.0, yet the evidence is perfectly consistent and the
    majority camp should win."""

    NUM_FACTS = 14
    YES_CAMP = 11  # the remaining 9 of 20 answer all-No

    def _camps_family(self, facts, num_workers=20, accuracy=0.999):
        yes = {fact.fact_id: True for fact in facts}
        no = {fact.fact_id: False for fact in facts}
        return AnswerFamily(
            answer_sets=tuple(
                AnswerSet(
                    worker=Worker(f"w{i}", accuracy),
                    answers=dict(yes if i < self.YES_CAMP else no),
                )
                for i in range(num_workers)
            )
        )

    def _uniform_belief(self):
        return BeliefState.uniform(
            FactSet.from_ids(range(self.NUM_FACTS))
        )

    def test_linear_product_underflows_to_zero(self):
        from repro.core import family_likelihood

        belief = self._uniform_belief()
        family = self._camps_family(belief.facts)
        likelihood = family_likelihood(belief, family)
        assert likelihood.max() == 0.0  # the failure this guards against

    def test_update_with_family_recovers_in_log_space(self):
        belief = self._uniform_belief()
        family = self._camps_family(belief.facts)
        posterior = update_with_family(belief, family)

        probs = posterior.probabilities
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)
        # the 11-worker yes camp outweighs the 9-worker no camp
        all_true = posterior.probability_of((True,) * self.NUM_FACTS)
        assert all_true > 0.999
        for fact in belief.facts:
            assert posterior.marginal(fact.fact_id) > 0.99

    def test_tempered_update_stays_exact_on_underflow(self):
        """Underflowed-but-consistent evidence is recomputed exactly in
        log space, not floored — the tempered flag stays False."""
        belief = self._uniform_belief()
        family = self._camps_family(belief.facts)
        posterior, tempered = tempered_update_with_family(belief, family)
        assert tempered is False
        exact = update_with_family(belief, family)
        assert np.allclose(posterior.probabilities, exact.probabilities)

    def test_single_answer_set_log_fallback(self):
        belief = self._uniform_belief()
        answers = {fact.fact_id: True for fact in belief.facts}
        # drive the per-set product below the guard with repeats
        answer_set = AnswerSet(worker=Worker("w", 1e-30), answers=answers)
        posterior = update_with_answer_set(belief, answer_set)
        assert np.all(np.isfinite(posterior.probabilities))
        assert posterior.probabilities.sum() == pytest.approx(1.0)
        # an inverter this extreme makes all-False a near-certainty
        assert posterior.probability_of(
            (False,) * self.NUM_FACTS
        ) == pytest.approx(1.0)

    def test_genuine_inconsistency_still_raises(self, three_facts):
        certain = BeliefState.point_mass(three_facts, (True, True, True))
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=Worker("o", 1.0), answers={1: False}),
            )
        )
        with pytest.raises(InconsistentEvidenceError):
            update_with_family(certain, family)

    def test_log_path_matches_linear_on_healthy_evidence(
        self, table1_belief
    ):
        """Same answers, healthy evidence: forcing the log path must
        agree with the linear path to float tolerance."""
        from repro.core import log_family_likelihood

        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=Worker("a", 0.9),
                          answers={1: True, 2: False, 3: True}),
                AnswerSet(worker=Worker("b", 0.8),
                          answers={1: False, 2: False, 3: True}),
            )
        )
        linear = update_with_family(table1_belief, family)
        logged = table1_belief.log_reweighted(
            log_family_likelihood(table1_belief, family)
        )
        assert np.allclose(linear.probabilities, logged.probabilities)


class TestExtremePanelLogGuard:
    """Satellite regression: a 30-worker panel at 0.9999 accuracy.

    This is the regime the log-space guard path exists for.  Each
    contrarian worker contributes ``0.0001**14 == 1e-56`` to the linear
    family product; 14 of them put the best state near ``1e-784`` —
    far below float64's ~1e-308 floor, so *every* dense linear
    likelihood is exactly 0.0.  The update must resolve entirely in log
    space (no re-exponentiate-then-renormalize round trip: that path
    would divide 0.0 by 0.0) and still return the exact posterior.
    """

    NUM_FACTS = 14
    NUM_WORKERS = 30
    YES_CAMP = 16  # the remaining 14 of 30 answer all-No
    ACCURACY = 0.9999

    def _facts(self):
        return FactSet.from_ids(range(self.NUM_FACTS))

    def _camps_family(self, facts):
        yes = {fact.fact_id: True for fact in facts}
        no = {fact.fact_id: False for fact in facts}
        return AnswerFamily(
            answer_sets=tuple(
                AnswerSet(
                    worker=Worker(f"w{i}", self.ACCURACY),
                    answers=yes if i < self.YES_CAMP else no,
                )
                for i in range(self.NUM_WORKERS)
            )
        )

    def test_dense_linear_path_fails(self):
        """The failure this pins: the linear product is identically 0."""
        from repro.core import family_likelihood

        belief = BeliefState.uniform(self._facts())
        likelihood = family_likelihood(belief, self._camps_family(belief.facts))
        assert likelihood.max() == 0.0

    def test_dense_log_guard_recovers_exactly(self):
        belief = BeliefState.uniform(self._facts())
        posterior = update_with_family(belief, self._camps_family(belief.facts))
        probs = posterior.probabilities
        assert np.all(np.isfinite(probs))
        assert probs.sum() == pytest.approx(1.0)
        # 16 near-perfect yes-workers beat 14 near-perfect no-workers
        assert posterior.probability_of((True,) * self.NUM_FACTS) > 0.9999

    def test_tempered_flag_stays_false(self):
        """Underflowed-but-consistent evidence resolves in log space and
        is never tempered (tempering would distort the posterior)."""
        belief = BeliefState.uniform(self._facts())
        posterior, tempered = tempered_update_with_family(
            belief, self._camps_family(belief.facts)
        )
        assert tempered is False
        assert posterior.probability_of((True,) * self.NUM_FACTS) > 0.9999

    def test_sparse_kernel_agrees_with_dense_log_path(self):
        """The bit-packed sparse kernel computes the same posterior
        directly in log space (it has no linear path to fall back
        from), matching the dense guard path to float tolerance."""
        from repro.core import sparse_from_marginals

        facts = self._facts()
        family = self._camps_family(facts)
        marginals = np.full(self.NUM_FACTS, 0.5)
        sparse = sparse_from_marginals(facts, marginals, 1e-12)
        dense = update_with_family(BeliefState.uniform(facts), family)
        sparse_post = update_with_family(sparse, family)
        assert np.all(np.isfinite(sparse_post.probabilities))
        assert sparse_post.probability_of((True,) * self.NUM_FACTS) == (
            pytest.approx(
                dense.probability_of((True,) * self.NUM_FACTS), rel=1e-9
            )
        )

    def test_estimated_accuracy_clamp_keeps_log_terms_finite(self):
        """estimate_accuracy can see a perfect gold record; the clamp
        must keep both log terms of the likelihood finite so the log
        kernel never sees log(0) for a merely *estimated* perfection."""
        from repro.core import estimate_accuracy

        perfect = estimate_accuracy([True] * 50, [True] * 50, smoothing=0.0)
        assert 0.0 < perfect < 1.0
        assert np.isfinite(np.log(perfect))
        assert np.isfinite(np.log1p(-perfect))
        belief = BeliefState.uniform(self._facts())
        answers = {fact.fact_id: True for fact in belief.facts}
        posterior = update_with_answer_set(
            belief, AnswerSet(worker=Worker("gold", perfect), answers=answers)
        )
        assert np.all(np.isfinite(posterior.probabilities))
