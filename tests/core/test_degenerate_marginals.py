"""Regression tests: degenerate marginal products at initialization.

``BeliefState.from_marginals`` historically guarded ``total <= eps``,
which NaN totals sail straight past (``NaN <= eps`` is ``False``): NaN
marginals — e.g. an aggregator's 0/0 vote fraction — propagated NaN
into the belief instead of triggering the uniform fallback.  The guard
is now ``not total > eps`` and both kernels must agree on the
semantics:

* NaN marginals -> RuntimeWarning + ``on_degenerate`` + *exact* uniform;
* all-zero (or all-one) marginals are NOT degenerate — the product is a
  legitimate point mass and no warning fires.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import BeliefState, FactSet, SparseBeliefState
from repro.core import sparse_from_marginals
from repro.core.update import initialize_from_votes


@pytest.fixture
def facts() -> FactSet:
    return FactSet.from_ids([1, 2, 3])


def test_nan_marginals_fall_back_to_exact_uniform(facts):
    calls = []
    with pytest.warns(RuntimeWarning, match="degenerate"):
        belief = BeliefState.from_marginals(
            facts, [float("nan"), 0.5, 0.5], on_degenerate=lambda: calls.append(True)
        )
    assert calls  # the incident hook fired
    assert np.array_equal(
        belief.probabilities, np.full(8, 1.0 / 8)
    )  # exact uniform, not merely approximate


def test_all_nan_marginals_fall_back(facts):
    with pytest.warns(RuntimeWarning, match="degenerate"):
        belief = BeliefState.from_marginals(facts, [float("nan")] * 3)
    assert np.array_equal(belief.probabilities, np.full(8, 1.0 / 8))


def test_all_zero_marginals_are_a_point_mass_not_degenerate(facts):
    """Zero marginals mean "every fact is false", which is a perfectly
    well-defined observation — the all-false state gets all the mass."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        belief = BeliefState.from_marginals(facts, [0.0, 0.0, 0.0])
    assert belief.probability_of((False, False, False)) == 1.0


def test_near_zero_products_are_renormalized_not_degenerate(facts):
    """Tiny-but-positive products renormalize exactly; the fallback is
    reserved for genuinely zero/NaN mass."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        belief = BeliefState.from_marginals(facts, [1e-200, 1e-200, 0.5])
    assert belief.probabilities.sum() == pytest.approx(1.0)
    assert belief.map_observation() == 0


def test_sparse_kernel_agrees_on_nan_fallback(facts):
    calls = []
    with pytest.warns(RuntimeWarning, match="degenerate"):
        sparse = sparse_from_marginals(
            facts, [float("nan"), 0.5, 0.5], 1e-3,
            on_degenerate=lambda: calls.append(True),
        )
    assert calls
    assert isinstance(sparse, SparseBeliefState)
    assert np.array_equal(sparse.probabilities, np.full(8, 1.0 / 8))


def test_initialize_from_votes_threads_the_hook(facts):
    calls = []
    with pytest.warns(RuntimeWarning, match="degenerate"):
        belief = initialize_from_votes(
            facts,
            {1: float("nan"), 2: 0.5, 3: 0.5},
            smoothing=0.01,  # NaN survives the smoothing clip
            on_degenerate=lambda: calls.append(True),
        )
    assert calls
    assert np.array_equal(belief.probabilities, np.full(8, 1.0 / 8))
