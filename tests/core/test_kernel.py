"""Unit tests of the bit-packed, log-space, sparse belief kernel."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import (
    AnswerFamily,
    AnswerSet,
    BeliefState,
    FactSet,
    SparseBeliefState,
    Worker,
    pack_query,
    packed_states,
    pattern_indices,
    popcount,
    sparse_from_marginals,
    sparse_log_answer_set_likelihood,
    sparse_log_family_likelihood,
    state_from_wire,
    state_wire_payload,
    update_with_answer_set,
    update_with_family,
)
from repro.core.answers import log_answer_set_likelihood, log_family_likelihood
from repro.core.kernel import _truncated


def _total_variation(dense: BeliefState, other: BeliefState) -> float:
    return 0.5 * float(
        np.abs(dense.probabilities - other.probabilities).sum()
    )


def _sparse(facts: FactSet, probabilities, epsilon: float = 0.0):
    return SparseBeliefState(facts, np.asarray(probabilities), epsilon)


# ---------------------------------------------------------------------
# bit packing primitives
# ---------------------------------------------------------------------


def test_popcount_matches_python():
    values = np.array([0, 1, 2, 3, 255, 2**40 - 1, 2**62], dtype=np.int64)
    assert popcount(values).tolist() == [
        bin(int(v)).count("1") for v in values
    ]


def test_packed_states_is_arange():
    assert packed_states(3).tolist() == list(range(8))
    assert packed_states(0).tolist() == [0]


def test_pack_query_masks_follow_positions():
    facts = FactSet.from_ids([10, 20, 30, 40])
    query_mask, answer_mask, count = pack_query(
        facts, {20: True, 40: False}
    )
    assert count == 2
    # Fact 20 is position 1, fact 40 position 3.
    assert query_mask == 0b1010
    assert answer_mask == 0b0010


def test_sparse_log_likelihood_matches_dense_log_kernel():
    facts = FactSet.from_ids([1, 2, 3])
    dense = BeliefState.uniform(facts)
    worker = Worker("w0", 0.85)
    answer_set = AnswerSet(worker, {1: True, 3: False})
    states = packed_states(3)
    via_kernel = sparse_log_answer_set_likelihood(facts, states, answer_set)
    via_dense = log_answer_set_likelihood(dense, answer_set)
    assert np.array_equal(via_kernel, via_dense)

    family = AnswerFamily(
        answer_sets=(
            answer_set,
            AnswerSet(Worker("w1", 0.7), {1: False, 3: True}),
        )
    )
    assert np.array_equal(
        sparse_log_family_likelihood(facts, states, family),
        log_family_likelihood(dense, family),
    )


def test_pattern_indices_compacts_selected_bits():
    states = np.array([0b000, 0b101, 0b110, 0b011], dtype=np.int64)
    # Select bit positions 0 and 2 -> compact index (bit2 << 1) | bit0.
    assert pattern_indices(states, [0, 2]).tolist() == [0, 3, 2, 1]


# ---------------------------------------------------------------------
# truncation
# ---------------------------------------------------------------------


def test_truncated_drops_within_budget_and_renormalizes():
    support = np.arange(4, dtype=np.int64)
    values = np.array([0.5, 0.3, 0.15, 0.05])
    kept_support, kept_values = _truncated(support, values, 0.06)
    assert kept_support.tolist() == [0, 1, 2]
    assert kept_values.sum() == pytest.approx(1.0)
    # Dropped mass (0.05) is the TV distance, within the 0.06 budget.
    dense_before = np.zeros(4)
    dense_before[support] = values
    dense_after = np.zeros(4)
    dense_after[kept_support] = kept_values
    assert 0.5 * np.abs(dense_before - dense_after).sum() <= 0.06


def test_truncated_never_empties_the_support():
    support = np.arange(3, dtype=np.int64)
    values = np.array([1 / 3, 1 / 3, 1 / 3])
    kept_support, _values = _truncated(support, values, 0.999999)
    assert kept_support.size >= 1


def test_truncated_epsilon_zero_is_identity():
    support = np.arange(5, dtype=np.int64)
    values = np.full(5, 0.2)
    kept_support, kept_values = _truncated(support, values, 0.0)
    assert kept_support is support
    assert kept_values is values


# ---------------------------------------------------------------------
# SparseBeliefState semantics
# ---------------------------------------------------------------------


def test_sparse_state_matches_dense_accessors():
    facts = FactSet.from_ids([1, 2, 3])
    probabilities = np.array(
        [0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]
    )
    dense = BeliefState(facts, probabilities)
    sparse = _sparse(facts, probabilities)
    assert np.array_equal(sparse.probabilities, dense.probabilities)
    assert np.allclose(sparse.marginals(), dense.marginals())
    assert sparse.map_observation() == dense.map_observation()
    assert sparse.probability_of((True, True, False)) == pytest.approx(
        dense.probability_of((True, True, False))
    )
    assert sparse.marginal(2) == pytest.approx(dense.marginal(2))
    assert sparse.support_size == 8


def test_sparse_update_tracks_dense_within_epsilon():
    facts = FactSet.from_ids([1, 2, 3, 4])
    rng = np.random.default_rng(5)
    probabilities = rng.dirichlet(np.ones(16))
    epsilon = 1e-3
    dense = BeliefState(facts, probabilities)
    sparse = _sparse(facts, probabilities, epsilon)
    answers = AnswerSet(Worker("w0", 0.9), {1: True, 3: False})
    dense = update_with_answer_set(dense, answers)
    sparse = update_with_answer_set(sparse, answers)
    assert isinstance(sparse, SparseBeliefState)
    assert sparse.epsilon == epsilon
    # One init truncation + one update truncation, plus float noise.
    assert _total_variation(dense, sparse) <= 2 * epsilon + 1e-9


def test_sparse_family_update_matches_log_reference():
    facts = FactSet.from_ids([1, 2])
    probabilities = np.array([0.4, 0.3, 0.2, 0.1])
    sparse = _sparse(facts, probabilities, 0.0)
    family = AnswerFamily(
        answer_sets=(
            AnswerSet(Worker("a", 0.8), {1: True, 2: True}),
            AnswerSet(Worker("b", 0.95), {1: True, 2: False}),
        )
    )
    updated = update_with_family(sparse, family)
    dense = BeliefState(facts, probabilities)
    reference = dense.log_reweighted(log_family_likelihood(dense, family))
    assert _total_variation(reference, updated) <= 1e-12


def test_sparse_pickle_round_trip_is_bitwise():
    facts = FactSet.from_ids([7, 8, 9])
    sparse = sparse_from_marginals(facts, [0.9, 0.2, 0.5], 1e-4)
    clone = pickle.loads(
        pickle.dumps(sparse, protocol=pickle.HIGHEST_PROTOCOL)
    )
    assert isinstance(clone, SparseBeliefState)
    assert np.array_equal(clone.support, sparse.support)
    assert np.array_equal(
        clone.sparse_probabilities, sparse.sparse_probabilities
    )
    assert clone.epsilon == sparse.epsilon


def test_from_support_rejects_malformed_inputs():
    facts = FactSet.from_ids([1, 2])
    with pytest.raises(ValueError):
        SparseBeliefState.from_support(
            facts, np.array([], dtype=np.int64), np.array([]), 0.0
        )
    with pytest.raises(ValueError):
        SparseBeliefState.from_support(
            facts, np.array([1, 0]), np.array([0.5, 0.5]), 0.0
        )
    with pytest.raises(ValueError):
        SparseBeliefState.from_support(
            facts, np.array([0, 4]), np.array([0.5, 0.5]), 0.0
        )
    with pytest.raises(ValueError):
        SparseBeliefState.from_support(
            facts, np.array([0, 1]), np.array([0.5, 0.0]), 0.0
        )


def test_log_posterior_rejects_all_inf_likelihood():
    facts = FactSet.from_ids([1])
    sparse = _sparse(facts, [0.5, 0.5])
    with pytest.raises(ValueError):
        sparse.log_posterior(np.array([-np.inf, -np.inf]))


# ---------------------------------------------------------------------
# marginal products
# ---------------------------------------------------------------------


def test_sparse_from_marginals_matches_dense_at_epsilon_zero():
    facts = FactSet.from_ids([1, 2, 3])
    marginals = [0.9, 0.25, 0.6]
    dense = BeliefState.from_marginals(facts, marginals)
    sparse = sparse_from_marginals(facts, marginals, 0.0)
    assert _total_variation(dense, sparse) <= 1e-12


def test_sparse_from_marginals_truncates_within_budget():
    facts = FactSet.from_ids(list(range(8)))
    marginals = [0.99] * 8
    epsilon = 1e-3
    dense = BeliefState.from_marginals(facts, marginals)
    sparse = sparse_from_marginals(facts, marginals, epsilon)
    assert sparse.support_size < dense.num_observations
    assert _total_variation(dense, sparse) <= epsilon + 1e-12


def test_sparse_from_marginals_extreme_endpoints_are_exact():
    """Accuracy-0/1 marginals give a point mass, not an underflow."""
    facts = FactSet.from_ids([1, 2, 3])
    sparse = sparse_from_marginals(facts, [0.0, 1.0, 0.0], 0.0)
    assert sparse.support_size == 1
    assert sparse.support[0] == 0b010
    assert sparse.sparse_probabilities[0] == 1.0


# ---------------------------------------------------------------------
# wire payloads
# ---------------------------------------------------------------------


def test_wire_payload_round_trip_dense_and_sparse():
    facts = FactSet.from_ids([1, 2, 3])
    probabilities = np.array(
        [0.09, 0.11, 0.10, 0.20, 0.08, 0.09, 0.15, 0.18]
    )
    dense = BeliefState(facts, probabilities)
    restored = state_from_wire(facts, state_wire_payload(dense))
    assert type(restored) is BeliefState
    assert np.array_equal(restored.probabilities, dense.probabilities)

    sparse = _sparse(facts, probabilities, 1e-4)
    payload = state_wire_payload(sparse)
    assert payload[0] == "sparse"
    restored = state_from_wire(facts, payload)
    assert isinstance(restored, SparseBeliefState)
    assert np.array_equal(restored.support, sparse.support)
    assert np.array_equal(
        restored.sparse_probabilities, sparse.sparse_probabilities
    )
    assert restored.epsilon == sparse.epsilon
