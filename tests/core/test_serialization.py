"""Unit tests for JSON serialization and session checkpointing."""

import json

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    Fact,
    FactSet,
    FactoredBelief,
    SerializationError,
    belief_state_from_dict,
    belief_state_to_dict,
    crowd_from_dict,
    crowd_to_dict,
    factored_belief_from_dict,
    factored_belief_to_dict,
    load_belief,
    load_run_result,
    run_result_from_dict,
    run_result_to_dict,
    save_belief,
    save_run_result,
)


@pytest.fixture
def belief():
    facts = FactSet(
        [
            Fact(fact_id=1, instance_id="t1", label="positive",
                 text="Great!"),
            Fact(fact_id=2, instance_id="t2", label="positive"),
        ]
    )
    return BeliefState.from_marginals(facts, [0.7, 0.3])


@pytest.fixture
def factored(belief):
    other = BeliefState.uniform(FactSet.from_ids([3, 4]))
    return FactoredBelief([belief, other])


class TestBeliefRoundTrip:
    def test_belief_state(self, belief):
        payload = belief_state_to_dict(belief)
        json.dumps(payload)  # must be JSON-compatible
        restored = belief_state_from_dict(payload)
        assert restored.facts == belief.facts
        assert np.allclose(restored.probabilities, belief.probabilities)

    def test_fact_metadata_preserved(self, belief):
        restored = belief_state_from_dict(belief_state_to_dict(belief))
        fact = restored.facts.by_id(1)
        assert fact.instance_id == "t1"
        assert fact.text == "Great!"

    def test_factored_belief(self, factored):
        restored = factored_belief_from_dict(
            factored_belief_to_dict(factored)
        )
        assert restored.fact_ids == factored.fact_ids
        for original, loaded in zip(factored, restored):
            assert np.allclose(
                original.probabilities, loaded.probabilities
            )

    def test_file_round_trip(self, factored, tmp_path):
        path = save_belief(factored, tmp_path / "nested" / "belief.json")
        restored = load_belief(path)
        assert restored.fact_ids == factored.fact_ids

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            factored_belief_from_dict({"groups": []})
        with pytest.raises(SerializationError):
            belief_state_from_dict({"probabilities": [1.0]})


class TestCrowdRoundTrip:
    def test_round_trip(self):
        crowd = Crowd.from_accuracies([0.6, 0.95], prefix="x")
        restored = crowd_from_dict(crowd_to_dict(crowd))
        assert restored == crowd

    def test_malformed(self):
        with pytest.raises(SerializationError):
            crowd_from_dict({})


class TestRunResultRoundTrip:
    def _run(self, factored):
        from repro.core import HierarchicalCrowdsourcing
        from repro.simulation import SimulatedExpertPanel

        experts = Crowd.from_accuracies([0.9, 0.95])
        panel = SimulatedExpertPanel(
            {1: True, 2: False, 3: True, 4: False}, rng=0
        )
        return HierarchicalCrowdsourcing(experts, k=1).run(
            factored, panel, budget=8,
            ground_truth={1: True, 2: False, 3: True, 4: False},
        )

    def test_round_trip(self, factored, tmp_path):
        result = self._run(factored)
        path = save_run_result(result, tmp_path / "run.json")
        restored = load_run_result(path)
        assert len(restored.history) == len(result.history)
        assert restored.history[-1].quality == pytest.approx(
            result.history[-1].quality
        )
        assert restored.final_labels == result.final_labels

    def test_history_fields_preserved(self, factored):
        result = self._run(factored)
        restored = run_result_from_dict(run_result_to_dict(result))
        for original, loaded in zip(result.history, restored.history):
            assert loaded.round_index == original.round_index
            assert loaded.query_fact_ids == original.query_fact_ids
            assert loaded.budget_spent == original.budget_spent
            assert loaded.accuracy == original.accuracy


class TestSessionCheckpoint:
    def _session(self, factored, experts, **kwargs):
        from repro.simulation import OnlineCheckingSession

        return OnlineCheckingSession(
            factored, experts, budget=10,
            ground_truth={1: True, 2: False, 3: True, 4: False},
            **kwargs,
        )

    def test_mid_session_round_trip(self, factored):
        from repro.simulation import (
            OnlineCheckingSession,
            SimulatedExpertPanel,
        )

        experts = Crowd.from_accuracies([0.9, 0.95])
        truth = {1: True, 2: False, 3: True, 4: False}
        session = self._session(factored, experts)
        panel = SimulatedExpertPanel(truth, rng=1)
        queries = session.next_queries()
        session.submit(panel.collect(queries, experts))

        payload = session.to_checkpoint()
        json.dumps(payload)
        restored = OnlineCheckingSession.from_checkpoint(
            payload, experts
        )
        assert restored.spent_budget == session.spent_budget
        assert restored.pending_queries is None
        assert len(restored.history) == len(session.history)

        # The restored session keeps working.
        queries = restored.next_queries()
        restored.submit(panel.collect(queries, experts))
        assert restored.spent_budget > session.spent_budget

    def test_pending_queries_survive(self, factored):
        from repro.simulation import OnlineCheckingSession

        experts = Crowd.from_accuracies([0.9])
        session = self._session(factored, experts)
        pending = tuple(session.next_queries())
        restored = OnlineCheckingSession.from_checkpoint(
            session.to_checkpoint(), experts
        )
        assert restored.pending_queries == pending

    def test_malformed_checkpoint(self, factored):
        from repro.simulation import OnlineCheckingSession

        experts = Crowd.from_accuracies([0.9])
        with pytest.raises(SerializationError):
            OnlineCheckingSession.from_checkpoint({"nope": 1}, experts)


class TestFormatVersions:
    """v8 is written; v1–v7 payloads still read."""

    def test_payloads_are_tagged_v8(self, belief, factored):
        from repro.core import FORMAT_VERSION

        assert FORMAT_VERSION == 8
        assert belief_state_to_dict(belief)["version"] == 8
        assert factored_belief_to_dict(factored)["version"] == 8
        assert crowd_to_dict(Crowd.from_accuracies([0.9]))["version"] == 8

    def test_v2_payload_still_loads(self, belief):
        payload = belief_state_to_dict(belief)
        payload["version"] = 2  # what a v2 writer produced
        restored = belief_state_from_dict(payload)
        assert np.allclose(restored.probabilities, belief.probabilities)

    def test_v1_payload_without_version_still_loads(self, belief):
        payload = belief_state_to_dict(belief)
        del payload["version"]  # what a v1 writer produced
        restored = belief_state_from_dict(payload)
        assert np.allclose(restored.probabilities, belief.probabilities)

    def test_v1_round_record_without_fault_events_loads(self):
        from repro.core import round_record_from_dict

        record = round_record_from_dict(
            {
                "round_index": 0,
                "query_fact_ids": [1, 2],
                "cost": 4.0,
                "budget_spent": 4.0,
                "quality": -1.5,
            }
        )
        assert record.fault_events == ()

    def test_unsupported_version_rejected(self, belief):
        payload = belief_state_to_dict(belief)
        payload["version"] = 99
        with pytest.raises(SerializationError, match="version"):
            belief_state_from_dict(payload)

    def test_round_trip_is_bitwise_exact(self, factored):
        restored = factored_belief_from_dict(
            json.loads(json.dumps(factored_belief_to_dict(factored)))
        )
        for ours, theirs in zip(restored, factored):
            assert np.array_equal(ours.probabilities, theirs.probabilities)

    def test_fault_event_round_trip(self):
        from repro.core import (
            FaultEvent,
            fault_event_from_dict,
            fault_event_to_dict,
        )

        event = FaultEvent(
            kind="no_show",
            round_index=3,
            attempt=1,
            worker_id="e0",
            fact_ids=(1, 2),
            detail="vanished",
        )
        restored = fault_event_from_dict(
            json.loads(json.dumps(fault_event_to_dict(event)))
        )
        assert restored == event

    def test_run_result_round_trips_fault_events(self, factored):
        from repro.core import (
            FaultEvent,
            RoundRecord,
            RunResult,
        )

        record = RoundRecord(
            round_index=0,
            query_fact_ids=(1,),
            cost=2.0,
            budget_spent=2.0,
            quality=-1.0,
            accuracy=None,
            fault_events=(
                FaultEvent(kind="timeout", round_index=0, fact_ids=(1,)),
            ),
        )
        result = RunResult(belief=factored, history=[record])
        restored = run_result_from_dict(
            json.loads(json.dumps(run_result_to_dict(result)))
        )
        assert restored.history[0].fault_events[0].kind == "timeout"


class TestJournal:
    def test_append_and_read(self, tmp_path):
        from repro.core import append_journal_record, read_journal

        path = tmp_path / "j.jsonl"
        append_journal_record(path, {"kind": "header", "version": 2})
        append_journal_record(path, {"kind": "event", "event": {"kind": "x"}})
        records = read_journal(path)
        assert [record["kind"] for record in records] == ["header", "event"]

    def test_records_need_a_kind(self, tmp_path):
        from repro.core import append_journal_record

        with pytest.raises(SerializationError, match="kind"):
            append_journal_record(tmp_path / "j.jsonl", {"data": 1})

    def test_torn_final_line_is_dropped(self, tmp_path):
        from repro.core import append_journal_record, read_journal

        path = tmp_path / "j.jsonl"
        append_journal_record(path, {"kind": "header", "version": 2})
        append_journal_record(path, {"kind": "checkpoint", "n": 1})
        with path.open("a") as handle:
            handle.write('{"kind": "checkpoint", "n": 2, "tr')  # crash
        records = read_journal(path)
        assert len(records) == 2
        assert records[-1]["n"] == 1

    def test_corrupt_middle_line_raises(self, tmp_path):
        from repro.core import read_journal

        path = tmp_path / "j.jsonl"
        path.write_text(
            '{"kind": "header", "version": 2}\n'
            "not json at all\n"
            '{"kind": "checkpoint"}\n'
        )
        with pytest.raises(SerializationError, match="line 2"):
            read_journal(path)

    def test_journal_requires_header(self, tmp_path):
        from repro.core import read_journal

        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "checkpoint"}\n')
        with pytest.raises(SerializationError, match="header"):
            read_journal(path)

    def test_journal_rejects_newer_version(self, tmp_path):
        from repro.core import read_journal

        path = tmp_path / "j.jsonl"
        path.write_text('{"kind": "header", "version": 99}\n')
        with pytest.raises(SerializationError, match="version"):
            read_journal(path)


class TestAtomicWriteJson:
    def test_writes_readable_json(self, tmp_path):
        from repro.core import atomic_write_json

        path = atomic_write_json({"a": 1}, tmp_path / "deep" / "out.json")
        assert json.loads(path.read_text()) == {"a": 1}

    def test_leaves_no_temp_files_behind(self, tmp_path):
        from repro.core import atomic_write_json

        atomic_write_json({"a": 1}, tmp_path / "out.json")
        atomic_write_json({"a": 2}, tmp_path / "out.json")
        assert sorted(entry.name for entry in tmp_path.iterdir()) == [
            "out.json"
        ]

    def test_failed_write_preserves_the_old_file(self, tmp_path):
        from repro.core import atomic_write_json

        path = tmp_path / "out.json"
        atomic_write_json({"a": 1}, path)
        with pytest.raises(TypeError):
            atomic_write_json({"bad": object()}, path)
        assert json.loads(path.read_text()) == {"a": 1}
        assert sorted(entry.name for entry in tmp_path.iterdir()) == [
            "out.json"
        ]


class TestJournalRepair:
    def _journal(self, tmp_path):
        from repro.core import append_journal_record

        path = tmp_path / "j.jsonl"
        append_journal_record(path, {"kind": "header", "version": 4})
        append_journal_record(path, {"kind": "checkpoint", "n": 1})
        append_journal_record(path, {"kind": "event", "n": 2})
        return path

    def test_intact_journal_untouched(self, tmp_path):
        from repro.core import repair_journal

        path = self._journal(tmp_path)
        before = path.read_bytes()
        assert repair_journal(path) is False
        assert path.read_bytes() == before

    def test_unterminated_tail_removed(self, tmp_path):
        from repro.core import repair_journal

        path = self._journal(tmp_path)
        before = path.read_bytes()
        with path.open("ab") as handle:
            handle.write(b'{"kind": "event", "n": 3, "tr')
        assert repair_journal(path) is True
        assert path.read_bytes() == before

    def test_terminated_but_corrupt_final_line_removed(self, tmp_path):
        from repro.core import repair_journal

        path = self._journal(tmp_path)
        before = path.read_bytes()
        with path.open("ab") as handle:
            handle.write(b'{"kind": "event", "n": 3, "tr\n')
        assert repair_journal(path) is True
        assert path.read_bytes() == before

    def test_append_after_repair_continues_cleanly(self, tmp_path):
        """The reason repair exists: without it the next append glues
        onto the torn fragment and corrupts the merged line."""
        from repro.core import (
            append_journal_record,
            read_journal,
            repair_journal,
        )

        path = self._journal(tmp_path)
        with path.open("ab") as handle:
            handle.write(b'{"kind": "event", "n": 3, "tr')
        repair_journal(path)
        append_journal_record(path, {"kind": "event", "n": 3})
        assert [record["kind"] for record in read_journal(path)] == [
            "header",
            "checkpoint",
            "event",
            "event",
        ]

    def test_missing_file_is_a_noop(self, tmp_path):
        from repro.core import repair_journal

        assert repair_journal(tmp_path / "absent.jsonl") is False


class TestTrimToLastCheckpoint:
    def test_trailing_events_after_checkpoint_removed(self, tmp_path):
        from repro.core import (
            append_journal_record,
            read_journal,
            trim_journal_to_last_checkpoint,
        )

        path = tmp_path / "j.jsonl"
        append_journal_record(path, {"kind": "header", "version": 4})
        append_journal_record(path, {"kind": "checkpoint", "n": 1})
        append_journal_record(path, {"kind": "event", "n": 2})
        append_journal_record(path, {"kind": "checkpoint", "n": 3})
        append_journal_record(path, {"kind": "event", "n": 4})
        append_journal_record(path, {"kind": "event", "n": 5})
        removed = trim_journal_to_last_checkpoint(path)
        assert removed > 0
        assert [record["n"] for record in read_journal(path)[1:]] == [1, 2, 3]

    def test_journal_ending_on_checkpoint_untouched(self, tmp_path):
        from repro.core import (
            append_journal_record,
            trim_journal_to_last_checkpoint,
        )

        path = tmp_path / "j.jsonl"
        append_journal_record(path, {"kind": "header", "version": 4})
        append_journal_record(path, {"kind": "checkpoint", "n": 1})
        before = path.read_bytes()
        assert trim_journal_to_last_checkpoint(path) == 0
        assert path.read_bytes() == before

    def test_records_before_first_checkpoint_survive(self, tmp_path):
        """The engine record sits between header and first checkpoint;
        trimming must never drop it."""
        from repro.core import (
            append_journal_record,
            read_journal,
            trim_journal_to_last_checkpoint,
        )

        path = tmp_path / "j.jsonl"
        append_journal_record(path, {"kind": "header", "version": 4})
        append_journal_record(path, {"kind": "engine", "jobs": 3})
        append_journal_record(path, {"kind": "checkpoint", "n": 1})
        append_journal_record(path, {"kind": "event", "n": 2})
        trim_journal_to_last_checkpoint(path)
        assert [record["kind"] for record in read_journal(path)] == [
            "header",
            "engine",
            "checkpoint",
        ]
