"""Unit tests for JSON serialization and session checkpointing."""

import json

import numpy as np
import pytest

from repro.core import (
    BeliefState,
    Crowd,
    Fact,
    FactSet,
    FactoredBelief,
    SerializationError,
    belief_state_from_dict,
    belief_state_to_dict,
    crowd_from_dict,
    crowd_to_dict,
    factored_belief_from_dict,
    factored_belief_to_dict,
    load_belief,
    load_run_result,
    run_result_from_dict,
    run_result_to_dict,
    save_belief,
    save_run_result,
)


@pytest.fixture
def belief():
    facts = FactSet(
        [
            Fact(fact_id=1, instance_id="t1", label="positive",
                 text="Great!"),
            Fact(fact_id=2, instance_id="t2", label="positive"),
        ]
    )
    return BeliefState.from_marginals(facts, [0.7, 0.3])


@pytest.fixture
def factored(belief):
    other = BeliefState.uniform(FactSet.from_ids([3, 4]))
    return FactoredBelief([belief, other])


class TestBeliefRoundTrip:
    def test_belief_state(self, belief):
        payload = belief_state_to_dict(belief)
        json.dumps(payload)  # must be JSON-compatible
        restored = belief_state_from_dict(payload)
        assert restored.facts == belief.facts
        assert np.allclose(restored.probabilities, belief.probabilities)

    def test_fact_metadata_preserved(self, belief):
        restored = belief_state_from_dict(belief_state_to_dict(belief))
        fact = restored.facts.by_id(1)
        assert fact.instance_id == "t1"
        assert fact.text == "Great!"

    def test_factored_belief(self, factored):
        restored = factored_belief_from_dict(
            factored_belief_to_dict(factored)
        )
        assert restored.fact_ids == factored.fact_ids
        for original, loaded in zip(factored, restored):
            assert np.allclose(
                original.probabilities, loaded.probabilities
            )

    def test_file_round_trip(self, factored, tmp_path):
        path = save_belief(factored, tmp_path / "nested" / "belief.json")
        restored = load_belief(path)
        assert restored.fact_ids == factored.fact_ids

    def test_malformed_payload(self):
        with pytest.raises(SerializationError):
            factored_belief_from_dict({"groups": []})
        with pytest.raises(SerializationError):
            belief_state_from_dict({"probabilities": [1.0]})


class TestCrowdRoundTrip:
    def test_round_trip(self):
        crowd = Crowd.from_accuracies([0.6, 0.95], prefix="x")
        restored = crowd_from_dict(crowd_to_dict(crowd))
        assert restored == crowd

    def test_malformed(self):
        with pytest.raises(SerializationError):
            crowd_from_dict({})


class TestRunResultRoundTrip:
    def _run(self, factored):
        from repro.core import HierarchicalCrowdsourcing
        from repro.simulation import SimulatedExpertPanel

        experts = Crowd.from_accuracies([0.9, 0.95])
        panel = SimulatedExpertPanel(
            {1: True, 2: False, 3: True, 4: False}, rng=0
        )
        return HierarchicalCrowdsourcing(experts, k=1).run(
            factored, panel, budget=8,
            ground_truth={1: True, 2: False, 3: True, 4: False},
        )

    def test_round_trip(self, factored, tmp_path):
        result = self._run(factored)
        path = save_run_result(result, tmp_path / "run.json")
        restored = load_run_result(path)
        assert len(restored.history) == len(result.history)
        assert restored.history[-1].quality == pytest.approx(
            result.history[-1].quality
        )
        assert restored.final_labels == result.final_labels

    def test_history_fields_preserved(self, factored):
        result = self._run(factored)
        restored = run_result_from_dict(run_result_to_dict(result))
        for original, loaded in zip(result.history, restored.history):
            assert loaded.round_index == original.round_index
            assert loaded.query_fact_ids == original.query_fact_ids
            assert loaded.budget_spent == original.budget_spent
            assert loaded.accuracy == original.accuracy


class TestSessionCheckpoint:
    def _session(self, factored, experts, **kwargs):
        from repro.simulation import OnlineCheckingSession

        return OnlineCheckingSession(
            factored, experts, budget=10,
            ground_truth={1: True, 2: False, 3: True, 4: False},
            **kwargs,
        )

    def test_mid_session_round_trip(self, factored):
        from repro.simulation import (
            OnlineCheckingSession,
            SimulatedExpertPanel,
        )

        experts = Crowd.from_accuracies([0.9, 0.95])
        truth = {1: True, 2: False, 3: True, 4: False}
        session = self._session(factored, experts)
        panel = SimulatedExpertPanel(truth, rng=1)
        queries = session.next_queries()
        session.submit(panel.collect(queries, experts))

        payload = session.to_checkpoint()
        json.dumps(payload)
        restored = OnlineCheckingSession.from_checkpoint(
            payload, experts
        )
        assert restored.spent_budget == session.spent_budget
        assert restored.pending_queries is None
        assert len(restored.history) == len(session.history)

        # The restored session keeps working.
        queries = restored.next_queries()
        restored.submit(panel.collect(queries, experts))
        assert restored.spent_budget > session.spent_budget

    def test_pending_queries_survive(self, factored):
        from repro.simulation import OnlineCheckingSession

        experts = Crowd.from_accuracies([0.9])
        session = self._session(factored, experts)
        pending = tuple(session.next_queries())
        restored = OnlineCheckingSession.from_checkpoint(
            session.to_checkpoint(), experts
        )
        assert restored.pending_queries == pending

    def test_malformed_checkpoint(self, factored):
        from repro.simulation import OnlineCheckingSession

        experts = Crowd.from_accuracies([0.9])
        with pytest.raises(SerializationError):
            OnlineCheckingSession.from_checkpoint({"nope": 1}, experts)
