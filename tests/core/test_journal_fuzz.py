"""Seeded fuzzing of the journal readers and repair helpers.

Crash recovery rests on three small functions —
:func:`~repro.core.serialization.read_journal`,
:func:`~repro.core.serialization.repair_journal` and
:func:`~repro.core.serialization.trim_journal_to_last_checkpoint` —
holding their contracts against whatever a kill leaves on disk.  The
properties fuzzed here (derandomized, so CI failures replay exactly):

* a mid-record truncation of the tail is survivable: ``read_journal``
  ignores the torn final line, ``repair_journal`` removes it and is
  idempotent;
* on *legacy* (v7, unframed) journals duplicated or reordered body
  lines never crash the reader (each line is still a record), while on
  framed (v8) journals the same damage is *detected* — the sequence
  numbers make reorder/duplication corruption rather than noise — and
  :func:`~repro.storage.integrity.recover_journal` salvages the
  verified prefix;
* corruption of an interior line raises ``SerializationError`` rather
  than silently skipping;
* after ``trim_journal_to_last_checkpoint`` the journal ends on a
  checkpoint whenever one exists, the trim is idempotent, and a
  checkpoint-free journal is untouched.

The deeper storage-fault fuzzing (bit-flips, CRC mismatches, sequence
gaps, sidecar flows) lives in ``tests/storage/test_recover_fuzz.py``.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.serialization import (
    FORMAT_VERSION,
    SerializationError,
    append_journal_record,
    read_journal,
    repair_journal,
    trim_journal_to_last_checkpoint,
)

BODY_KINDS = ("metadata", "round", "checkpoint", "incident", "final")


def _record(kind: str, index: int) -> dict:
    return {"kind": kind, "index": index, "payload": {"value": index * 3}}


def _write_journal(
    path: Path, kinds: list[str], version: int = FORMAT_VERSION
) -> list[dict]:
    records = [{"kind": "header", "version": version}]
    records += [_record(kind, index) for index, kind in enumerate(kinds)]
    for record in records:
        append_journal_record(path, record)
    return records


journal_kinds = st.lists(st.sampled_from(BODY_KINDS), min_size=1, max_size=12)

FUZZ = settings(
    derandomize=True,
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_truncated_tail_is_ignored_then_repaired(kinds, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fuzz.jsonl"
        records = _write_journal(path, kinds)
        raw = path.read_bytes()
        header_len = raw.index(b"\n") + 1
        # cut anywhere after the header line, possibly mid-record
        cut = data.draw(
            st.integers(header_len, len(raw) - 1), label="cut"
        )
        path.write_bytes(raw[:cut])
        # pre-repair: the torn final line is silently dropped
        survivors = read_journal(path)
        assert survivors == records[: len(survivors)]
        # repair removes the torn bytes; the reread agrees
        changed = repair_journal(path)
        assert changed == (raw[:cut].rfind(b"\n") != cut - 1)
        assert read_journal(path) == survivors
        # idempotent: nothing further to remove
        before = path.read_bytes()
        assert not repair_journal(path)
        assert path.read_bytes() == before


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_duplicated_and_reordered_body_lines_still_read(kinds, data):
    # Unframed legacy journals carry no sequence numbers, so the reader
    # deliberately tolerates duplicated / reordered body lines — each
    # line is still a record.  Pinned to version 7: the framed reader
    # *rejects* this damage (see the framed counterpart below).
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fuzz.jsonl"
        _write_journal(path, kinds, version=7)
        lines = path.read_bytes().splitlines(keepends=True)
        header, body = lines[0], lines[1:]
        duplicated = data.draw(
            st.integers(0, len(body) - 1), label="duplicated"
        )
        body.insert(duplicated, body[duplicated])
        shuffled = data.draw(st.permutations(body), label="shuffled")
        path.write_bytes(header + b"".join(shuffled))
        records = read_journal(path)
        assert records[0]["kind"] == "header"
        assert len(records) == len(shuffled) + 1
        # every surviving record is one of the originals, bit for bit
        originals = {line for line in body}
        assert all(
            json.dumps(record, separators=(",", ":")).encode() + b"\n"
            in originals
            for record in records[1:]
        )


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_framed_duplication_and_reorder_detected_and_salvaged(kinds, data):
    # On a framed journal the same damage is corruption: the reader
    # raises, and recovery keeps exactly the records before the first
    # out-of-sequence line.
    from repro.storage.integrity import recover_journal

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fuzz.jsonl"
        records = _write_journal(path, kinds)
        lines = path.read_bytes().splitlines(keepends=True)
        header, body = lines[0], lines[1:]
        duplicated = data.draw(
            st.integers(0, len(body) - 1), label="duplicated"
        )
        body.insert(duplicated, body[duplicated])
        shuffled = data.draw(st.permutations(body), label="shuffled")
        path.write_bytes(header + b"".join(shuffled))
        # a duplicated seq means the numbering can never be contiguous
        # from 0, so detection is guaranteed somewhere in the body
        with pytest.raises(SerializationError):
            read_journal(path)
        report = recover_journal(path)
        assert not report.clean
        assert any(
            entry.kind in ("seq_gap", "seq_duplicate")
            for entry in report.damage
        )
        survivors = read_journal(path)
        assert survivors == records[: len(survivors)]
        assert report.sidecar is not None and report.sidecar.exists()


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_interior_corruption_raises_rather_than_skips(kinds, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fuzz.jsonl"
        _write_journal(path, kinds)
        lines = path.read_bytes().splitlines(keepends=True)
        victim = data.draw(
            st.integers(0, len(lines) - 2), label="victim"
        )
        lines[victim] = b'{"kind": tor\n'
        path.write_bytes(b"".join(lines))
        with pytest.raises(SerializationError):
            read_journal(path)


@FUZZ
@given(kinds=journal_kinds, data=st.data())
def test_trim_lands_on_the_last_checkpoint(kinds, data):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fuzz.jsonl"
        records = _write_journal(path, kinds)
        raw = path.read_bytes()
        header_len = raw.index(b"\n") + 1
        cut = data.draw(st.integers(header_len, len(raw)), label="cut")
        path.write_bytes(raw[:cut])
        repair_journal(path)
        removed = trim_journal_to_last_checkpoint(path)
        assert removed >= 0
        survivors = read_journal(path)
        assert survivors == records[: len(survivors)]
        if any(record["kind"] == "checkpoint" for record in survivors):
            assert survivors[-1]["kind"] == "checkpoint"
        else:
            # checkpoint-free journals are left exactly as repaired
            assert removed == 0
        # idempotent: a second trim removes nothing
        before = path.read_bytes()
        assert trim_journal_to_last_checkpoint(path) == 0
        assert path.read_bytes() == before
