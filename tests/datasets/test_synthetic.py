"""Unit tests for the synthetic dataset generator."""

import numpy as np
import pytest

from repro.datasets import (
    WorkerPoolSpec,
    make_synthetic_dataset,
    make_worker_pool,
    sample_correlated_group_truth,
)


class TestWorkerPoolSpec:
    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(preliminary_accuracy=(0.9, 0.6))
        with pytest.raises(ValueError):
            WorkerPoolSpec(expert_accuracy=(0.9, 1.2))

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            WorkerPoolSpec(num_preliminary=0)


class TestMakeWorkerPool:
    def test_pool_size_and_ranges(self, rng):
        spec = WorkerPoolSpec(
            num_preliminary=10,
            num_expert=4,
            preliminary_accuracy=(0.6, 0.8),
            expert_accuracy=(0.9, 0.95),
        )
        crowd = make_worker_pool(spec, rng)
        assert len(crowd) == 14
        accuracies = crowd.accuracies
        experts = accuracies[accuracies >= 0.9]
        preliminary = accuracies[accuracies < 0.9]
        assert len(experts) == 4
        assert len(preliminary) == 10
        assert np.all(preliminary >= 0.6) and np.all(preliminary <= 0.8)


class TestSampleCorrelatedGroupTruth:
    def test_shape_and_type(self, rng):
        truths = sample_correlated_group_truth(5, rng)
        assert truths.shape == (5,)
        assert truths.dtype == bool

    def test_low_concentration_correlates(self):
        """Small Beta concentration -> groups lean all-true/all-false."""
        rng = np.random.default_rng(0)
        agreement = 0
        trials = 400
        for _trial in range(trials):
            truths = sample_correlated_group_truth(
                2, rng, concentration=0.2
            )
            agreement += truths[0] == truths[1]
        # Independent coins would agree ~50%; correlated far more.
        assert agreement / trials > 0.65

    def test_invalid_concentration(self, rng):
        with pytest.raises(ValueError):
            sample_correlated_group_truth(3, rng, concentration=0.0)


class TestMakeSyntheticDataset:
    def test_structure(self):
        dataset = make_synthetic_dataset(
            num_groups=7, group_size=3, answers_per_fact=5, seed=1
        )
        assert dataset.num_groups == 7
        assert dataset.num_facts == 21
        assert dataset.annotations.num_annotations == 21 * 5
        assert all(len(group) == 3 for group in dataset.groups)

    def test_fact_ids_consecutive(self):
        dataset = make_synthetic_dataset(num_groups=3, group_size=2, seed=0)
        assert dataset.fact_ids == list(range(6))

    def test_answers_per_fact_respected(self):
        dataset = make_synthetic_dataset(
            num_groups=4, group_size=2, answers_per_fact=6, seed=2
        )
        assert np.all(dataset.annotations.answers_per_task() == 6)

    def test_no_duplicate_worker_per_fact(self):
        dataset = make_synthetic_dataset(num_groups=4, group_size=2, seed=3)
        seen = set()
        for annotation in dataset.annotations.annotations:
            key = (annotation.task, annotation.worker)
            assert key not in seen
            seen.add(key)

    def test_seed_reproducibility(self):
        a = make_synthetic_dataset(num_groups=3, group_size=2, seed=42)
        b = make_synthetic_dataset(num_groups=3, group_size=2, seed=42)
        assert a.ground_truth == b.ground_truth
        assert a.annotations.annotations == b.annotations.annotations
        assert a.crowd == b.crowd

    def test_different_seeds_differ(self):
        a = make_synthetic_dataset(num_groups=5, group_size=3, seed=1)
        b = make_synthetic_dataset(num_groups=5, group_size=3, seed=2)
        assert a.ground_truth != b.ground_truth

    def test_answer_noise_matches_worker_accuracy(self):
        """Across a large dataset, each worker's empirical accuracy must
        match their nominal accuracy (the section II-A error model)."""
        dataset = make_synthetic_dataset(
            num_groups=400, group_size=5, answers_per_fact=8, seed=5
        )
        truth = dataset.truth_vector()
        correct = np.zeros(len(dataset.crowd))
        total = np.zeros(len(dataset.crowd))
        for annotation in dataset.annotations.annotations:
            total[annotation.worker] += 1
            correct[annotation.worker] += int(
                annotation.label == truth[annotation.task]
            )
        with np.errstate(invalid="ignore"):
            empirical = correct / total
        nominal = dataset.crowd.accuracies
        mask = total > 100
        assert np.all(np.abs(empirical[mask] - nominal[mask]) < 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            make_synthetic_dataset(num_groups=0)
        with pytest.raises(ValueError):
            make_synthetic_dataset(answers_per_fact=0)
        with pytest.raises(ValueError, match="pool size"):
            make_synthetic_dataset(
                answers_per_fact=100,
                pool=WorkerPoolSpec(num_preliminary=5, num_expert=1),
            )
