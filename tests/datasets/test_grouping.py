"""Unit tests for repro.datasets.grouping."""

import numpy as np
import pytest

from repro.aggregation import MajorityVote, make_aggregator
from repro.core import FactSet
from repro.datasets import (
    build_factored_belief,
    group_tasks,
    initialize_belief,
    initialize_belief_from_matrix,
)


class TestGroupTasks:
    def test_even_split(self):
        groups = group_tasks(list(range(10)), 5)
        assert len(groups) == 2
        assert groups[0].fact_ids == (0, 1, 2, 3, 4)

    def test_ragged_tail(self):
        groups = group_tasks(list(range(7)), 3)
        assert [len(group) for group in groups] == [3, 3, 1]

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            group_tasks([1, 2], 0)


class TestBuildFactoredBelief:
    def test_marginals_respected(self):
        groups = group_tasks([0, 1, 2, 3], 2)
        probabilities = np.array([0.9, 0.2, 0.5, 0.7])
        belief = build_factored_belief(groups, probabilities, smoothing=0.01)
        for fact_id, expected in enumerate(probabilities):
            assert belief.marginal(fact_id) == pytest.approx(expected)

    def test_smoothing_applied(self):
        groups = group_tasks([0, 1], 2)
        belief = build_factored_belief(
            groups, np.array([1.0, 0.0]), smoothing=0.02
        )
        assert belief.marginal(0) == pytest.approx(0.98)
        assert belief.marginal(1) == pytest.approx(0.02)

    def test_group_structure_preserved(self):
        groups = group_tasks(list(range(6)), 3)
        belief = build_factored_belief(groups, np.full(6, 0.5))
        assert len(belief) == 2
        assert belief.group_index_of(4) == 1


class TestInitializeBelief:
    def test_pipeline_on_dataset(self, small_dataset):
        belief, result = initialize_belief(
            small_dataset, MajorityVote(smoothing=1.0), theta=0.9
        )
        assert belief.num_facts == small_dataset.num_facts
        assert result.posteriors.shape[0] == small_dataset.num_facts

    def test_initialization_is_reasonably_accurate(self, small_dataset):
        _belief, result = initialize_belief(
            small_dataset, make_aggregator("EBCC"), theta=0.9
        )
        accuracy = result.accuracy(small_dataset.truth_vector())
        assert accuracy > 0.75

    def test_belief_map_matches_aggregator_predictions(self, small_dataset):
        belief, result = initialize_belief(
            small_dataset, MajorityVote(smoothing=1.0), theta=0.9
        )
        labels = belief.map_labels()
        predictions = result.predictions
        agreement = np.mean(
            [labels[f] == bool(predictions[f]) for f in sorted(labels)]
        )
        # The product-form belief preserves per-fact MAP decisions except
        # at exact 0.5 ties.
        assert agreement > 0.95

    def test_all_experts_theta_rejected(self, small_dataset):
        with pytest.raises(ValueError, match="no preliminary"):
            initialize_belief(small_dataset, MajorityVote(), theta=0.0)


class TestInitializeBeliefFromMatrix:
    def test_explicit_matrix(self, small_dataset):
        matrix = small_dataset.preliminary_annotations(0.9)
        belief, result = initialize_belief_from_matrix(
            small_dataset.groups, matrix, MajorityVote(smoothing=1.0)
        )
        assert belief.num_facts == small_dataset.num_facts
        assert result.posteriors.shape == (small_dataset.num_facts, 2)
