"""Unit tests for the multi-class binary-fact decomposition."""

import numpy as np
import pytest

from repro.core import FactSet, FactoredBelief
from repro.datasets import (
    build_one_hot_belief,
    class_accuracy,
    decode_class_labels,
    make_multiclass_dataset,
    one_hot_belief,
)


class TestMakeMulticlassDataset:
    def test_structure(self):
        dataset = make_multiclass_dataset(
            num_tasks=10, num_classes=4, seed=0
        )
        assert dataset.num_groups == 10
        assert all(len(group) == 4 for group in dataset.groups)
        assert dataset.metadata["num_classes"] == 4
        assert len(dataset.metadata["class_truth"]) == 10

    def test_exactly_one_true_fact_per_group(self):
        dataset = make_multiclass_dataset(
            num_tasks=25, num_classes=5, seed=1
        )
        for group in dataset.groups:
            trues = sum(
                dataset.ground_truth[fact.fact_id] for fact in group
            )
            assert trues == 1

    def test_true_fact_matches_class_truth(self):
        dataset = make_multiclass_dataset(
            num_tasks=15, num_classes=3, seed=2
        )
        for group_index, group in enumerate(dataset.groups):
            truth_class = dataset.metadata["class_truth"][group_index]
            for class_index, fact in enumerate(group):
                assert dataset.ground_truth[fact.fact_id] == (
                    class_index == truth_class
                )

    def test_class_names_on_facts(self):
        dataset = make_multiclass_dataset(
            num_tasks=3, num_classes=3,
            class_names=("cat", "dog", "bird"), seed=0,
        )
        labels = [fact.label for fact in dataset.groups[0]]
        assert labels == ["cat", "dog", "bird"]

    def test_validation(self):
        with pytest.raises(ValueError):
            make_multiclass_dataset(num_tasks=0)
        with pytest.raises(ValueError):
            make_multiclass_dataset(num_classes=1)
        with pytest.raises(ValueError, match="one class name"):
            make_multiclass_dataset(num_classes=3, class_names=("a",))


class TestOneHotBelief:
    def test_support_is_one_hot_only(self):
        group = FactSet.from_ids([0, 1, 2])
        belief = one_hot_belief(group, [0.5, 0.3, 0.2])
        for state in range(8):
            mass = belief.probabilities[state]
            if state in (1, 2, 4):
                assert mass > 0
            else:
                assert mass == 0.0

    def test_scores_become_class_prior(self):
        group = FactSet.from_ids([0, 1])
        belief = one_hot_belief(group, [3.0, 1.0], smoothing=0.0)
        assert belief.probabilities[1] == pytest.approx(0.75)
        assert belief.probabilities[2] == pytest.approx(0.25)

    def test_marginals_sum_to_one(self):
        group = FactSet.from_ids([0, 1, 2, 3])
        belief = one_hot_belief(group, [1, 2, 3, 4])
        assert belief.marginals().sum() == pytest.approx(1.0)

    def test_validation(self):
        group = FactSet.from_ids([0, 1])
        with pytest.raises(ValueError, match="one score"):
            one_hot_belief(group, [0.5])
        with pytest.raises(ValueError, match="non-negative"):
            one_hot_belief(group, [-1.0, 0.5])


class TestDecodeAndAccuracy:
    def test_decode_picks_max_marginal(self):
        group = FactSet.from_ids([0, 1, 2])
        belief = FactoredBelief([one_hot_belief(group, [0.2, 0.7, 0.1])])
        assert decode_class_labels(belief) == [1]

    def test_class_accuracy(self):
        groups = [FactSet.from_ids([0, 1]), FactSet.from_ids([2, 3])]
        belief = FactoredBelief(
            [
                one_hot_belief(groups[0], [0.9, 0.1]),
                one_hot_belief(groups[1], [0.2, 0.8]),
            ]
        )
        assert class_accuracy(belief, [0, 1]) == 1.0
        assert class_accuracy(belief, [1, 1]) == 0.5

    def test_class_accuracy_length_mismatch(self):
        group = FactSet.from_ids([0, 1])
        belief = FactoredBelief([one_hot_belief(group, [1, 1])])
        with pytest.raises(ValueError):
            class_accuracy(belief, [0, 1])


class TestEndToEnd:
    def test_one_hot_constraint_propagates_negative_answers(self):
        """Hearing 'No' on one class must raise the other classes'
        posteriors — the correlation the decomposition exists for."""
        from repro.core import AnswerFamily, AnswerSet, Worker, \
            update_with_family

        group = FactSet.from_ids([0, 1, 2])
        belief = one_hot_belief(group, [1.0, 1.0, 1.0])
        expert = Worker("e", 0.95)
        family = AnswerFamily(
            answer_sets=(
                AnswerSet(worker=expert, answers={0: False}),
            )
        )
        posterior = update_with_family(belief, family)
        assert posterior.marginal(0) < belief.marginal(0)
        assert posterior.marginal(1) > belief.marginal(1)
        assert posterior.marginal(2) > belief.marginal(2)

    def test_checking_improves_class_accuracy(self):
        from repro.aggregation import make_aggregator
        from repro.core import GreedySelector, HierarchicalCrowdsourcing
        from repro.datasets import make_multiclass_dataset
        from repro.simulation import SimulatedExpertPanel

        dataset = make_multiclass_dataset(
            num_tasks=15, num_classes=3, seed=5
        )
        result = make_aggregator("DS").fit(
            dataset.preliminary_annotations(0.9)
        )
        belief = build_one_hot_belief(dataset, result.posteriors[:, 1])
        initial = class_accuracy(belief, dataset.metadata["class_truth"])

        experts, _ = dataset.split_crowd(0.9)
        runner = HierarchicalCrowdsourcing(
            experts, selector=GreedySelector(), k=1
        )
        panel = SimulatedExpertPanel(dataset.ground_truth, rng=5)
        run = runner.run(belief, panel, budget=90)
        final = class_accuracy(
            run.belief, dataset.metadata["class_truth"]
        )
        assert final >= initial
