"""Unit tests for the dataset diagnostics."""

import pytest

from repro.datasets import (
    describe_dataset,
    format_summary,
    make_sentiment_dataset,
    make_synthetic_dataset,
)


@pytest.fixture(scope="module")
def summary():
    dataset = make_sentiment_dataset(num_groups=20, seed=0)
    return describe_dataset(dataset, theta=0.9)


class TestDescribeDataset:
    def test_counts(self, summary):
        assert summary.num_facts == 100
        assert summary.num_groups == 20
        assert summary.group_sizes == {5: 20}
        assert summary.num_annotations == 800

    def test_redundancy(self, summary):
        assert summary.answers_per_fact_mean == pytest.approx(8.0)
        assert summary.answers_per_fact_min == 8
        assert summary.answers_per_fact_max == 8

    def test_accuracy_range(self, summary):
        assert 0.5 < summary.accuracy_min < summary.accuracy_mean
        assert summary.accuracy_mean < summary.accuracy_max <= 1.0

    def test_tiering_partition(self, summary):
        assert (
            summary.experts_at_theta + summary.preliminary_at_theta
            == summary.num_workers
        )

    def test_empirical_noise_tracks_mean_accuracy(self, summary):
        """Annotation accuracy should sit near the pool's mean accuracy
        (weighted by who answered)."""
        assert summary.empirical_annotation_accuracy == pytest.approx(
            summary.accuracy_mean, abs=0.08
        )

    def test_within_group_agreement_shows_correlation(self, summary):
        assert summary.within_group_agreement > 0.55

    def test_independent_truths_agree_at_half(self):
        dataset = make_synthetic_dataset(
            num_groups=150,
            group_size=4,
            answers_per_fact=3,
            correlation_concentration=1000.0,  # ~independent coins
            seed=1,
        )
        summary = describe_dataset(dataset)
        assert summary.within_group_agreement == pytest.approx(0.5, abs=0.06)

    def test_single_fact_groups_agreement_nan(self):
        import math

        dataset = make_synthetic_dataset(
            num_groups=10, group_size=1, answers_per_fact=3, seed=2
        )
        summary = describe_dataset(dataset)
        assert math.isnan(summary.within_group_agreement)

    def test_to_dict_drops_metadata(self, summary):
        data = summary.to_dict()
        assert "metadata" not in data
        assert data["num_facts"] == 100


class TestFormatSummary:
    def test_report_lines(self, summary):
        text = format_summary(summary)
        assert "facts:" in text
        assert "tiering:" in text
        assert "label noise:" in text
        assert "20x5" in text
        assert "0.50 = independent" in text
