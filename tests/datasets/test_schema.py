"""Unit tests for repro.datasets.schema."""

import numpy as np
import pytest

from repro.aggregation import AnswerMatrix
from repro.core import Crowd, FactSet
from repro.datasets import CrowdLabelingDataset, accuracy_of_labels


def _tiny_dataset() -> CrowdLabelingDataset:
    groups = [FactSet.from_ids([0, 1]), FactSet.from_ids([2, 3])]
    crowd = Crowd.from_accuracies([0.7, 0.8, 0.95])
    annotations = AnswerMatrix(
        [(0, 0, 1), (0, 1, 1), (1, 0, 0), (2, 2, 1), (3, 1, 0)],
        num_tasks=4,
        num_workers=3,
        num_classes=2,
    )
    truth = {0: True, 1: False, 2: True, 3: False}
    return CrowdLabelingDataset(
        groups=groups, crowd=crowd, annotations=annotations,
        ground_truth=truth, name="tiny",
    )


class TestCrowdLabelingDataset:
    def test_basic_views(self):
        dataset = _tiny_dataset()
        assert dataset.num_facts == 4
        assert dataset.num_groups == 2
        assert dataset.fact_ids == [0, 1, 2, 3]

    def test_truth_vector(self):
        dataset = _tiny_dataset()
        assert list(dataset.truth_vector()) == [1, 0, 1, 0]

    def test_worker_column(self):
        dataset = _tiny_dataset()
        assert dataset.worker_column("w1") == 1
        with pytest.raises(KeyError):
            dataset.worker_column("nope")

    def test_split_crowd(self):
        dataset = _tiny_dataset()
        experts, preliminary = dataset.split_crowd(0.9)
        assert len(experts) == 1
        assert len(preliminary) == 2

    def test_preliminary_annotations_excludes_experts(self):
        dataset = _tiny_dataset()
        cp_matrix = dataset.preliminary_annotations(0.9)
        expert_column = dataset.worker_column("w2")
        assert all(
            a.worker != expert_column for a in cp_matrix.annotations
        )
        assert cp_matrix.num_annotations == 4

    def test_subsample_annotations(self):
        dataset = _tiny_dataset()
        sub = dataset.subsample_annotations(3, rng=0)
        assert sub.num_annotations == 3
        assert sub.num_tasks == dataset.annotations.num_tasks

    def test_subsample_capped_at_total(self):
        dataset = _tiny_dataset()
        sub = dataset.subsample_annotations(100, rng=0)
        assert sub.num_annotations == dataset.annotations.num_annotations

    def test_missing_ground_truth_rejected(self):
        groups = [FactSet.from_ids([0, 1])]
        crowd = Crowd.from_accuracies([0.7])
        annotations = AnswerMatrix(
            [(0, 0, 1)], num_tasks=2, num_workers=1, num_classes=2
        )
        with pytest.raises(ValueError, match="ground truth missing"):
            CrowdLabelingDataset(
                groups=groups, crowd=crowd, annotations=annotations,
                ground_truth={0: True},
            )

    def test_row_count_mismatch_rejected(self):
        groups = [FactSet.from_ids([0])]
        crowd = Crowd.from_accuracies([0.7])
        annotations = AnswerMatrix(
            [(0, 0, 1)], num_tasks=3, num_workers=1, num_classes=2
        )
        with pytest.raises(ValueError, match="one task row per fact"):
            CrowdLabelingDataset(
                groups=groups, crowd=crowd, annotations=annotations,
                ground_truth={0: True},
            )

    def test_worker_count_mismatch_rejected(self):
        groups = [FactSet.from_ids([0])]
        crowd = Crowd.from_accuracies([0.7, 0.8])
        annotations = AnswerMatrix(
            [(0, 0, 1)], num_tasks=1, num_workers=1, num_classes=2
        )
        with pytest.raises(ValueError, match="one column per crowd"):
            CrowdLabelingDataset(
                groups=groups, crowd=crowd, annotations=annotations,
                ground_truth={0: True},
            )

    def test_duplicate_fact_ids_rejected(self):
        groups = [FactSet.from_ids([0]), FactSet.from_ids([0])]
        crowd = Crowd.from_accuracies([0.7])
        annotations = AnswerMatrix(
            [(0, 0, 1)], num_tasks=2, num_workers=1, num_classes=2
        )
        with pytest.raises(ValueError, match="unique"):
            CrowdLabelingDataset(
                groups=groups, crowd=crowd, annotations=annotations,
                ground_truth={0: True},
            )


class TestAccuracyOfLabels:
    def test_mapping_input(self):
        truth = {0: True, 1: False}
        assert accuracy_of_labels({0: True, 1: True}, truth) == 0.5

    def test_sequence_input(self):
        truth = {0: True, 1: False}
        assert accuracy_of_labels([1, 0], truth) == 1.0

    def test_ignores_unknown_facts(self):
        truth = {0: True}
        assert accuracy_of_labels({0: True, 9: False}, truth) == 1.0

    def test_no_overlap_raises(self):
        with pytest.raises(ValueError):
            accuracy_of_labels({5: True}, {0: True})
