"""Unit tests for the sentiment stand-in corpus."""

import pytest

from repro.datasets import make_sentiment_dataset


class TestMakeSentimentDataset:
    def test_paper_shape_defaults(self):
        dataset = make_sentiment_dataset(num_groups=10, seed=0)
        assert dataset.num_groups == 10
        assert all(len(group) == 5 for group in dataset.groups)
        assert dataset.name == "sentiment"

    def test_every_fact_has_text(self):
        dataset = make_sentiment_dataset(num_groups=5, seed=0)
        for group in dataset.groups:
            for fact in group:
                assert fact.text

    def test_group_shares_company(self):
        dataset = make_sentiment_dataset(num_groups=4, seed=0)
        companies = dataset.metadata["companies"]
        for group in dataset.groups:
            mentioned = {
                company
                for company in companies
                for fact in group
                if company in fact.text
            }
            assert len(mentioned) == 1

    def test_text_sentiment_matches_truth(self):
        """Positive-truth tweets use positive templates and vice versa —
        the texts are a rendering of the ground truth."""
        dataset = make_sentiment_dataset(num_groups=20, seed=1)
        positive_markers = ("amazing", "resolved", "exceeded", "respect",
                            "recommending")
        negative_markers = ("rude", "broken", "Avoid", "slower", "regret")
        for group in dataset.groups:
            for fact in group:
                truth = dataset.ground_truth[fact.fact_id]
                markers = positive_markers if truth else negative_markers
                assert any(marker in fact.text for marker in markers)

    def test_statistics_match_synthetic_generator(self):
        """Texts are attached on top of the same generation process; the
        answers and truths must be identical to the base generator's."""
        from repro.datasets import make_synthetic_dataset

        sentiment = make_sentiment_dataset(num_groups=6, seed=9)
        base = make_synthetic_dataset(
            num_groups=6, group_size=5, answers_per_fact=8, seed=9
        )
        assert sentiment.ground_truth == base.ground_truth
        assert sentiment.annotations.annotations == base.annotations.annotations

    def test_query_text_readable(self):
        dataset = make_sentiment_dataset(num_groups=2, seed=0)
        query = dataset.groups[0][0].query_text()
        assert "positive" in query
        assert "?" in query
