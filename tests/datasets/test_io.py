"""Unit tests for the benchmark-format dataset I/O."""

import numpy as np
import pytest

from repro.datasets import (
    estimate_worker_accuracies,
    load_dataset,
    make_synthetic_dataset,
    read_answer_file,
    read_truth_file,
    save_dataset,
)


@pytest.fixture
def dataset():
    return make_synthetic_dataset(
        num_groups=6, group_size=5, answers_per_fact=4, seed=8
    )


class TestRoundTrip:
    def test_save_creates_both_files(self, dataset, tmp_path):
        answer_path, truth_path = save_dataset(dataset, tmp_path)
        assert answer_path.exists()
        assert truth_path.exists()

    def test_answers_round_trip(self, dataset, tmp_path):
        answer_path, _ = save_dataset(dataset, tmp_path)
        annotations, worker_ids = read_answer_file(answer_path)
        assert len(annotations) == dataset.annotations.num_annotations
        assert set(worker_ids) <= set(dataset.crowd.worker_ids)

    def test_truth_round_trip(self, dataset, tmp_path):
        _, truth_path = save_dataset(dataset, tmp_path)
        truth = read_truth_file(truth_path)
        assert truth == dataset.ground_truth

    def test_load_dataset_reconstructs(self, dataset, tmp_path):
        answer_path, truth_path = save_dataset(dataset, tmp_path)
        loaded = load_dataset(
            answer_path, truth_path, group_size=5, name="reloaded"
        )
        assert loaded.num_facts == dataset.num_facts
        assert loaded.ground_truth == dataset.ground_truth
        assert (
            loaded.annotations.num_annotations
            == dataset.annotations.num_annotations
        )

    def test_load_with_known_accuracies(self, dataset, tmp_path):
        answer_path, truth_path = save_dataset(dataset, tmp_path)
        known = {worker.worker_id: worker.accuracy
                 for worker in dataset.crowd}
        loaded = load_dataset(
            answer_path, truth_path, worker_accuracies=known
        )
        for worker in loaded.crowd:
            assert worker.accuracy == pytest.approx(known[worker.worker_id])

    def test_load_estimates_accuracies_sanely(self, dataset, tmp_path):
        answer_path, truth_path = save_dataset(dataset, tmp_path)
        loaded = load_dataset(answer_path, truth_path)
        true_by_id = {w.worker_id: w.accuracy for w in dataset.crowd}
        for worker in loaded.crowd:
            assert 0.0 <= worker.accuracy <= 1.0
        # Workers with many answers should be estimated within ~0.25.
        answers_by_worker = {}
        for annotation in dataset.annotations.annotations:
            worker_id = dataset.crowd.worker_ids[annotation.worker]
            answers_by_worker[worker_id] = (
                answers_by_worker.get(worker_id, 0) + 1
            )
        for worker in loaded.crowd:
            if answers_by_worker.get(worker.worker_id, 0) >= 10:
                assert abs(
                    worker.accuracy - true_by_id[worker.worker_id]
                ) < 0.25


class TestMalformedFiles:
    def test_answer_file_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="question, worker, answer"):
            read_answer_file(path)

    def test_truth_file_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("question,label\n0,1\n")
        with pytest.raises(ValueError, match="question, truth"):
            read_truth_file(path)


class TestEstimateWorkerAccuracies:
    def test_matches_empirical_rate(self, dataset):
        estimates = estimate_worker_accuracies(
            dataset.annotations,
            dataset.ground_truth,
            list(dataset.crowd.worker_ids),
            smoothing=0.0,
        )
        truth = dataset.truth_vector()
        for column, worker_id in enumerate(dataset.crowd.worker_ids):
            answers = [
                a for a in dataset.annotations.annotations
                if a.worker == column
            ]
            if not answers:
                continue
            empirical = np.mean(
                [a.label == truth[a.task] for a in answers]
            )
            assert estimates[worker_id] == pytest.approx(empirical)
