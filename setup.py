"""Setup shim for environments without the `wheel` package (offline PEP 660
editable installs fail there); `python setup.py develop` works instead."""
from setuptools import setup

setup()
