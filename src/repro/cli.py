"""Command-line interface: ``python -m repro <command>``.

Commands
--------
generate
    Write a synthetic sentiment dataset as ``answer.csv``/``truth.csv``.
describe
    Print summary statistics of a dataset directory.
aggregate
    Run a truth-inference method on an answer file and report accuracy.
session
    Run the full HC pipeline on a dataset directory and print the
    budget/accuracy/quality trajectory.
serve
    Host many campaigns at once on the multi-tenant campaign service
    (shared budget pool, admission control, weighted-fair scheduling)
    and print the per-tenant service report.  ``--stream`` runs each
    campaign from a delivered event log with backpressure.
stream
    Run one streamed campaign: seeded event-log delivery (optionally
    degraded by chaos), watermark admission, incremental group
    formation, and exactly-once journal resume via ``--resume``.
metrics
    Pretty-print a ``--metrics-out`` JSON snapshot: per-phase latency
    attribution (select/collect/update/commit/journal/scheduler-wait,
    p50/p95/p99) and counter totals.
reproduce
    Regenerate the paper's figures and Table III (delegates to
    :mod:`repro.experiments.reproduce`).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from .aggregation import available_aggregators, make_aggregator
from .datasets import load_dataset, make_sentiment_dataset, save_dataset
from .datasets.synthetic import WorkerPoolSpec
from .simulation import SessionConfig, run_hc_session


def _cmd_generate(args: argparse.Namespace) -> int:
    pool = WorkerPoolSpec(
        num_preliminary=args.preliminary_workers,
        num_expert=args.expert_workers,
    )
    dataset = make_sentiment_dataset(
        num_groups=args.groups,
        group_size=args.group_size,
        answers_per_fact=args.answers,
        pool=pool,
        seed=args.seed,
    )
    answer_path, truth_path = save_dataset(dataset, args.out)
    print(f"wrote {answer_path} ({dataset.annotations.num_annotations} "
          f"annotations) and {truth_path} ({dataset.num_facts} facts)")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .datasets import describe_dataset, format_summary

    dataset = load_dataset(
        Path(args.data) / "answer.csv",
        Path(args.data) / "truth.csv",
        group_size=args.group_size,
    )
    print(format_summary(describe_dataset(dataset, theta=args.theta)))
    return 0


def _cmd_aggregate(args: argparse.Namespace) -> int:
    dataset = load_dataset(
        Path(args.data) / "answer.csv",
        Path(args.data) / "truth.csv",
        group_size=args.group_size,
    )
    aggregator = make_aggregator(args.method)
    result = aggregator.fit(dataset.annotations)
    accuracy = result.accuracy(dataset.truth_vector())
    print(f"{aggregator.name}: accuracy {accuracy:.4f} "
          f"({result.iterations} iterations, "
          f"converged={result.converged})")
    return 0


def _start_observability(args: argparse.Namespace) -> None:
    """Enable tracing/metrics when any consumer flag was given.

    Observability never perturbs a run (no RNG, no journal bytes — see
    :mod:`repro.obs`), so enabling is purely additive; with no flag
    the hot paths keep their single disabled-check cost.  ``serve
    --health-every`` needs the registry populated even without a
    snapshot destination — the health line reads p95 round latency
    from it.
    """
    if (
        args.metrics_out
        or args.trace_out
        or getattr(args, "health_every", 0)
    ):
        from .obs import OBS

        OBS.enable(trace_path=args.trace_out)


def _finish_observability(args: argparse.Namespace) -> None:
    if args.metrics_out or args.trace_out:
        from .obs import OBS

        OBS.flush(args.metrics_out)
        if args.metrics_out:
            print(f"metrics snapshot: {args.metrics_out}")
        if args.trace_out:
            print(f"trace: {args.trace_out}")


def _cmd_metrics(args: argparse.Namespace) -> int:
    """Pretty-print a ``--metrics-out`` snapshot."""
    from .obs import (
        format_report,
        latency_report,
        load_snapshot,
        render_prometheus,
    )

    try:
        snapshot = load_snapshot(args.snapshot)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.prometheus:
        print(render_prometheus(snapshot), end="")
        return 0
    print(format_report(latency_report(snapshot)))
    counters = {
        name: sum(series["value"] for series in family["series"])
        for name, family in sorted(snapshot["metrics"].items())
        if family["type"] == "counter"
    }
    if counters:
        print("counters:")
        for name, total in counters.items():
            print(f"  {name:<44} {total:,.0f}")
    return 0


def _cmd_session(args: argparse.Namespace) -> int:
    from .simulation import FaultModel

    _start_observability(args)
    dataset = load_dataset(
        Path(args.data) / "answer.csv",
        Path(args.data) / "truth.csv",
        group_size=args.group_size,
    )
    faults = (
        FaultModel.parse(args.faults, seed=args.seed)
        if args.faults
        else None
    )
    trust_policy = None
    if args.trust:
        from .core.trust import TrustPolicy

        trust_policy = TrustPolicy(
            probe_rate=args.probe_rate,
            quarantine_lcb=args.quarantine_lcb,
            seed=args.seed,
        )
    from .core.selection import make_selector

    jobs = args.jobs or 1
    if jobs > 1 and args.selector != "lazy":
        print(
            "error: --jobs shards the lazy-greedy selector itself; "
            "other --selector choices only run serially",
            file=sys.stderr,
        )
        return 2
    selector = make_selector(args.selector, seed=args.seed)
    if args.attach:
        result = _attach_session(args, dataset, faults)
        if result is None:
            return 2
    elif args.resume:
        result = _resume_session(args, dataset, faults, selector, jobs=jobs)
    else:
        config = SessionConfig(
            theta=args.theta,
            k=args.k,
            budget=args.budget,
            initializer=args.initializer,
            seed=args.seed,
            faults=faults,
            journal_path=args.journal,
            trust_policy=trust_policy,
            belief_epsilon=_belief_epsilon(args),
        )
        if jobs > 1:
            from .engine import ParallelCampaignRunner

            runner = ParallelCampaignRunner(
                dataset, config, jobs=jobs, policy=_shard_policy(args)
            )
            result = runner.run()
            _print_supervisor_stats(runner.supervisor_stats)
        else:
            result = run_hc_session(dataset, config, selector=selector)
    stats = getattr(selector, "stats", None)
    if stats is not None and args.selector_stats:
        print(
            f"selector[{args.selector}]: rounds={stats.rounds} "
            f"evaluations={stats.total_evaluations} "
            f"(scalar={stats.entropy_evaluations}, "
            f"batch={stats.batch_evaluations} over {stats.batch_facts} "
            f"facts, heap_pops={stats.heap_pops})"
        )
    trust = getattr(result, "trust", None)
    if trust is not None:
        print(
            f"trust: quarantines={trust.quarantines} "
            f"readmissions={trust.readmissions}"
        )
        for summary in trust.workers:
            print(
                f"  {summary.worker_id}: declared {summary.declared:.3f}, "
                f"posterior {summary.mean:.3f} "
                f"(lcb {summary.lcb:.3f}, {summary.observations:.1f} obs, "
                f"breaker {summary.breaker_state})"
            )
    incidents = getattr(result, "incidents", None)
    if incidents:
        by_kind: dict[str, int] = {}
        for event in incidents:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
        summary = ", ".join(
            f"{kind}={count}" for kind, count in sorted(by_kind.items())
        )
        print(f"incidents: {summary}")
    if getattr(result, "halted", False):
        print("session halted early (retries exhausted)")
    print(f"{'budget':>8}  {'accuracy':>8}  {'quality':>10}")
    step = max(1, len(result.history) // args.rows)
    records = result.history[::step]
    if records[-1] is not result.history[-1]:
        records.append(result.history[-1])
    for record in records:
        print(f"{record.budget_spent:8.0f}  {record.accuracy:8.4f}  "
              f"{record.quality:10.2f}")
    _finish_observability(args)
    return 0


def _shard_policy(args: argparse.Namespace):
    """Supervision policy for the sharded engine: environment defaults
    (``REPRO_SHARD_*``) with the command line's flags on top."""
    from .engine import SupervisionPolicy

    return SupervisionPolicy.from_env().with_overrides(
        _supervision_overrides(args)
    )


def _supervision_overrides(args: argparse.Namespace) -> dict:
    overrides: dict = {}
    if args.shard_deadline is not None:
        overrides["deadline"] = args.shard_deadline
    if args.max_shard_restarts is not None:
        overrides["max_restarts"] = args.max_shard_restarts
    if args.no_failover:
        overrides["failover"] = False
    return overrides


def _print_supervisor_stats(stats: dict | None) -> None:
    if stats and any(stats.values()):
        summary = ", ".join(
            f"{name}={count}" for name, count in stats.items() if count
        )
        print(f"supervisor: {summary}")


def _resume_session(
    args: argparse.Namespace, dataset, faults, selector=None, jobs: int = 1
):
    """Restore a crashed ``session --journal`` run and drive it on."""
    import numpy as np

    from .simulation import (
        FaultyExpertPanel,
        ResilientCheckingSession,
        SimulatedExpertPanel,
    )

    answer_source = SimulatedExpertPanel(
        dataset.ground_truth, rng=np.random.default_rng(args.seed)
    )
    if faults is not None:
        answer_source = FaultyExpertPanel(answer_source, faults)
    if jobs > 1:
        from .engine import resume_parallel_session

        # ``jobs=None`` restores the journaled shard layout (including
        # any failover-degraded slices) and the engine record's
        # supervision settings; the flags below override the latter.
        session, pool = resume_parallel_session(
            args.resume,
            supervision_overrides=_supervision_overrides(args),
        )
        with pool:
            result = session.run(answer_source)
        _print_supervisor_stats(pool.supervisor_stats())
        return result
    session = ResilientCheckingSession.resume(args.resume, selector=selector)
    return session.run(answer_source)


def _attach_session(args: argparse.Namespace, dataset, faults):
    """Re-admit a detached service campaign and drive it to completion.

    Unlike ``--resume`` (which rebuilds the session in-process), the
    journal goes back through a one-shot :class:`CampaignService`
    attach: identity comes from the journal's ``tenant`` record, the
    pre-crash spending is committed to the fresh pool, and the rest of
    the campaign runs under service scheduling — the same path a
    long-lived deployment takes after a restart.
    """
    from .core.serialization import read_journal
    from .service import CampaignService, CampaignSpec

    records = read_journal(args.attach)
    header = records[0]
    identities = [
        record for record in records if record.get("kind") == "tenant"
    ]
    if not identities:
        print(
            f"error: {args.attach} has no tenant record — it is not a "
            "service journal; use --resume instead",
            file=sys.stderr,
        )
        return None
    identity = identities[-1]
    config = SessionConfig(
        theta=args.theta,
        k=int(header["k"]),
        budget=float(header["budget_total"]),
        initializer=args.initializer,
        seed=args.seed,
        faults=faults,
        journal_path=args.attach,
    )
    spec = CampaignSpec(
        tenant=identity["tenant"],
        name=identity["name"],
        dataset=dataset,
        config=config,
        jobs=args.jobs or 1,
        priority=int(identity.get("priority", 0)),
        weight=identity.get("weight"),
    )
    with CampaignService(float(header["budget_total"])) as service:
        handle = service.attach(spec)
        service.run_until_idle()
        print(
            f"attached {handle.campaign_id}: "
            f"{handle.rounds} rounds, spent {handle.spent:.0f} "
            f"({handle.status.value})"
        )
        return service.result(handle)


def _cmd_stream(args: argparse.Namespace) -> int:
    """Run (or resume) a streamed campaign over a dataset's event log."""
    from .stream import (
        StreamChaos,
        StreamingCampaign,
        StreamSpec,
        generate_event_stream,
        make_arrivals,
    )

    _start_observability(args)
    dataset = load_dataset(
        Path(args.data) / "answer.csv",
        Path(args.data) / "truth.csv",
        group_size=args.group_size,
    )
    def events_for(spec: StreamSpec):
        return generate_event_stream(
            dataset,
            theta=spec.theta,
            votes_per_fact=spec.votes_per_fact,
            arrivals=make_arrivals(spec.arrival, spec.rate),
            seed=spec.seed,
            churn_rate=spec.churn,
            window=spec.window,
        )

    if args.resume:
        from .core.serialization import read_journal

        records = read_journal(args.resume)
        config_record = next(
            (
                record
                for record in records
                if record.get("kind") == "stream"
            ),
            None,
        )
        if config_record is None:
            print(
                f"error: {args.resume} has no stream config record — "
                "not a streamed-campaign journal",
                file=sys.stderr,
            )
            return 2
        spec = StreamSpec.from_dict(config_record.get("config", {}))
        campaign = StreamingCampaign.resume(
            args.resume,
            events_for(spec),
            experts=dataset.split_crowd(spec.theta)[0],
        )
    else:
        chaos = (
            StreamChaos.parse(args.chaos, seed=args.seed)
            if args.chaos
            else StreamChaos.from_env()
        )
        spec = StreamSpec(
            arrival=args.arrival,
            rate=args.rate,
            theta=args.theta,
            votes_per_fact=args.votes_per_fact,
            group_size=args.stream_group_size,
            target_votes=args.target_votes,
            allowed_lateness=args.allowed_lateness,
            straggler_timeout=args.straggler_timeout,
            rounds_per_event=args.rounds_per_event,
            churn=args.churn,
            seed=args.seed,
            chaos=chaos,
            belief_epsilon=_belief_epsilon(args),
        )
        experts, _preliminary = dataset.split_crowd(spec.theta)
        if len(experts) == 0:
            print(
                f"error: no worker reaches theta={spec.theta}; cannot "
                "form the checking panel CE",
                file=sys.stderr,
            )
            return 2
        campaign = StreamingCampaign(
            events_for(spec),
            experts,
            args.budget,
            spec=spec,
            journal_path=args.journal,
            k=args.k,
        )
    stats = campaign.run()
    print(
        f"stream: {stats['admitted']} admitted of {stats['deliveries']} "
        f"deliveries ({stats['duplicates']} duplicates, "
        f"{stats['late_admitted']} late, {stats['late_dropped']} dropped)"
    )
    print(
        f"groups: {stats['groups_sealed']} sealed "
        f"({stats['forced_seals']} forced), {stats['out_of_band']} "
        f"out-of-band updates, churn {stats['joins']} joins / "
        f"{stats['leaves']} leaves"
    )
    result = campaign.result()
    if result is None:
        print("no group ever sealed; nothing was checked")
        _finish_observability(args)
        return 0
    final = result.history[-1]
    print(
        f"checking: {max(0, len(result.history) - 1)} rounds, "
        f"spent {final.budget_spent:.0f}, accuracy {final.accuracy:.4f}"
    )
    _finish_observability(args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run a fleet of campaigns through the multi-tenant service."""
    from .service import (
        CampaignService,
        CampaignSpec,
        ServiceError,
        ServicePolicy,
        TenantQuota,
    )

    _start_observability(args)
    dataset = load_dataset(
        Path(args.data) / "answer.csv",
        Path(args.data) / "truth.csv",
        group_size=args.group_size,
    )
    budget_pool = (
        args.budget_pool
        if args.budget_pool is not None
        else args.budget * args.campaigns
    )
    policy = ServicePolicy(
        slots=args.slots,
        queue_limit=args.queue_limit,
        round_deadline=args.round_deadline,
        max_strikes=args.max_strikes,
        supervision=_shard_policy(args),
    )
    default_quota = TenantQuota(
        max_active=args.quota_active, max_budget=args.quota_budget
    )
    with CampaignService(
        budget_pool,
        policy=policy,
        default_quota=default_quota,
        journal_root=args.journal_root,
    ) as service:
        stream_spec = None
        if args.stream:
            from .stream import StreamChaos, StreamSpec

            stream_spec = StreamSpec(
                rate=args.stream_rate,
                theta=args.theta,
                chaos=(
                    StreamChaos.parse(args.stream_chaos, seed=args.seed)
                    if args.stream_chaos
                    else StreamChaos.from_env()
                ),
                belief_epsilon=_belief_epsilon(args),
            )
        for index in range(args.campaigns):
            config = SessionConfig(
                theta=args.theta,
                k=args.k,
                budget=args.budget,
                initializer=args.initializer,
                seed=args.seed + index,
                belief_epsilon=_belief_epsilon(args),
            )
            spec = CampaignSpec(
                tenant=f"tenant-{index % args.tenants}",
                name=f"campaign-{index}",
                dataset=dataset,
                config=config,
                jobs=1 if args.stream else args.jobs,
                stream=(
                    None
                    if stream_spec is None
                    else dataclasses.replace(
                        stream_spec, seed=args.seed + index
                    )
                ),
            )
            try:
                service.submit(spec)
            except ServiceError as error:
                hint = getattr(error, "retry_after_rounds", 0)
                suffix = f" (retry after ~{hint} rounds)" if hint else ""
                print(f"rejected {spec.campaign_id}: {error}{suffix}")
        if args.health_every:
            rounds = 0
            while service.step() is not None:
                rounds += 1
                if rounds % args.health_every == 0:
                    print(service.health_summary())
        else:
            rounds = service.run_until_idle()
        stats = service.stats()
        print(f"served {rounds} rounds, {stats['completed']} campaigns "
              f"completed")
        print(f"{'campaign':<28}  {'status':<12} {'rounds':>6} "
              f"{'spent':>8} {'strikes':>7}")
        for campaign_id, entry in stats["campaigns"].items():
            print(f"{campaign_id:<28}  {entry['status']:<12} "
                  f"{entry['rounds']:>6} {entry['spent']:>8.0f} "
                  f"{entry['strikes']:>7}")
        admission = stats["admission"]
        print("admission: " + ", ".join(
            f"{name}={count}" for name, count in admission.items()
        ))
        ledger = stats["ledger"]
        print(f"ledger: committed {ledger['committed']:.0f} of "
              f"{ledger['total']:.0f}, "
              f"{ledger['open_reservations']} reservations open")
        if args.stream:
            print(f"backpressure: stream backlog "
                  f"{stats['stream_backlog']}, effective queue limit "
                  f"{stats['effective_queue_limit']}")
    _finish_observability(args)
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    import os

    from .experiments.reproduce import run_all

    # Supervision flags travel to the spawned experiment workers (and
    # any shard pools they build) through the environment — the same
    # hook SupervisionPolicy.from_env reads everywhere.
    if args.shard_deadline is not None:
        os.environ["REPRO_SHARD_DEADLINE"] = str(args.shard_deadline)
    if args.max_shard_restarts is not None:
        os.environ["REPRO_MAX_SHARD_RESTARTS"] = str(args.max_shard_restarts)
    if args.no_failover:
        os.environ["REPRO_SHARD_FAILOVER"] = "off"
    run_all(
        scale_name=args.scale,
        out_dir=args.out,
        only=args.only,
        jobs=args.jobs,
    )
    return 0


def _cmd_soak(args: argparse.Namespace) -> int:
    from .storage.soak import DEFAULT_STORAGE_CHAOS, SoakError, run_soak

    chaos_spec = (
        args.storage_chaos
        if args.storage_chaos is not None
        else DEFAULT_STORAGE_CHAOS
    )
    try:
        result = run_soak(
            minutes=args.minutes,
            kill_every=args.kill_every,
            seed=args.seed,
            tenants=args.tenants,
            chaos_spec=chaos_spec,
            out_dir=args.out,
            min_kills=args.min_kills,
        )
    except SoakError as error:
        print(f"SOAK FAILED: {error}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2))
    mttr = result["mttr_s"]
    print(
        f"soak ok: {result['waves']} waves, {result['kills']} kills "
        f"survived ({result['recoveries_per_min']:.1f} recoveries/min, "
        f"mean MTTR {mttr['mean'] * 1000.0:.0f} ms), "
        f"{result['records_verified']} records verified, "
        f"{result['bytes_salvaged']} bytes salvaged — "
        "every wave byte-identical to its uninterrupted reference",
        file=sys.stderr,
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic dataset to disk"
    )
    generate.add_argument("--out", default="data")
    generate.add_argument("--groups", type=int, default=200)
    generate.add_argument("--group-size", type=int, default=5)
    generate.add_argument("--answers", type=int, default=8)
    generate.add_argument("--preliminary-workers", type=int, default=40)
    generate.add_argument("--expert-workers", type=int, default=3)
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(handler=_cmd_generate)

    describe = commands.add_parser(
        "describe", help="print summary statistics of a dataset"
    )
    describe.add_argument("--data", default="data")
    describe.add_argument("--group-size", type=int, default=5)
    describe.add_argument("--theta", type=float, default=0.9)
    describe.set_defaults(handler=_cmd_describe)

    aggregate = commands.add_parser(
        "aggregate", help="run a truth-inference method on a dataset"
    )
    aggregate.add_argument("--data", default="data",
                           help="directory with answer.csv / truth.csv")
    aggregate.add_argument(
        "--method", default="EBCC",
        help=f"one of: {', '.join(available_aggregators())}",
    )
    aggregate.add_argument("--group-size", type=int, default=5)
    aggregate.set_defaults(handler=_cmd_aggregate)

    session = commands.add_parser(
        "session", help="run the full HC pipeline on a dataset"
    )
    session.add_argument("--data", default="data")
    session.add_argument("--theta", type=float, default=0.9)
    session.add_argument("--k", type=int, default=1)
    session.add_argument("--budget", type=float, default=1000)
    session.add_argument("--initializer", default="EBCC")
    session.add_argument("--seed", type=int, default=0)
    session.add_argument("--group-size", type=int, default=5)
    session.add_argument("--rows", type=int, default=12,
                         help="approximate number of trajectory rows")
    from .core.selection import SELECTOR_NAMES

    session.add_argument(
        "--selector", default="lazy", choices=SELECTOR_NAMES,
        help="checking-task selection engine (default: the CELF "
             "lazy greedy, which picks the same facts as 'greedy' "
             "with far fewer entropy evaluations)",
    )
    session.add_argument(
        "--jobs", "--shards", type=int, default=1, metavar="N",
        help="run the campaign on N shard workers (the sharded engine; "
             "results are bit-identical for any N)",
    )
    _add_supervision_arguments(session)
    _add_belief_epsilon_argument(session)
    _add_observability_arguments(session)
    session.add_argument(
        "--selector-stats", action="store_true",
        help="print the selector's evaluation counters after the run",
    )
    session.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="inject crowd faults and run the fault-tolerant loop, "
             "e.g. 'no_show=0.1,timeout=0.2,spam=0.05'",
    )
    session.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a crash-safe JSONL journal (enables --resume)",
    )
    session.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a crashed run from its journal instead of "
             "starting fresh",
    )
    session.add_argument(
        "--attach", default=None, metavar="PATH",
        help="re-admit a detached campaign-service journal (written by "
             "'repro serve') and drive it to completion",
    )
    session.add_argument(
        "--trust", action="store_true",
        help="enable online trust supervision (accuracy posteriors, "
             "gold probes, per-worker circuit breakers)",
    )
    session.add_argument(
        "--probe-rate", type=float, default=0.2,
        help="per-round probability of injecting a gold probe "
             "(with --trust)",
    )
    session.add_argument(
        "--quarantine-lcb", type=float, default=0.6,
        help="posterior-LCB threshold below which a worker's breaker "
             "trips (with --trust)",
    )
    session.set_defaults(handler=_cmd_session)

    serve = commands.add_parser(
        "serve",
        help="host many campaigns on the multi-tenant campaign service",
    )
    serve.add_argument("--data", default="data")
    serve.add_argument("--group-size", type=int, default=5)
    serve.add_argument("--theta", type=float, default=0.9)
    serve.add_argument("--k", type=int, default=1)
    serve.add_argument("--initializer", default="EBCC")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--campaigns", type=int, default=4, metavar="N",
        help="number of campaigns to submit (seeds seed..seed+N-1)",
    )
    serve.add_argument(
        "--tenants", type=int, default=2, metavar="N",
        help="spread the campaigns round-robin over N tenants",
    )
    serve.add_argument(
        "--budget", type=float, default=200,
        help="checking budget of each campaign",
    )
    serve.add_argument(
        "--budget-pool", type=float, default=None,
        help="shared ledger total backing all deposits "
             "(default: budget * campaigns)",
    )
    serve.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard workers per campaign pool",
    )
    serve.add_argument(
        "--slots", type=int, default=4,
        help="campaigns with a live shard pool at once",
    )
    serve.add_argument(
        "--queue-limit", type=int, default=16,
        help="bound on the pending admission queue",
    )
    serve.add_argument(
        "--round-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per campaign round before it costs a "
             "strike (default: unlimited)",
    )
    serve.add_argument(
        "--max-strikes", type=int, default=3,
        help="fault strikes before a campaign is quarantined",
    )
    serve.add_argument(
        "--quota-active", type=int, default=None, metavar="N",
        help="per-tenant cap on concurrently admitted campaigns",
    )
    serve.add_argument(
        "--quota-budget", type=float, default=None,
        help="per-tenant cap on summed admitted campaign budgets",
    )
    serve.add_argument(
        "--journal-root", default="service-journals",
        help="directory for campaign journals "
             "(journal_root/tenant/name.jsonl)",
    )
    serve.add_argument(
        "--stream", action="store_true",
        help="run each campaign as a streamed campaign (event-log "
             "delivery, incremental group formation, backpressure)",
    )
    serve.add_argument(
        "--stream-rate", type=float, default=50.0, metavar="EVENTS/S",
        help="arrival rate of each streamed campaign (with --stream)",
    )
    serve.add_argument(
        "--stream-chaos", default=None, metavar="SPEC",
        help="delivery degradation, e.g. 'reorder=0.2,stall=0.05' "
             "(with --stream; REPRO_STREAM_CHAOS is the env fallback)",
    )
    serve.add_argument(
        "--health-every", type=int, default=0, metavar="N",
        help="print a one-line service health summary (active/queued "
             "campaigns, shed count, p95 round latency) every N rounds",
    )
    _add_supervision_arguments(serve)
    _add_belief_epsilon_argument(serve)
    _add_observability_arguments(serve)
    serve.set_defaults(handler=_cmd_serve)

    stream = commands.add_parser(
        "stream",
        help="run one streamed campaign over a dataset's event log",
    )
    stream.add_argument("--data", default="data")
    stream.add_argument("--group-size", type=int, default=5)
    stream.add_argument("--theta", type=float, default=0.9)
    stream.add_argument("--k", type=int, default=1)
    stream.add_argument("--budget", type=float, default=1000)
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--arrival", default="poisson",
        choices=("poisson", "bursty", "stalled"),
        help="arrival-process shape of the event stream",
    )
    stream.add_argument(
        "--rate", type=float, default=50.0, metavar="EVENTS/S",
        help="target event arrival rate",
    )
    stream.add_argument(
        "--votes-per-fact", type=int, default=3,
        help="simulated preliminary votes per streamed fact",
    )
    stream.add_argument(
        "--stream-group-size", type=int, default=3, metavar="N",
        help="facts per incrementally sealed group",
    )
    stream.add_argument(
        "--target-votes", type=int, default=2,
        help="votes per fact before its group may seal normally",
    )
    stream.add_argument(
        "--allowed-lateness", type=float, default=2.0, metavar="SECONDS",
        help="watermark grace for out-of-order events",
    )
    stream.add_argument(
        "--straggler-timeout", type=float, default=20.0, metavar="SECONDS",
        help="event-time horizon forcing a partial group seal (and "
             "beyond which late events are dropped)",
    )
    stream.add_argument(
        "--rounds-per-event", type=int, default=1,
        help="checking rounds driven after each admitted event",
    )
    stream.add_argument(
        "--churn", type=float, default=0.0,
        help="per-slot probability of an expert leave/join event",
    )
    stream.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="delivery degradation, e.g. 'reorder=0.2,duplicate=0.1' "
             "(REPRO_STREAM_CHAOS is the env fallback)",
    )
    stream.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a crash-safe journal (required for --resume later)",
    )
    stream.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a killed streamed campaign from its journal "
             "(the stream config is read back from the journal)",
    )
    _add_belief_epsilon_argument(stream)
    _add_observability_arguments(stream)
    stream.set_defaults(handler=_cmd_stream)

    metrics = commands.add_parser(
        "metrics",
        help="pretty-print a --metrics-out snapshot (latency "
             "attribution and counters)",
    )
    metrics.add_argument(
        "snapshot", help="path to a JSON snapshot written by "
                         "--metrics-out",
    )
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="render the snapshot in Prometheus text exposition "
             "format instead",
    )
    metrics.set_defaults(handler=_cmd_metrics)

    reproduce = commands.add_parser(
        "reproduce", help="regenerate the paper's figures and tables"
    )
    reproduce.add_argument("--scale", default="small",
                           choices=("paper", "small"))
    reproduce.add_argument("--out", default="results")
    reproduce.add_argument("--only", nargs="*", default=None)
    reproduce.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan independent experiments across N worker processes",
    )
    _add_supervision_arguments(reproduce)
    reproduce.set_defaults(handler=_cmd_reproduce)

    soak = commands.add_parser(
        "soak",
        help="long-haul crash/recovery soak: streamed multi-tenant "
             "campaigns under storage+delivery chaos, killed and "
             "recovered on a seeded schedule",
    )
    soak.add_argument("--minutes", type=float, default=2.0,
                      help="approximate wall-clock budget (default 2)")
    soak.add_argument(
        "--kill-every", type=float, default=1.0, metavar="SECONDS",
        help="mean seconds between SIGKILLs of the campaign process "
             "(jittered ±50%%, default 1)",
    )
    soak.add_argument("--seed", type=int, default=0)
    soak.add_argument("--tenants", type=int, default=2,
                      help="streamed tenants per wave (default 2)")
    soak.add_argument(
        "--storage-chaos", default=None, metavar="SPEC",
        help="storage fault rates as 'action=rate,...' (actions: "
             "short_write, fsync_error, enospc, rename_error, bitflip; "
             "default: the built-in mixed profile)",
    )
    soak.add_argument(
        "--min-kills", type=int, default=5, metavar="N",
        help="keep running until at least N kill cycles were survived, "
             "time budget notwithstanding (default 5)",
    )
    soak.add_argument("--out", default="soak-artifacts",
                      help="artifact directory (default soak-artifacts)")
    soak.set_defaults(handler=_cmd_soak)

    return parser


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    """``--metrics-out``/``--trace-out`` shared by session/serve/stream."""
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write a JSON metrics snapshot at exit (.prom extension "
             "switches to Prometheus text format); render it later "
             "with 'repro metrics PATH'",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="append every span (select/collect/update/commit/journal "
             "timings and shard dispatches) as JSON lines to PATH",
    )


def _add_belief_epsilon_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--belief-epsilon", type=float, default=None, metavar="EPS",
        help="truncation budget of the sparse belief kernel, in [0, 1); "
             "0 keeps the exact dense kernel (default: the "
             "REPRO_BELIEF_EPSILON environment variable, else 0)",
    )


def _belief_epsilon(args: argparse.Namespace) -> float:
    """Resolve the flag; unset falls back to the environment default."""
    if args.belief_epsilon is None:
        from .core.kernel import default_belief_epsilon

        return default_belief_epsilon()
    value = float(args.belief_epsilon)
    if not 0.0 <= value < 1.0:
        raise SystemExit("error: --belief-epsilon must lie in [0, 1)")
    return value


def _add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    """Shard-supervision flags shared by ``session`` and ``reproduce``."""
    parser.add_argument(
        "--shard-deadline", type=float, default=None, metavar="SECONDS",
        help="seconds a shard worker may take to answer one command "
             "before it is declared hung and respawned (default 60)",
    )
    parser.add_argument(
        "--max-shard-restarts", type=int, default=None, metavar="N",
        help="in-place respawns granted per shard worker before its "
             "groups fail over to a surviving shard (default 2)",
    )
    parser.add_argument(
        "--no-failover", action="store_true",
        help="abort the campaign when a shard exhausts its restart "
             "budget instead of failing its groups over",
    )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
