"""Seeded fault injection for the durable-storage layer.

:mod:`repro.engine.chaos` degrades the shard *transport*;
:mod:`repro.stream.chaos` degrades event *delivery*.  This module goes
one layer further down and degrades the **disk**: a
:class:`StorageChaos` plan decides, per ``(path, write_index)``,
whether a journal append or checkpoint rewrite suffers a short write,
a failed fsync, ``ENOSPC``, a failed rename, or a silent interior
bit-flip.  The write paths in :mod:`repro.core.serialization` consult
the installed plan on every durable write, so chaos reaches *every*
journal in the process — session journals, tenant records, stream
checkpoints — without any call-site changes.

Draws are deterministic (``SeedSequence([seed, salt, crc32(path_key),
write_index])``), so a plan injects the same faults no matter how
tenants interleave, and an explicit ``schedule`` places single faults
surgically ("bit-flip the 7th write to ``acme/run.jsonl``").  The
``path_key`` is the last two path components, so plans survive tmpdir
relocation.

Like its siblings, the plan reads from the environment
(``REPRO_STORAGE_CHAOS`` / ``REPRO_STORAGE_CHAOS_SEED``) so a CI
matrix leg can run whole suites over a faulty disk; an explicit
:func:`install_storage_chaos` (including ``install_storage_chaos(None)``
to force-disable) always wins over the environment.
"""

from __future__ import annotations

import os
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping

import numpy as np

#: Injectable actions, in the order draws are checked.
STORAGE_CHAOS_ACTIONS = (
    "short_write",
    "fsync_error",
    "enospc",
    "rename_error",
    "bitflip",
)

#: Domain-separation salt so storage draws never collide with the
#: transport (no salt) or delivery (0x5C40) chaos streams.
_DRAW_SALT = 0xD15C


def chaos_path_key(path: "str | Path") -> str:
    """The plan-facing name of a write target.

    The last two components (``tenant/name.jsonl``) identify a journal
    across test tmpdirs and soak work directories, so schedules and
    seeded draws stay stable when the tree moves.
    """
    parts = Path(path).parts
    return "/".join(parts[-2:]) if len(parts) >= 2 else parts[-1]


@dataclass(frozen=True)
class StorageChaos:
    """Seeded configuration of durable-storage fault injection.

    Parameters
    ----------
    short_write, fsync_error, enospc, rename_error, bitflip:
        Per-write probabilities (mutually exclusive per draw, checked
        in that order) that the write lands only partially and errors,
        that the data lands but the fsync errors, that the write fails
        with ``ENOSPC``, that the atomic-replace rename errors, or that
        one bit of the payload is silently flipped on its way to disk.
        The first four raise ``OSError`` at the injection point — the
        write layer's retry/fail-stop machinery is what is under test.
        ``bitflip`` raises nothing: the corruption is only discoverable
        later, through the v8 CRC framing.
    seed:
        Seed of the per-``(path, write_index)`` draw streams.
    schedule:
        Explicit ``{(path_key, write_index): action}`` overrides;
        scheduled entries fire regardless of the rates.  ``path_key``
        is :func:`chaos_path_key` of the target.
    """

    short_write: float = 0.0
    fsync_error: float = 0.0
    enospc: float = 0.0
    rename_error: float = 0.0
    bitflip: float = 0.0
    seed: int = 0
    schedule: Mapping[tuple[str, int], str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        total = 0.0
        for name in STORAGE_CHAOS_ACTIONS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} rate must lie in [0, 1], got {rate}"
                )
            total += rate
        if total > 1.0 + 1e-12:
            raise ValueError(
                "storage chaos rates must not exceed 1 in total "
                "(they are mutually exclusive per-write actions)"
            )
        schedule = {}
        for key, action in dict(self.schedule).items():
            path_key, write_index = key
            if action not in STORAGE_CHAOS_ACTIONS:
                raise ValueError(
                    f"unknown storage chaos action {action!r}; expected "
                    f"one of {list(STORAGE_CHAOS_ACTIONS)}"
                )
            schedule[(str(path_key), int(write_index))] = action
        object.__setattr__(self, "schedule", schedule)

    @property
    def enabled(self) -> bool:
        return bool(self.schedule) or any(
            getattr(self, name) > 0.0 for name in STORAGE_CHAOS_ACTIONS
        )

    def action_for(self, path_key: str, write_index: int) -> str | None:
        """The action to inject for one write, or ``None``.

        Deterministic: the draw comes from its own
        ``SeedSequence([seed, salt, crc32(path_key), write_index])``
        stream, so the same plan injects the same faults no matter how
        writes to different journals interleave.
        """
        scheduled = self.schedule.get((path_key, write_index))
        if scheduled is not None:
            return scheduled
        if not any(
            getattr(self, name) > 0.0 for name in STORAGE_CHAOS_ACTIONS
        ):
            return None
        draw = np.random.default_rng(
            np.random.SeedSequence(
                [
                    int(self.seed),
                    _DRAW_SALT,
                    zlib.crc32(path_key.encode("utf-8")),
                    int(write_index),
                ]
            )
        ).random()
        threshold = 0.0
        for name in STORAGE_CHAOS_ACTIONS:
            threshold += getattr(self, name)
            if draw < threshold:
                return name
        return None

    def flip_bit(self, data: bytes, path_key: str, write_index: int) -> bytes:
        """``data`` with one deterministically-chosen bit flipped.

        The flipped position comes from the same seeded stream as the
        action draw (second value), restricted to the payload's
        interior so the line stays newline-terminated and the flip
        lands in the record body, not the trailing separator.
        """
        if len(data) < 2:
            return data
        draws = np.random.default_rng(
            np.random.SeedSequence(
                [
                    int(self.seed),
                    _DRAW_SALT,
                    zlib.crc32(path_key.encode("utf-8")),
                    int(write_index),
                ]
            )
        ).random(3)
        position = int(draws[1] * (len(data) - 1))
        bit = int(draws[2] * 8)
        corrupted = bytearray(data)
        corrupted[position] ^= 1 << bit
        return bytes(corrupted)

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "StorageChaos":
        """Build a plan from a ``name=rate,...`` CLI/env spec.

        Example: ``"short_write=0.05,fsync_error=0.02,bitflip=0.01"``.
        """
        # Imported lazily: this module sits below repro.core in the
        # import graph (serialization consults it on every append), so
        # it must not pull the simulation stack in at import time.
        from ..simulation.faults import parse_rate_spec

        rates = parse_rate_spec(spec, STORAGE_CHAOS_ACTIONS)
        return cls(seed=seed, **rates)

    @classmethod
    def from_env(cls, environ=None) -> "StorageChaos | None":
        """Plan from ``REPRO_STORAGE_CHAOS`` (+ seed), or ``None``."""
        env = os.environ if environ is None else environ
        spec = env.get("REPRO_STORAGE_CHAOS")
        if not spec:
            return None
        plan = cls.parse(
            spec, seed=int(env.get("REPRO_STORAGE_CHAOS_SEED", "0"))
        )
        return plan if plan.enabled else None


class StorageChaosState:
    """The installed plan plus its mutable per-path write counters.

    Write indices count every *attempt* (a retried append consumes a
    fresh index), so a transient fault does not re-fire forever, and
    they persist for the life of the installation — matching the
    transport layer's commands-survive-respawn semantics.
    """

    def __init__(self, plan: StorageChaos):
        self.plan = plan
        self._counters: dict[str, int] = {}
        self._lock = threading.Lock()
        #: Injections actually performed, by action name.
        self.injected: dict[str, int] = {}

    def next_action(self, path: "str | Path") -> tuple[str | None, str, int]:
        """Draw the action for the next write to ``path``.

        Returns ``(action, path_key, write_index)``; the index is
        consumed whether or not an action fires, keeping the draw
        stream aligned with the write stream.
        """
        key = chaos_path_key(path)
        with self._lock:
            index = self._counters.get(key, 0)
            self._counters[key] = index + 1
        action = self.plan.action_for(key, index)
        if action is not None:
            with self._lock:
                self.injected[action] = self.injected.get(action, 0) + 1
        return action, key, index

    def stats(self) -> dict:
        with self._lock:
            return {
                "writes": sum(self._counters.values()),
                "paths": len(self._counters),
                "injected": dict(self.injected),
            }


#: Sentinel distinguishing "nothing installed" (fall back to the
#: environment) from an explicit ``install_storage_chaos(None)``.
_UNSET = object()

_INSTALLED: "StorageChaosState | None | object" = _UNSET
_ENV_CACHE: tuple[str, str, StorageChaosState | None] | None = None
_INSTALL_LOCK = threading.Lock()


def install_storage_chaos(
    plan: "StorageChaos | None",
) -> "StorageChaosState | None":
    """Install ``plan`` process-wide; ``None`` force-disables.

    Returns the live state (counter/stat access for tests and the soak
    harness), or ``None`` when the plan is ``None`` or has no enabled
    action.  An installed plan — including the explicit ``None`` —
    always overrides ``REPRO_STORAGE_CHAOS``.
    """
    global _INSTALLED
    state = (
        StorageChaosState(plan)
        if plan is not None and plan.enabled
        else None
    )
    with _INSTALL_LOCK:
        _INSTALLED = state
    return state


def uninstall_storage_chaos() -> None:
    """Remove any installed plan (the environment applies again)."""
    global _INSTALLED
    with _INSTALL_LOCK:
        _INSTALLED = _UNSET


def active_storage_chaos() -> "StorageChaosState | None":
    """The state the write paths must consult, or ``None``.

    Explicit installation wins; otherwise the environment plan is
    parsed once per distinct ``(spec, seed)`` value and its state —
    including write counters — is reused across calls.
    """
    global _ENV_CACHE
    installed = _INSTALLED
    if installed is not _UNSET:
        return installed  # type: ignore[return-value]
    spec = os.environ.get("REPRO_STORAGE_CHAOS", "")
    if not spec:
        return None
    seed = os.environ.get("REPRO_STORAGE_CHAOS_SEED", "0")
    cached = _ENV_CACHE
    if cached is not None and cached[0] == spec and cached[1] == seed:
        return cached[2]
    plan = StorageChaos.parse(spec, seed=int(seed))
    state = StorageChaosState(plan) if plan.enabled else None
    _ENV_CACHE = (spec, seed, state)
    return state


@contextmanager
def storage_chaos(plan: "StorageChaos | None"):
    """Scoped installation: yields the state, restores the previous
    installation (or the environment fallback) on exit."""
    global _INSTALLED
    with _INSTALL_LOCK:
        previous = _INSTALLED
    state = install_storage_chaos(plan)
    try:
        yield state
    finally:
        with _INSTALL_LOCK:
            _INSTALLED = previous
