"""The durable-storage robustness layer.

Three pieces, layered bottom-up:

* :mod:`repro.storage.chaos` — seeded fault injection for the journal
  and checkpoint write paths (short writes, failed fsyncs, ``ENOSPC``,
  failed renames, silent bit-flips), installed process-wide or via
  ``REPRO_STORAGE_CHAOS``.
* :mod:`repro.storage.integrity` — :func:`verify_journal` /
  :func:`recover_journal` over the version-8 CRC + sequence framing:
  damage detection, longest-verified-prefix salvage, ``.damaged``
  sidecars, and typed :class:`JournalDamageReport` results.
* :mod:`repro.storage.soak` — the long-haul soak harness
  (``repro soak``): continuous multi-tenant streamed campaigns under
  combined storage + transport + delivery chaos with whole-process
  SIGKILL cycles, recovered and byte-verified against an uninterrupted
  reference.

The chaos module is import-light (the serialization core consults it
on every append); integrity and soak are re-exported lazily so
importing :mod:`repro.core` never recurses back through this package.
"""

from __future__ import annotations

from .chaos import (
    STORAGE_CHAOS_ACTIONS,
    StorageChaos,
    StorageChaosState,
    active_storage_chaos,
    chaos_path_key,
    install_storage_chaos,
    storage_chaos,
    uninstall_storage_chaos,
)

__all__ = [
    "STORAGE_CHAOS_ACTIONS",
    "StorageChaos",
    "StorageChaosState",
    "active_storage_chaos",
    "chaos_path_key",
    "install_storage_chaos",
    "storage_chaos",
    "uninstall_storage_chaos",
    # lazily re-exported from .integrity / .soak:
    "JournalDamage",
    "JournalDamageReport",
    "verify_journal",
    "recover_journal",
    "run_soak",
    "SoakError",
]

_LAZY = {
    "JournalDamage": "integrity",
    "JournalDamageReport": "integrity",
    "verify_journal": "integrity",
    "recover_journal": "integrity",
    "run_soak": "soak",
    "SoakError": "soak",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(name)
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
