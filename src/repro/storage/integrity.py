"""Journal damage detection and self-healing recovery.

:func:`repro.core.serialization.repair_journal` only handles the one
damage class a clean crash can cause: a torn trailing line.  Real
storage fails in richer ways — interior bit-flips, lines dropped or
duplicated by a misdirected write, a header eaten by ``ENOSPC`` —
and the version-8 framing (per-record CRC32 + monotonic sequence
number) makes every one of them *detectable*.  This module turns
detection into a typed verdict and a safe salvage:

:func:`verify_journal`
    Read-only scan producing a :class:`JournalDamageReport`: the
    journal's longest verified prefix (every record parsed, CRC-true
    and sequence-contiguous), plus one :class:`JournalDamage` entry per
    problem found.

:func:`recover_journal`
    Verify, then salvage: the file is truncated to the longest
    verified prefix (fsynced, directory entry too), and when the
    damage is anything beyond a plain torn tail the *original* bytes
    are preserved first in a ``<journal>.damaged`` sidecar — recovery
    never destroys evidence.  Deterministic replay then regrows the
    journal byte-identically from the last checkpoint in the prefix,
    exactly as with a torn tail.

Legacy (v1–v7, unframed) journals have no integrity information, so
recovery deliberately stays trim-tail-only: interior damage is
*reported* but the file is left untouched — truncating an unframed
journal at an arbitrary interior line could silently discard good
records, which is worse than refusing.

Damage kinds
------------

``torn_tail``
    The final content line is unterminated or unparseable — the
    classic crash-mid-append signature.  Salvage needs no sidecar.
``parse_error``
    An interior line is not valid JSON (bit-flip in a structural
    character).
``crc_mismatch``
    A framed line parses but its CRC does not cover its content
    (bit-flip in a value).
``seq_gap`` / ``seq_duplicate``
    A framed line's sequence number skips ahead (a dropped line) or
    repeats (a duplicated line).
``bad_record`` / ``bad_header``
    A line is not a ``kind``-carrying object, or the journal does not
    open with a supported header.
``unverified_suffix``
    Lines after the first damaged line.  They may well parse, but
    nothing vouches for them — the verified prefix ends at the first
    problem, and replay regenerates everything after it.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..core.serialization import (
    SUPPORTED_VERSIONS,
    _fsync_directory,
    invalidate_journal_cache,
    repair_journal,
    strip_frame,
    verify_framed_record,
)
from ..obs import OBS

__all__ = [
    "JournalDamage",
    "JournalDamageReport",
    "verify_journal",
    "recover_journal",
]

#: Sidecar suffix appended to the journal's file name.
DAMAGED_SIDECAR_SUFFIX = ".damaged"


@dataclass(frozen=True)
class JournalDamage:
    """One problem found in a journal: where, what, and why."""

    line: int  # 1-indexed line number
    kind: str
    detail: str = ""

    def as_dict(self) -> dict:
        return {"line": self.line, "kind": self.kind, "detail": self.detail}


@dataclass
class JournalDamageReport:
    """The verdict of one :func:`verify_journal` / :func:`recover_journal`.

    ``records`` holds the verified prefix's records with framing
    stripped — what a :func:`~repro.core.serialization.read_journal`
    of the recovered file returns — so callers that verify-then-read
    need not touch the file twice.
    """

    path: Path
    version: int | None
    framed: bool
    total_lines: int
    verified_records: int
    prefix_bytes: int
    damage: tuple[JournalDamage, ...]
    records: list = field(default_factory=list, repr=False)
    salvaged_bytes: int = 0
    sidecar: Path | None = None

    @property
    def clean(self) -> bool:
        return not self.damage

    @property
    def tail_only(self) -> bool:
        """Whether all damage is the plain crash signature (a torn
        final line and nothing after it)."""
        return all(entry.kind == "torn_tail" for entry in self.damage)

    def as_dict(self) -> dict:
        return {
            "path": str(self.path),
            "version": self.version,
            "framed": self.framed,
            "total_lines": self.total_lines,
            "verified_records": self.verified_records,
            "prefix_bytes": self.prefix_bytes,
            "clean": self.clean,
            "tail_only": self.tail_only,
            "salvaged_bytes": self.salvaged_bytes,
            "sidecar": str(self.sidecar) if self.sidecar else None,
            "damage": [entry.as_dict() for entry in self.damage],
        }


def verify_journal(path: str | Path) -> JournalDamageReport:
    """Scan a journal without modifying it.

    The verified prefix is the longest run of leading lines in which
    every line parses into a ``kind`` record, the first is a supported
    header, and — for framed journals — every CRC is true and the
    sequence numbers are contiguous from 0.  The scan stops at the
    first problem; everything after it is reported as one
    ``unverified_suffix`` entry.
    """
    path = Path(path)
    raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    damage: list[JournalDamage] = []
    records: list[dict] = []
    version: int | None = None
    framed = False
    expected_seq = 0
    prefix_bytes = 0
    offset = 0
    content_lines = [
        index for index, line in enumerate(lines) if line.strip()
    ]
    last_content = content_lines[-1] if content_lines else -1
    for index, line in enumerate(lines):
        line_no = index + 1
        offset += len(line)
        if not line.strip():
            # Blank separators carry no records; fold them into the
            # prefix so salvage does not truncate harmless whitespace.
            prefix_bytes = offset
            continue
        is_final = index == last_content and offset == len(raw)
        problem: JournalDamage | None = None
        record = None
        if not line.endswith(b"\n"):
            problem = JournalDamage(
                line_no, "torn_tail", "unterminated final line"
            )
        else:
            try:
                record = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                # A flipped high bit makes the line invalid UTF-8, not
                # just invalid JSON — same damage class either way.
                kind = "torn_tail" if is_final else "parse_error"
                problem = JournalDamage(line_no, kind, str(error))
        if problem is None and (
            not isinstance(record, dict) or "kind" not in record
        ):
            problem = JournalDamage(
                line_no, "bad_record", "not a 'kind' record object"
            )
        if problem is None and not records:
            # Framing detection is redundant on purpose: a supported
            # v8+ version declaration OR the presence of either frame
            # field (reserved keys no legacy record can carry).  A
            # single bit-flip can erase one signal but not both, so a
            # damaged header reads as damage rather than demoting the
            # journal to unverifiable legacy.
            framed = "_seq" in record or "_crc" in record
            if record.get("kind") != "header":
                problem = JournalDamage(
                    line_no, "bad_header", "journal does not start with "
                    "a header record"
                )
            else:
                head_version = record.get("version", 1)
                if (
                    not isinstance(head_version, int)
                    or head_version not in SUPPORTED_VERSIONS
                ):
                    problem = JournalDamage(
                        line_no,
                        "bad_header",
                        f"unsupported version {head_version!r}",
                    )
                else:
                    version = head_version
                    framed = framed or head_version >= 8
        if problem is None and framed:
            framing = verify_framed_record(record)
            if framing is not None:
                problem = JournalDamage(line_no, "crc_mismatch", framing)
            else:
                seq = record["_seq"]
                if seq < expected_seq:
                    problem = JournalDamage(
                        line_no,
                        "seq_duplicate",
                        f"seq {seq} repeats (expected {expected_seq})",
                    )
                elif seq > expected_seq:
                    problem = JournalDamage(
                        line_no,
                        "seq_gap",
                        f"seq jumps to {seq} (expected {expected_seq})",
                    )
                else:
                    expected_seq += 1
        if problem is not None:
            damage.append(problem)
            trailing = [
                later for later in content_lines if later > index
            ]
            if trailing:
                damage.append(
                    JournalDamage(
                        trailing[0] + 1,
                        "unverified_suffix",
                        f"{len(trailing)} lines after the first "
                        "damaged line",
                    )
                )
            break
        records.append(strip_frame(record))
        prefix_bytes = offset
    if damage and not records and not framed:
        # The header vouched for nothing (unparseable or not a
        # header), so the journal's provenance is unknown.  Sniff the
        # remaining lines for frame fields — reserved keys no legacy
        # record can carry — so a framed journal with a destroyed
        # header is still salvaged (to its empty prefix, original
        # preserved in the sidecar) instead of being mistaken for an
        # uncuttable legacy file.
        for line in lines:
            try:
                candidate = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                continue
            if isinstance(candidate, dict) and (
                "_seq" in candidate or "_crc" in candidate
            ):
                framed = True
                break
    return JournalDamageReport(
        path=path,
        version=version,
        framed=framed,
        total_lines=len(content_lines),
        verified_records=len(records),
        prefix_bytes=prefix_bytes,
        damage=tuple(damage),
        records=records,
    )


def recover_journal(path: str | Path) -> JournalDamageReport:
    """Verify, then salvage the longest verified prefix in place.

    Framed journals are truncated to the verified prefix (file and
    directory entry fsynced); when the damage is anything beyond a
    plain torn tail, the original bytes are first preserved verbatim
    in a ``<journal>.damaged`` sidecar.  Legacy journals get
    trim-tail-only treatment via
    :func:`~repro.core.serialization.repair_journal`; their interior
    damage is reported but the file is not cut.  Damage and salvage
    counts are mirrored into OBS counters when observability is on.
    Idempotent: a second call on the recovered file reports clean (or,
    for legacy interior damage, the same verdict) and changes nothing.
    """
    path = Path(path)
    report = verify_journal(path)
    if report.clean:
        _publish(report)
        return report
    original_size = path.stat().st_size
    if report.framed:
        if not report.tail_only:
            sidecar = path.with_name(path.name + DAMAGED_SIDECAR_SUFFIX)
            sidecar.write_bytes(path.read_bytes())
            _fsync_directory(path.parent)
            report.sidecar = sidecar
        if report.prefix_bytes < original_size:
            with path.open("r+b") as handle:
                handle.truncate(report.prefix_bytes)
                handle.flush()
                os.fsync(handle.fileno())
            _fsync_directory(path.parent)
            invalidate_journal_cache(path)
            report.salvaged_bytes = original_size - report.prefix_bytes
    else:
        # Unframed: nothing vouches for interior lines, so only the
        # torn tail may be cut (the legacy crash contract).
        repair_journal(path)
        report.salvaged_bytes = original_size - path.stat().st_size
    _publish(report)
    return report


def _publish(report: JournalDamageReport) -> None:
    if not OBS.enabled:
        return
    damage_counter = OBS.registry.counter(
        "repro_journal_damage_total",
        "Journal damage findings by kind",
        labels=("kind",),
    )
    for entry in report.damage:
        damage_counter.labels(kind=entry.kind).inc()
    OBS.registry.counter(
        "repro_journal_records_verified_total",
        "Records in verified journal prefixes",
    ).labels().inc(report.verified_records)
    if report.salvaged_bytes:
        OBS.registry.counter(
            "repro_journal_recoveries_total",
            "Journal recoveries that removed damaged bytes",
        ).labels().inc()
        OBS.registry.counter(
            "repro_journal_bytes_dropped_total",
            "Bytes dropped by journal recovery",
        ).labels().inc(report.salvaged_bytes)
