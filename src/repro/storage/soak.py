"""Long-haul soak: kill the whole service, on purpose, on a schedule.

The rest of the robustness stack is verified piecewise — torn tails,
interior bit-flips, transport faults, delivery degradation each have
their own suites.  The soak harness (``repro soak``) composes all of
it and adds the one fault no in-process test can stage honestly: the
**whole-process SIGKILL**, repeatedly, against a live multi-tenant
service writing through a deliberately faulty disk.

One soak run is a sequence of *waves*.  Each wave:

1. builds a deterministic multi-tenant workload — streamed campaigns
   under :class:`~repro.stream.chaos.StreamChaos` delivery degradation
   plus one inline sharded campaign under a delay-only transport
   :class:`~repro.engine.chaos.ChaosPlan` (delays leave no journal
   trace, so byte-identity is preserved);
2. runs it once, uninterrupted and with storage chaos force-disabled,
   to produce the **reference** journal bytes;
3. runs the *same* workload in a forked child process with a seeded
   :class:`~repro.storage.chaos.StorageChaos` plan installed, and
   SIGKILLs the child on a seeded jittered schedule.  Every respawned
   child performs whole-service crash recovery
   (:meth:`~repro.service.service.CampaignService.recover`) before
   continuing;
4. after every kill, read-only-verifies each surviving journal: its
   longest verified prefix must be a byte prefix of the reference;
5. once the child reports completion, performs a final chaos-free
   convergence pass (recover + run to idle — this also heals any
   still-undetected trailing bit-flip) and asserts every journal is
   **byte-identical** to the reference, with the shared ledger passing
   :meth:`~repro.engine.ledger.BudgetLedger.audit` ``strict=True``.

Any violated invariant raises :class:`SoakError`.  The result dict
(``BENCH_soak.json`` material) carries kill/recovery counts, MTTR
statistics, records verified and bytes salvaged.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from pathlib import Path

import numpy as np

from ..core.serialization import atomic_write_json
from .chaos import StorageChaos, install_storage_chaos, storage_chaos
from .integrity import verify_journal

__all__ = ["SoakError", "run_soak", "DEFAULT_STORAGE_CHAOS"]

#: The default storage fault mix: every transient fault class plus
#: silent bit-flips.  ``enospc`` stays out of the default — it is
#: fail-stop by design, and the soak measures recovery, not refusal.
DEFAULT_STORAGE_CHAOS = (
    "short_write=0.02,fsync_error=0.02,rename_error=0.02,bitflip=0.02"
)

#: Hard ceiling on kill cycles within one wave, against a workload
#: that somehow cannot make progress between kills.
_MAX_CYCLES_PER_WAVE = 200

_POLL_S = 0.02


class SoakError(RuntimeError):
    """A soak invariant did not hold (divergence, drift, or a wave
    that could not be driven to completion)."""


def _wave_dataset(wave_seed: int, index: int):
    from ..datasets.synthetic import WorkerPoolSpec, make_synthetic_dataset

    return make_synthetic_dataset(
        num_groups=3,
        group_size=3,
        answers_per_fact=6,
        pool=WorkerPoolSpec(num_preliminary=10, num_expert=3),
        seed=wave_seed * 37 + index,
    )


def _wave_specs(wave_seed: int, tenants: int) -> list:
    """The wave's deterministic workload, regenerable anywhere.

    Built from plain ints only, so the forked child reconstructs the
    exact same specs from ``(wave_seed, tenants)`` without any pickling
    of datasets or factories.
    """
    from ..engine.chaos import ChaosPlan
    from ..service.campaign import CampaignSpec
    from ..simulation.session import SessionConfig
    from ..stream.chaos import StreamChaos
    from ..stream.runtime import StreamSpec

    specs = []
    for index in range(tenants):
        specs.append(
            CampaignSpec(
                tenant=f"tenant{index}",
                name="stream",
                dataset=_wave_dataset(wave_seed, index),
                config=SessionConfig(
                    budget=24.0, k=1, seed=wave_seed + index
                ),
                stream=StreamSpec(
                    rate=50.0,
                    votes_per_fact=3,
                    group_size=3,
                    target_votes=2,
                    churn=0.1,
                    seed=wave_seed + index,
                    chaos=StreamChaos(
                        reorder=0.15,
                        duplicate=0.1,
                        stall=0.05,
                        seed=wave_seed + index,
                    ),
                ),
            )
        )
    # One inline sharded campaign under delay-only transport chaos:
    # delays perturb wall-clock, never journal bytes.
    specs.append(
        CampaignSpec(
            tenant="batch",
            name="grid",
            dataset=_wave_dataset(wave_seed, tenants),
            config=SessionConfig(budget=18.0, k=2, seed=wave_seed),
            jobs=2,
            inline=True,
            chaos=ChaosPlan(
                delay=0.05, delay_duration=0.005, seed=wave_seed
            ),
        )
    )
    return specs


def _budget_pool(specs) -> float:
    return sum(spec.config.budget for spec in specs) + 1.0


def _soak_child(
    data_root: Path,
    wave_seed: int,
    tenants: int,
    chaos_spec: str,
    chaos_seed: int,
    status_path: Path,
    done_path: Path,
) -> None:
    """One service lifetime: recover, report readiness, run to idle.

    Runs in a forked child.  Storage chaos applies to the campaign
    journals (the data plane); the harness's own ``status``/``done``
    control files are written with chaos force-disabled so a corrupted
    control file never masquerades as a corrupted journal.
    """
    from ..service.service import CampaignService

    plan = (
        StorageChaos.parse(chaos_spec, seed=chaos_seed)
        if chaos_spec
        else None
    )
    state = install_storage_chaos(plan)
    specs = _wave_specs(wave_seed, tenants)
    service = CampaignService(
        _budget_pool(specs), journal_root=data_root
    )
    recovery = service.recover(specs=specs, strict=True)
    for spec in specs:
        if spec.campaign_id not in service._records:
            service.submit(spec)
    with storage_chaos(None):
        atomic_write_json(
            {"ready_at": time.time(), "recovery": recovery.as_dict()},
            status_path,
        )
    service.run_until_idle(max_steps=100_000)
    statuses = {
        spec.campaign_id: service.handle(spec.campaign_id).status.value
        for spec in specs
    }
    ok = all(value == "completed" for value in statuses.values())
    service.ledger.audit(strict=True)
    with storage_chaos(None):
        atomic_write_json(
            {
                "ok": ok,
                "statuses": statuses,
                "chaos": state.stats() if state is not None else {},
            },
            done_path,
        )
    os._exit(0 if ok else 1)


def _read_control(path: Path) -> dict | None:
    """A control file's payload, or ``None`` if absent or torn (the
    child can be SIGKILLed mid-write; that is the point)."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def _reference_run(specs, ref_root: Path) -> dict[str, bytes]:
    """The uninterrupted, chaos-free reference journals, by relpath."""
    from ..service.service import CampaignService

    with storage_chaos(None):
        with CampaignService(
            _budget_pool(specs), journal_root=ref_root
        ) as service:
            for spec in specs:
                service.submit(spec)
            service.run_until_idle(max_steps=100_000)
            for spec in specs:
                status = service.handle(spec.campaign_id).status.value
                if status != "completed":
                    raise SoakError(
                        f"reference run left {spec.campaign_id} "
                        f"{status}; the workload must complete solo"
                    )
            service.ledger.audit(strict=True)
    return {
        str(path.relative_to(ref_root)): path.read_bytes()
        for path in sorted(ref_root.rglob("*.jsonl"))
    }


def _verify_prefixes(
    data_root: Path, reference: dict[str, bytes], metrics: dict
) -> None:
    """Post-kill invariant: every journal's verified prefix is a byte
    prefix of the reference journal."""
    for path in sorted(data_root.rglob("*.jsonl")):
        relative = str(path.relative_to(data_root))
        expected = reference.get(relative)
        if expected is None:
            raise SoakError(f"unexpected journal {relative} appeared")
        report = verify_journal(path)
        prefix = path.read_bytes()[: report.prefix_bytes]
        if not expected.startswith(prefix):
            raise SoakError(
                f"journal {relative} diverged from the reference "
                f"within its verified prefix "
                f"({report.verified_records} records, "
                f"{report.prefix_bytes} bytes)"
            )
        metrics["records_verified"] += report.verified_records
        for entry in report.damage:
            metrics["damage"][entry.kind] = (
                metrics["damage"].get(entry.kind, 0) + 1
            )


def _converge(specs, data_root: Path, metrics: dict) -> None:
    """Final chaos-free pass: salvage residual damage (e.g. a trailing
    bit-flip no reader has hit yet), reattach, and run to completion."""
    from ..service.service import CampaignService

    with storage_chaos(None):
        service = CampaignService(
            _budget_pool(specs), journal_root=data_root
        )
        recovery = service.recover(specs=specs, strict=True)
        metrics["bytes_salvaged"] += recovery.salvaged_bytes
        for campaign in recovery.campaigns:
            for kind in campaign.damage:
                metrics["damage"][kind] = (
                    metrics["damage"].get(kind, 0) + 1
                )
            if campaign.outcome in ("failed", "orphaned"):
                raise SoakError(
                    f"convergence recovery left {campaign.campaign_id}"
                    f" {campaign.outcome}: {campaign.error}"
                )
        for spec in specs:
            if spec.campaign_id not in service._records:
                service.submit(spec)
        service.run_until_idle(max_steps=100_000)
        for spec in specs:
            status = service.handle(spec.campaign_id).status.value
            if status != "completed":
                raise SoakError(
                    f"{spec.campaign_id} is {status} after the "
                    "convergence pass"
                )
        service.ledger.audit(strict=True)
        service.close()


def _assert_byte_identity(
    data_root: Path, reference: dict[str, bytes], wave: int
) -> None:
    live = {
        str(path.relative_to(data_root)): path.read_bytes()
        for path in sorted(data_root.rglob("*.jsonl"))
    }
    if set(live) != set(reference):
        raise SoakError(
            f"wave {wave}: journal sets differ "
            f"(live={sorted(live)}, reference={sorted(reference)})"
        )
    for relative, expected in reference.items():
        if live[relative] != expected:
            raise SoakError(
                f"wave {wave}: journal {relative} is not "
                "byte-identical to the uninterrupted reference"
            )


def _run_wave(
    out_root: Path,
    wave: int,
    seed: int,
    tenants: int,
    chaos_spec: str,
    kill_every: float,
    rng: np.random.Generator,
    metrics: dict,
) -> None:
    wave_seed = seed * 1009 + wave
    wave_dir = out_root / f"wave{wave:03d}"
    ref_root = wave_dir / "reference"
    data_root = wave_dir / "live"
    data_root.mkdir(parents=True, exist_ok=True)
    specs = _wave_specs(wave_seed, tenants)
    reference = _reference_run(specs, ref_root)
    context = multiprocessing.get_context("fork")
    for cycle in range(1, _MAX_CYCLES_PER_WAVE + 1):
        status_path = wave_dir / "status.json"
        done_path = wave_dir / "done.json"
        for control in (status_path, done_path):
            if control.exists():
                control.unlink()
        spawn_at = time.time()
        child = context.Process(
            target=_soak_child,
            args=(
                data_root,
                wave_seed,
                tenants,
                chaos_spec,
                wave_seed + cycle,
                status_path,
                done_path,
            ),
        )
        child.start()
        # Jitter down to 0.1x so the schedule lands *inside* short
        # waves too — a floor of half the period would let fast cycles
        # finish before every kill and starve the crash coverage.
        kill_after = kill_every * (0.1 + float(rng.random()))
        killed = False
        while child.is_alive():
            if done_path.exists():
                break
            if time.time() - spawn_at >= kill_after:
                os.kill(child.pid, signal.SIGKILL)
                killed = True
                break
            time.sleep(_POLL_S)
        child.join()
        status = _read_control(status_path)
        if status is not None and cycle > 1:
            metrics["mttr_samples"].append(
                max(0.0, status["ready_at"] - spawn_at)
            )
        if status is not None:
            recovery = status.get("recovery", {})
            metrics["bytes_salvaged"] += recovery.get(
                "salvaged_bytes", 0
            )
        if killed:
            metrics["kills"] += 1
            metrics["recoveries"] += 1
            _verify_prefixes(data_root, reference, metrics)
            continue
        done = _read_control(done_path)
        if done is not None and done.get("ok"):
            for action, count in done.get("chaos", {}).get(
                "injected", {}
            ).items():
                metrics["injected"][action] = (
                    metrics["injected"].get(action, 0) + count
                )
            break
        # The child died on its own (fail-stop, quarantine, or a torn
        # control file): that is a crash cycle — recover and go on.
        metrics["failed_cycles"] += 1
        metrics["recoveries"] += 1
        _verify_prefixes(data_root, reference, metrics)
    else:
        raise SoakError(
            f"wave {wave} did not complete within "
            f"{_MAX_CYCLES_PER_WAVE} kill cycles"
        )
    _converge(specs, data_root, metrics)
    _verify_prefixes(data_root, reference, metrics)
    _assert_byte_identity(data_root, reference, wave)
    metrics["campaigns_completed"] += len(specs)
    metrics["waves"] += 1


def run_soak(
    minutes: float = 2.0,
    kill_every: float = 1.0,
    *,
    seed: int = 0,
    tenants: int = 2,
    chaos_spec: str = DEFAULT_STORAGE_CHAOS,
    out_dir: "str | Path | None" = None,
    min_kills: int = 0,
) -> dict:
    """Run the soak for roughly ``minutes``; returns the metrics dict.

    Waves run back-to-back until the time budget is spent (a started
    wave always runs to completion and verification, so the run can
    overshoot by one wave).  With ``min_kills`` set, waves keep coming
    until at least that many SIGKILL cycles have been survived, time
    budget notwithstanding.
    """
    if minutes <= 0:
        raise ValueError("minutes must be positive")
    if kill_every <= 0:
        raise ValueError("kill_every must be positive")
    if tenants < 1:
        raise ValueError("tenants must be at least 1")
    if chaos_spec:  # validate before forking anything
        StorageChaos.parse(chaos_spec, seed=seed)
    out_root = Path(
        out_dir
        if out_dir is not None
        else Path.cwd() / "soak-artifacts"
    )
    out_root.mkdir(parents=True, exist_ok=True)
    rng = np.random.default_rng(
        np.random.SeedSequence([int(seed), 0x50AC])
    )
    metrics = {
        "waves": 0,
        "kills": 0,
        "recoveries": 0,
        "failed_cycles": 0,
        "campaigns_completed": 0,
        "records_verified": 0,
        "bytes_salvaged": 0,
        "mttr_samples": [],
        "damage": {},
        "injected": {},
    }
    started = time.time()
    deadline = started + minutes * 60.0
    wave = 0
    while True:
        wave += 1
        _run_wave(
            out_root,
            wave,
            seed,
            tenants,
            chaos_spec,
            kill_every,
            rng,
            metrics,
        )
        if time.time() >= deadline and metrics["kills"] >= min_kills:
            break
    elapsed = time.time() - started
    samples = metrics.pop("mttr_samples")
    result = {
        "minutes_requested": minutes,
        "elapsed_s": elapsed,
        "kill_every_s": kill_every,
        "seed": seed,
        "tenants": tenants,
        "storage_chaos": chaos_spec,
        "byte_identical": True,  # every wave asserted it; else raised
        **metrics,
        "recoveries_per_min": (
            metrics["recoveries"] / (elapsed / 60.0) if elapsed else 0.0
        ),
        "mttr_s": {
            "samples": len(samples),
            "mean": float(np.mean(samples)) if samples else None,
            "max": float(np.max(samples)) if samples else None,
        },
    }
    atomic_write_json(result, out_root / "soak_result.json")
    return result
