"""Runners for every figure of the paper's evaluation (section IV).

Each ``run_figureN`` function regenerates the corresponding figure's
data as an :class:`~repro.experiments.runner.ExperimentResult` — the
same curves the paper plots, as numeric series.  All runners accept an
:class:`~repro.experiments.config.ExperimentScale` so the test suite
and benchmarks can use the fast preset while a full reproduction uses
``PAPER_SCALE``.
"""

from __future__ import annotations

import numpy as np

from ..aggregation.registry import BASELINE_NAMES, make_aggregator
from ..core.hc import HierarchicalCrowdsourcing, run_flat_checking
from ..core.selection import (
    ExactSelector,
    GreedySelector,
    MaxMarginalEntropySelector,
    RandomSelector,
)
from ..datasets.grouping import initialize_belief
from ..simulation.oracle import SimulatedExpertPanel
from ..simulation.session import SessionConfig, run_hc_session
from .config import ExperimentScale, PAPER_SCALE
from .runner import (
    ExperimentResult,
    Series,
    baseline_series,
    build_dataset,
    hc_series,
)

_DEFAULT_THETA = 0.9


def run_figure2(
    scale: ExperimentScale = PAPER_SCALE,
    baselines: tuple[str, ...] = BASELINE_NAMES,
) -> ExperimentResult:
    """Figure 2: HC vs the 8 aggregation baselines, accuracy vs budget.

    HC uses theta=0.9, k=1, EBCC initialization (section IV-A).  The
    budget protocol is documented in :mod:`repro.experiments.runner`.
    """
    dataset = build_dataset(scale.dataset)
    config = SessionConfig(
        theta=_DEFAULT_THETA,
        k=1,
        budget=scale.max_budget,
        initializer="EBCC",
        seed=scale.seed,
    )
    hc_run = run_hc_session(dataset, config)
    series = [hc_series("HC", hc_run, scale.budgets)]
    for name in baselines:
        series.append(
            baseline_series(
                dataset, name, scale.budgets, _DEFAULT_THETA, seed=scale.seed
            )
        )
    return ExperimentResult(
        name="figure2",
        series=series,
        metadata={"theta": _DEFAULT_THETA, "k": 1, "initializer": "EBCC"},
    )


def run_figure3(
    scale: ExperimentScale = PAPER_SCALE,
    k_values: tuple[int, ...] = (1, 2, 3),
) -> ExperimentResult:
    """Figure 3: varying the per-round query count k (accuracy and
    quality vs budget)."""
    dataset = build_dataset(scale.dataset)
    series = []
    for k in k_values:
        config = SessionConfig(
            theta=_DEFAULT_THETA,
            k=k,
            budget=scale.max_budget,
            initializer="EBCC",
            seed=scale.seed,
        )
        run = run_hc_session(dataset, config)
        series.append(hc_series(f"k={k}", run, scale.budgets))
    return ExperimentResult(
        name="figure3",
        series=series,
        metadata={"theta": _DEFAULT_THETA, "k_values": list(k_values)},
    )


def run_figure4(
    scale: ExperimentScale = PAPER_SCALE,
    thetas: tuple[float, ...] = (0.8, 0.85, 0.9),
) -> ExperimentResult:
    """Figure 4: varying the expert threshold theta."""
    dataset = build_dataset(scale.dataset)
    series = []
    for theta in thetas:
        config = SessionConfig(
            theta=theta,
            k=1,
            budget=scale.max_budget,
            initializer="EBCC",
            seed=scale.seed,
        )
        run = run_hc_session(dataset, config)
        sampled = hc_series(f"theta={theta}", run, scale.budgets)
        series.append(sampled)
    return ExperimentResult(
        name="figure4",
        series=series,
        metadata={"k": 1, "thetas": list(thetas)},
    )


def run_figure5(
    scale: ExperimentScale = PAPER_SCALE,
    k_values: tuple[int, ...] = (2, 3),
    opt_num_groups: int = 30,
) -> ExperimentResult:
    """Figure 5: OPT vs Approx vs Random checking-task selection.

    OPT enumerates ``C(N, k)`` subsets, so — like the paper, which
    discusses OPT only on small instances — the dataset is capped at
    ``opt_num_groups`` task groups for this experiment.  Budgets are
    rescaled proportionally.
    """
    from dataclasses import replace

    ratio = min(1.0, opt_num_groups / scale.dataset.num_groups)
    dataset_spec = replace(
        scale.dataset,
        num_groups=min(scale.dataset.num_groups, opt_num_groups),
    )
    budgets = tuple(
        max(1, int(budget * ratio)) for budget in scale.budgets
    )
    dataset = build_dataset(dataset_spec)
    max_budget = max(budgets)

    series = []
    for k in k_values:
        for selector_factory, label in (
            (lambda: ExactSelector(), "OPT"),
            (lambda: GreedySelector(), "Approx"),
            (lambda: RandomSelector(rng=scale.seed), "Random"),
        ):
            config = SessionConfig(
                theta=_DEFAULT_THETA,
                k=k,
                budget=max_budget,
                initializer="EBCC",
                seed=scale.seed,
            )
            run = run_hc_session(dataset, config, selector=selector_factory())
            series.append(hc_series(f"{label} (k={k})", run, budgets))
    return ExperimentResult(
        name="figure5",
        series=series,
        metadata={
            "theta": _DEFAULT_THETA,
            "k_values": list(k_values),
            "num_groups": dataset_spec.num_groups,
        },
    )


def run_figure6(
    scale: ExperimentScale = PAPER_SCALE,
    initializers: tuple[str, ...] = BASELINE_NAMES,
) -> ExperimentResult:
    """Figure 6: varying the belief-initialization aggregator."""
    dataset = build_dataset(scale.dataset)
    series = []
    for name in initializers:
        config = SessionConfig(
            theta=_DEFAULT_THETA,
            k=1,
            budget=scale.max_budget,
            initializer=name,
            seed=scale.seed,
        )
        run = run_hc_session(dataset, config)
        series.append(hc_series(name, run, scale.budgets))
    return ExperimentResult(
        name="figure6",
        series=series,
        metadata={"theta": _DEFAULT_THETA, "k": 1},
    )


def run_figure7(
    scale: ExperimentScale = PAPER_SCALE,
) -> ExperimentResult:
    """Figure 7: HC vs NO-HC (flat checking from a uniform prior).

    NO-HC uses the whole crowd as checking workers and starts from the
    uniform belief.  With dozens of checkers per query, exact
    conditional-entropy selection is intractable (the family space is
    ``2^(k |C|)``), so NO-HC selects by maximal marginal entropy — the
    natural brute-force rule; HC's advantage in the figure is the
    hierarchy, not the selector.
    """
    dataset = build_dataset(scale.dataset)
    config = SessionConfig(
        theta=_DEFAULT_THETA,
        k=1,
        budget=scale.max_budget,
        initializer="EBCC",
        seed=scale.seed,
    )
    hc_run = run_hc_session(dataset, config)

    flat_source = SimulatedExpertPanel(
        dataset.ground_truth, rng=np.random.default_rng(scale.seed + 1)
    )
    flat_run = run_flat_checking(
        dataset.groups,
        dataset.crowd,
        flat_source,
        budget=scale.max_budget,
        k=1,
        selector=MaxMarginalEntropySelector(),
        ground_truth=dataset.ground_truth,
    )
    return ExperimentResult(
        name="figure7",
        series=[
            hc_series("HC", hc_run, scale.budgets),
            hc_series("NO HC", flat_run, scale.budgets),
        ],
        metadata={"theta": _DEFAULT_THETA, "k": 1},
    )


def run_ablation_cost_model(
    scale: ExperimentScale = PAPER_SCALE,
) -> ExperimentResult:
    """Ablation (section III-D discussion): accuracy-proportional answer
    costs vs unit costs.

    With costs of ``1.5 * Pr_cr`` per answer (above 1 for every expert)
    the same nominal budget buys fewer expert answers, so the cost-aware
    curve should trail the unit-cost curve at equal nominal budget —
    quantifying the paper's "extension to worker costs" remark.
    """
    from ..core.budget import CostModel

    dataset = build_dataset(scale.dataset)
    experts, _ = dataset.split_crowd(_DEFAULT_THETA)
    aggregator = make_aggregator("EBCC")
    belief, _ = initialize_belief(dataset, aggregator, _DEFAULT_THETA)

    series = []
    for label, cost_model in (
        ("unit cost", None),
        ("cost = 1.5*Pr_cr", CostModel.accuracy_proportional(experts, rate=1.5)),
    ):
        runner = HierarchicalCrowdsourcing(
            experts=experts,
            selector=GreedySelector(),
            k=1,
            cost_model=cost_model,
        )
        source = SimulatedExpertPanel(
            dataset.ground_truth, rng=np.random.default_rng(scale.seed)
        )
        run = runner.run(
            belief.copy(),
            source,
            scale.max_budget,
            ground_truth=dataset.ground_truth,
        )
        series.append(hc_series(label, run, scale.budgets))
    return ExperimentResult(
        name="ablation_cost_model",
        series=series,
        metadata={"theta": _DEFAULT_THETA, "k": 1},
    )


def run_ablation_panel_size(
    scale: ExperimentScale = PAPER_SCALE,
    panel_sizes: tuple[int, ...] = (1, 2, 3),
) -> ExperimentResult:
    """Ablation: per-round expert panel size.

    Algorithm 3 sends every query to all of CE.  With a panel of ``p``
    experts per query, a fixed budget funds ``|CE|/p`` times as many
    queries at lower per-query confidence — this ablation maps that
    trade-off (the paper's design corresponds to the largest panel).
    """
    dataset = build_dataset(scale.dataset)
    experts, _preliminary = dataset.split_crowd(_DEFAULT_THETA)
    aggregator = make_aggregator("EBCC")
    belief, _ = initialize_belief(dataset, aggregator, _DEFAULT_THETA)

    series = []
    for panel_size in panel_sizes:
        if panel_size > len(experts):
            continue
        runner = HierarchicalCrowdsourcing(
            experts=experts,
            selector=GreedySelector(),
            k=1,
            panel_size=panel_size,
        )
        source = SimulatedExpertPanel(
            dataset.ground_truth, rng=np.random.default_rng(scale.seed)
        )
        run = runner.run(
            belief.copy(),
            source,
            scale.max_budget,
            ground_truth=dataset.ground_truth,
        )
        series.append(hc_series(f"panel={panel_size}", run, scale.budgets))
    return ExperimentResult(
        name="ablation_panel_size",
        series=series,
        metadata={
            "theta": _DEFAULT_THETA,
            "k": 1,
            "panel_sizes": list(panel_sizes),
            "ce_size": len(experts),
        },
    )


def run_ablation_miscalibration(
    scale: ExperimentScale = PAPER_SCALE,
    gold_counts: tuple[int, ...] = (20, 50, 200),
) -> ExperimentResult:
    """Ablation: robustness to worker-accuracy estimation error.

    The paper assumes accuracies "can be easily estimated with a set of
    sample tasks"; this ablation quantifies the cost of that estimate
    being noisy.  For each gold-task count, every worker's accuracy is
    re-estimated from simulated gold answers; the theta-split, belief
    updates and task selection all use the *estimated* accuracies while
    the simulated humans answer at their *true* rates.  An oracle curve
    (exact accuracies) is included for reference.
    """
    from ..core.calibration import simulate_calibration
    from ..simulation.oracle import MismatchedExpertPanel

    dataset = build_dataset(scale.dataset)
    true_accuracies = {
        worker.worker_id: worker.accuracy for worker in dataset.crowd
    }
    aggregator_name = "EBCC"
    series = []

    skipped: list[str] = []

    def run_with_crowd(assumed_crowd, label: str) -> None:
        experts, _preliminary = assumed_crowd.split(_DEFAULT_THETA)
        if len(experts) == 0:
            # Calibration demoted every worker below theta (too few
            # gold tasks even to certify one expert): no curve.
            skipped.append(label)
            return
        # Initialization still uses the recorded CP answers, restricted
        # by the *assumed* split (what the operator would do).
        cp_columns = [
            dataset.worker_column(worker.worker_id)
            for worker in assumed_crowd
            if worker.accuracy < _DEFAULT_THETA
        ]
        matrix = dataset.annotations.restrict_workers(cp_columns)
        from ..datasets.grouping import initialize_belief_from_matrix

        belief, _result = initialize_belief_from_matrix(
            dataset.groups, matrix, make_aggregator(aggregator_name)
        )
        panel = MismatchedExpertPanel(
            dataset.ground_truth, true_accuracies,
            rng=np.random.default_rng(scale.seed),
        )
        runner = HierarchicalCrowdsourcing(
            experts=experts, selector=GreedySelector(), k=1
        )
        run = runner.run(
            belief, panel, scale.max_budget,
            ground_truth=dataset.ground_truth,
        )
        series.append(hc_series(label, run, scale.budgets))

    run_with_crowd(dataset.crowd, "exact accuracies")
    for gold in gold_counts:
        estimated = simulate_calibration(
            dataset.crowd, gold, rng=np.random.default_rng(scale.seed + gold)
        )
        run_with_crowd(estimated, f"{gold} gold tasks")
    return ExperimentResult(
        name="ablation_miscalibration",
        series=series,
        metadata={
            "theta": _DEFAULT_THETA,
            "k": 1,
            "gold_counts": list(gold_counts),
            "skipped": skipped,
        },
    )


def run_ablation_selectors(
    scale: ExperimentScale = PAPER_SCALE,
    k_values: tuple[int, ...] = (1, 3),
) -> ExperimentResult:
    """Ablation: the full conditional-entropy greedy vs the marginal-
    entropy shortcut ([41]) vs random.

    At ``k=1`` the marginal rule is provably equivalent to the full
    objective (a single query's mutual information depends only on the
    queried fact's marginal), so the two curves coincide — the [41]
    special case the paper discusses.  Correlation awareness only pays
    at ``k >= 2``, which the second k value exposes.
    """
    dataset = build_dataset(scale.dataset)
    series = []
    for k in k_values:
        for selector, label in (
            (GreedySelector(), f"Approx (k={k})"),
            (MaxMarginalEntropySelector(), f"MaxEntropy (k={k})"),
            (RandomSelector(rng=scale.seed), f"Random (k={k})"),
        ):
            config = SessionConfig(
                theta=_DEFAULT_THETA,
                k=k,
                budget=scale.max_budget,
                initializer="EBCC",
                seed=scale.seed,
            )
            run = run_hc_session(dataset, config, selector=selector)
            series.append(hc_series(label, run, scale.budgets))
    return ExperimentResult(
        name="ablation_selectors",
        series=series,
        metadata={"theta": _DEFAULT_THETA, "k_values": list(k_values)},
    )
