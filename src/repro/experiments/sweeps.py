"""Parameter sweeps beyond the paper's one-dimensional figures.

Figures 3 and 4 vary ``k`` and ``theta`` separately; this module maps
the full ``theta x k`` grid (final accuracy and quality at a fixed
budget), plus a replicated variant of Figure 2's HC curve with error
bars over expert-panel seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.session import SessionConfig, run_hc_session
from .config import ExperimentScale, PAPER_SCALE
from .runner import build_dataset


@dataclass
class SweepGrid:
    """Final-metric grid of a two-parameter sweep."""

    thetas: list[float]
    k_values: list[int]
    #: ``accuracy[i][j]`` for ``thetas[i]``, ``k_values[j]`` (NaN where
    #: the configuration was infeasible, e.g. empty CE).
    accuracy: np.ndarray = field(default_factory=lambda: np.empty(0))
    quality: np.ndarray = field(default_factory=lambda: np.empty(0))
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "thetas": self.thetas,
            "k_values": self.k_values,
            "accuracy": self.accuracy.tolist(),
            "quality": self.quality.tolist(),
            "metadata": dict(self.metadata),
        }

    def best_configuration(self) -> tuple[float, int]:
        """``(theta, k)`` with the highest final accuracy (quality as
        tie-breaker)."""
        flat_best = None
        best_key = (-np.inf, -np.inf)
        for i, theta in enumerate(self.thetas):
            for j, k in enumerate(self.k_values):
                if np.isnan(self.accuracy[i, j]):
                    continue
                key = (self.accuracy[i, j], self.quality[i, j])
                if key > best_key:
                    best_key = key
                    flat_best = (theta, k)
        if flat_best is None:
            raise ValueError("no feasible configuration in the grid")
        return flat_best


def run_theta_k_sweep(
    scale: ExperimentScale = PAPER_SCALE,
    thetas: tuple[float, ...] = (0.8, 0.85, 0.9),
    k_values: tuple[int, ...] = (1, 2, 3),
    initializer: str = "EBCC",
) -> SweepGrid:
    """Final accuracy/quality over the full ``theta x k`` grid.

    Each cell runs the complete HC session at ``scale.max_budget``.
    Infeasible cells (no worker reaches theta) are NaN.
    """
    dataset = build_dataset(scale.dataset)
    accuracy = np.full((len(thetas), len(k_values)), np.nan)
    quality = np.full((len(thetas), len(k_values)), np.nan)
    for i, theta in enumerate(thetas):
        experts, _preliminary = dataset.split_crowd(theta)
        if len(experts) == 0 or len(experts) == len(dataset.crowd):
            continue
        for j, k in enumerate(k_values):
            config = SessionConfig(
                theta=theta,
                k=k,
                budget=scale.max_budget,
                initializer=initializer,
                seed=scale.seed,
            )
            result = run_hc_session(dataset, config)
            final = result.history[-1]
            accuracy[i, j] = final.accuracy
            quality[i, j] = final.quality
    return SweepGrid(
        thetas=list(thetas),
        k_values=list(k_values),
        accuracy=accuracy,
        quality=quality,
        metadata={
            "budget": scale.max_budget,
            "initializer": initializer,
            "seed": scale.seed,
        },
    )


def format_sweep(grid: SweepGrid, metric: str = "accuracy") -> str:
    """Text heat-table of a sweep grid (rows theta, columns k)."""
    from .reporting import format_table

    if metric not in ("accuracy", "quality"):
        raise ValueError("metric must be 'accuracy' or 'quality'")
    values = getattr(grid, metric)
    header = ["theta \\ k"] + [str(k) for k in grid.k_values]
    rows = []
    for i, theta in enumerate(grid.thetas):
        row = [f"{theta:g}"]
        for j in range(len(grid.k_values)):
            value = values[i, j]
            if np.isnan(value):
                row.append("-")
            elif metric == "accuracy":
                row.append(f"{value:.4f}")
            else:
                row.append(f"{value:.2f}")
        rows.append(row)
    title = f"theta x k sweep — final {metric} at budget " \
            f"{grid.metadata.get('budget', '?')}"
    return f"{title}\n{format_table(header, rows)}"


def run_figure2_replicated(
    scale: ExperimentScale = PAPER_SCALE,
    seeds: tuple[int, ...] = (0, 1, 2, 3, 4),
):
    """Figure 2's HC curve with error bars over expert-panel seeds.

    The paper plots single runs; this quantifies the simulation noise
    band around the HC curve (the dataset and initialization are fixed,
    only expert answers vary).  Returns a
    :class:`repro.analysis.ReplicatedSeries`.
    """
    # Imported lazily: repro.analysis.replication itself imports from
    # repro.experiments.runner, so a module-level import would cycle.
    from ..analysis.replication import replicate_session

    dataset = build_dataset(scale.dataset)
    config = SessionConfig(
        theta=0.9, k=1, budget=scale.max_budget, initializer="EBCC"
    )
    return replicate_session(
        dataset, config, scale.budgets, seeds=seeds, label="HC"
    )
