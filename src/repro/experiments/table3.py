"""Table III: average checking-task selection time per round, OPT vs Approx.

The paper times both selectors on "tasks that contain more than 20
facts" and reports an exponential blow-up for OPT (timeout past k=3 on
their hardware) against polynomial growth for the greedy.  This runner
reproduces the shape: a single large task group, two expert workers,
per-round wall-clock times for each k, with a configurable timeout that
yields the paper's "timeout" cells.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..core.facts import FactSet
from ..core.observations import BeliefState, FactoredBelief
from ..core.selection import (
    ExactSelector,
    GreedySelector,
    SelectionTimeout,
)
from ..core.workers import Crowd


@dataclass
class TimingRow:
    """One row of Table III."""

    k: int
    opt_seconds: float | None  # None == timeout
    approx_seconds: float

    @property
    def opt_display(self) -> str:
        if self.opt_seconds is None:
            return "timeout"
        return f"{self.opt_seconds:.4f}"


@dataclass
class Table3Result:
    rows: list[TimingRow] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "rows": [
                {
                    "k": row.k,
                    "opt_seconds": row.opt_seconds,
                    "approx_seconds": row.approx_seconds,
                }
                for row in self.rows
            ],
            "metadata": dict(self.metadata),
        }


def make_timing_belief(
    num_facts: int, seed: int = 0
) -> FactoredBelief:
    """A single ``num_facts``-fact group with a random non-degenerate
    joint, the worst case for selection cost."""
    rng = np.random.default_rng(seed)
    facts = FactSet.from_ids(range(num_facts))
    weights = rng.dirichlet(np.ones(1 << num_facts))
    return FactoredBelief([BeliefState(facts, weights)])


def run_table3(
    k_values: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    num_facts: int = 22,
    expert_accuracies: tuple[float, ...] = (0.92, 0.95),
    opt_timeout_seconds: float = 120.0,
    repeats: int = 1,
    seed: int = 0,
) -> Table3Result:
    """Time OPT and Approx selection per round for each ``k``.

    Parameters
    ----------
    k_values:
        Query-set sizes to time (paper: 1..10).
    num_facts:
        Size of the single task group (paper: > 20).
    expert_accuracies:
        The checking crowd CE.
    opt_timeout_seconds:
        Wall-clock budget per OPT selection; exceeded -> "timeout" row,
        and OPT is not attempted for larger ``k`` (its cost only grows).
    repeats:
        Timing repetitions to average over.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    experts = Crowd.from_accuracies(list(expert_accuracies), prefix="e")
    result = Table3Result(
        metadata={
            "num_facts": num_facts,
            "num_experts": len(expert_accuracies),
            "opt_timeout_seconds": opt_timeout_seconds,
            "repeats": repeats,
        }
    )
    opt_timed_out = False
    for k in k_values:
        belief = make_timing_belief(num_facts, seed=seed)

        opt_seconds: float | None = None
        if not opt_timed_out:
            try:
                opt_seconds = _time_selection(
                    lambda: ExactSelector(
                        max_subsets=None,
                        deadline_seconds=opt_timeout_seconds,
                    ),
                    belief, experts, k, repeats,
                )
            except SelectionTimeout:
                opt_seconds = None
            if opt_seconds is None or opt_seconds > opt_timeout_seconds:
                opt_seconds = None
                opt_timed_out = True

        approx_seconds = _time_selection(
            GreedySelector, belief, experts, k, repeats
        )
        result.rows.append(
            TimingRow(k=k, opt_seconds=opt_seconds,
                      approx_seconds=approx_seconds)
        )
    return result


def _time_selection(selector_factory, belief, experts, k,
                    repeats: int) -> float:
    """Average wall-clock seconds of one selection over ``repeats``.

    Selector caches would make repeated calls unrealistically fast, so
    every repetition gets a brand-new selector from the factory.
    """
    total = 0.0
    for _repeat in range(repeats):
        selector = selector_factory()
        start = time.perf_counter()
        selector.select(belief, experts, k)
        total += time.perf_counter() - start
    return total / repeats
