"""Experiment harness reproducing the paper's evaluation (section IV)."""

from .config import (
    EXPERIMENT_POOL,
    PAPER_SCALE,
    SMALL_SCALE,
    DatasetSpec,
    ExperimentScale,
    get_scale,
)
from .figures import (
    run_ablation_cost_model,
    run_ablation_miscalibration,
    run_ablation_panel_size,
    run_ablation_selectors,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
)
from .downstream_experiment import (
    DownstreamComparison,
    format_downstream,
    run_downstream_comparison,
)
from .plots import ascii_chart, chart_experiment
from .reporting import (
    format_experiment,
    format_replicated,
    format_series_table,
    format_table,
    format_table3,
    save_json,
)
from .sweeps import (
    SweepGrid,
    format_sweep,
    run_figure2_replicated,
    run_theta_k_sweep,
)
from .runner import (
    ExperimentResult,
    Series,
    baseline_series,
    build_dataset,
    hc_series,
    sample_at_budgets,
    sample_expert_annotations,
)
from .table3 import Table3Result, TimingRow, make_timing_belief, run_table3

__all__ = [
    "DatasetSpec",
    "DownstreamComparison",
    "EXPERIMENT_POOL",
    "ExperimentResult",
    "ExperimentScale",
    "PAPER_SCALE",
    "SMALL_SCALE",
    "Series",
    "SweepGrid",
    "Table3Result",
    "TimingRow",
    "ascii_chart",
    "baseline_series",
    "chart_experiment",
    "build_dataset",
    "format_downstream",
    "format_experiment",
    "format_replicated",
    "format_series_table",
    "format_sweep",
    "format_table",
    "format_table3",
    "get_scale",
    "hc_series",
    "make_timing_belief",
    "run_ablation_cost_model",
    "run_ablation_miscalibration",
    "run_ablation_panel_size",
    "run_ablation_selectors",
    "run_downstream_comparison",
    "run_figure2",
    "run_figure2_replicated",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_table3",
    "run_theta_k_sweep",
    "sample_at_budgets",
    "sample_expert_annotations",
    "save_json",
]
