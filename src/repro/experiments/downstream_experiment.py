"""Downstream-training experiment: label quality -> model quality.

Makes the paper's introductory motivation measurable: labels produced
by HC and by each aggregation baseline train the same classifier on the
same features, and the resulting test accuracies are compared to the
clean-label ceiling.  A deliberately noisy preliminary crowd is used so
label errors are large enough to move the model (with the main
experiments' 8-answer redundancy the noise floor is too low to matter,
which is itself worth knowing).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..aggregation.registry import make_aggregator
from ..datasets.sentiment import make_sentiment_dataset
from ..datasets.synthetic import WorkerPoolSpec
from ..downstream import FeatureSpec, compare_labelings
from ..simulation.session import SessionConfig, run_hc_session

#: Noisy preliminary tier: errors frequent enough to damage training.
NOISY_POOL = WorkerPoolSpec(
    num_preliminary=30,
    num_expert=3,
    preliminary_accuracy=(0.52, 0.7),
    expert_accuracy=(0.9, 0.97),
)


@dataclass
class DownstreamComparison:
    """Aggregated downstream scores of several labeling methods."""

    labels: list[str]
    model_accuracy_mean: dict[str, float]
    model_accuracy_std: dict[str, float]
    train_label_accuracy: dict[str, float]
    clean_ceiling_mean: float
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "labels": self.labels,
            "model_accuracy_mean": self.model_accuracy_mean,
            "model_accuracy_std": self.model_accuracy_std,
            "train_label_accuracy": self.train_label_accuracy,
            "clean_ceiling_mean": self.clean_ceiling_mean,
            "metadata": self.metadata,
        }


def run_downstream_comparison(
    num_groups: int = 40,
    budget: float = 200.0,
    methods: tuple[str, ...] = ("MV", "EBCC"),
    num_feature_seeds: int = 5,
    feature_spec: FeatureSpec | None = None,
    seed: int = 0,
) -> DownstreamComparison:
    """Compare HC's labels against aggregation baselines downstream.

    Runs one HC session and each baseline once on a noisy-crowd
    dataset, then trains/test-scores a logistic model over
    ``num_feature_seeds`` independent feature worlds and averages.
    """
    if num_feature_seeds < 1:
        raise ValueError("num_feature_seeds must be >= 1")
    feature_spec = feature_spec or FeatureSpec(
        num_features=6, separation=2.5, noise_scale=1.0
    )
    dataset = make_sentiment_dataset(
        num_groups=num_groups,
        answers_per_fact=6,
        pool=NOISY_POOL,
        seed=seed,
    )
    hc_run = run_hc_session(
        dataset,
        SessionConfig(theta=0.9, k=1, budget=budget, seed=seed),
    )
    labelings: dict[str, dict[int, bool]] = {"HC": hc_run.final_labels}
    for name in methods:
        result = make_aggregator(name).fit(
            dataset.preliminary_annotations(0.9)
        )
        labelings[name] = {
            fact_id: bool(result.predictions[fact_id])
            for fact_id in dataset.fact_ids
        }

    labels = list(labelings)
    scores: dict[str, list[float]] = {label: [] for label in labels}
    ceilings: list[float] = []
    train_accuracy: dict[str, float] = {}
    for feature_seed in range(num_feature_seeds):
        results = compare_labelings(
            dataset.ground_truth,
            labelings,
            spec=feature_spec,
            seed=seed + 100 + feature_seed,
        )
        for result in results:
            scores[result.label].append(result.model_accuracy)
            train_accuracy[result.label] = result.train_label_accuracy
            ceilings.append(result.clean_label_accuracy)

    return DownstreamComparison(
        labels=labels,
        model_accuracy_mean={
            label: float(np.mean(values))
            for label, values in scores.items()
        },
        model_accuracy_std={
            label: float(np.std(values))
            for label, values in scores.items()
        },
        train_label_accuracy=train_accuracy,
        clean_ceiling_mean=float(np.mean(ceilings)),
        metadata={
            "num_groups": num_groups,
            "budget": budget,
            "num_feature_seeds": num_feature_seeds,
            "seed": seed,
        },
    )


def format_downstream(comparison: DownstreamComparison) -> str:
    """Text table of a downstream comparison."""
    from .reporting import format_table

    header = ["method", "label acc", "model acc", "±std", "gap to clean"]
    rows = []
    for label in comparison.labels:
        rows.append(
            [
                label,
                f"{comparison.train_label_accuracy[label]:.4f}",
                f"{comparison.model_accuracy_mean[label]:.4f}",
                f"{comparison.model_accuracy_std[label]:.4f}",
                f"{comparison.clean_ceiling_mean - comparison.model_accuracy_mean[label]:+.4f}",
            ]
        )
    title = (
        "Downstream training (clean-label ceiling "
        f"{comparison.clean_ceiling_mean:.4f})"
    )
    return f"{title}\n{format_table(header, rows)}"
