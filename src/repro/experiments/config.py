"""Experiment configuration presets.

Two scales are provided for every experiment: ``paper`` (matching the
section IV-A setup: 200 tasks x 5 facts, 8 answers per fact, theta=0.9,
budgets up to 1000) and ``small`` (a fast-but-same-shape preset used by
the test suite and the benchmark harness so a full reproduction run
stays laptop-friendly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..datasets.synthetic import WorkerPoolSpec

#: Worker pool used by the experiments: many preliminary workers whose
#: accuracies span the Figure 4 theta range (0.8-0.9), plus a small
#: expert tier above 0.9 (the paper's theta=0.9 split leaves few experts).
EXPERIMENT_POOL = WorkerPoolSpec(
    num_preliminary=40,
    num_expert=3,
    preliminary_accuracy=(0.6, 0.89),
    expert_accuracy=(0.9, 0.97),
)


@dataclass(frozen=True)
class DatasetSpec:
    """Parameters of the evaluation dataset."""

    num_groups: int = 200
    group_size: int = 5
    answers_per_fact: int = 8
    pool: WorkerPoolSpec = EXPERIMENT_POOL
    seed: int = 0


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by the figure runners.

    Attributes
    ----------
    dataset:
        The evaluation dataset spec.
    budgets:
        Budget grid at which curves are sampled.
    max_budget:
        Total expert-answer budget of each run (>= max(budgets)).
    seed:
        Seed for expert-panel sampling and baseline subsampling.
    """

    dataset: DatasetSpec = DatasetSpec()
    budgets: tuple[int, ...] = (100, 200, 300, 400, 500, 600, 700, 800, 900, 1000)
    seed: int = 0

    @property
    def max_budget(self) -> int:
        return max(self.budgets)


#: Paper-faithful scale (section IV-A).
PAPER_SCALE = ExperimentScale()

#: Fast preset for tests and pytest-benchmark runs: same shapes, ~20x
#: less work.
SMALL_SCALE = ExperimentScale(
    dataset=DatasetSpec(num_groups=30, group_size=5, answers_per_fact=8),
    budgets=(20, 40, 60, 80, 100, 120, 140),
)


def get_scale(name: str) -> ExperimentScale:
    """Look up a scale preset by name ("paper" or "small")."""
    presets = {"paper": PAPER_SCALE, "small": SMALL_SCALE}
    try:
        return presets[name]
    except KeyError:
        raise ValueError(
            f"unknown scale {name!r}; available: {', '.join(presets)}"
        ) from None
