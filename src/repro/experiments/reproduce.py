"""One-command reproduction driver: regenerate every table and figure.

Usage::

    python -m repro.experiments.reproduce --scale paper --out results/
    python -m repro.experiments.reproduce --scale small        # quick run
    python -m repro.experiments.reproduce --only figure2 table3
    python -m repro.experiments.reproduce --scale small --jobs 4

Writes one JSON and one ``.txt`` report per experiment into the output
directory and prints the text reports as it goes.  ``--jobs N`` fans
the selected experiments across ``N`` worker processes — experiments
are mutually independent (each seeds its own RNGs and writes its own
files), so the outputs are identical to a serial run's.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable

from .config import get_scale
from .figures import (
    run_ablation_cost_model,
    run_ablation_miscalibration,
    run_ablation_panel_size,
    run_ablation_selectors,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
)
from .reporting import format_experiment, format_table3, save_json
from .table3 import run_table3

#: Experiment registry: name -> (runner taking a scale, is_table3 flag).
FIGURE_RUNNERS: dict[str, Callable] = {
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "ablation_selectors": run_ablation_selectors,
    "ablation_cost_model": run_ablation_cost_model,
    "ablation_miscalibration": run_ablation_miscalibration,
    "ablation_panel_size": run_ablation_panel_size,
}

#: Experiments with bespoke runners (not in :data:`FIGURE_RUNNERS`).
EXTRA_EXPERIMENTS = ("table3", "sweep_theta_k", "figure2_replicated")


def available_experiments() -> list[str]:
    """Every name ``run_all(only=...)`` accepts, in default run order."""
    return [*FIGURE_RUNNERS, *EXTRA_EXPERIMENTS]


def _run_one(
    name: str,
    scale_name: str,
    out_dir: str,
    table3_facts: int,
    table3_max_k: int,
    table3_timeout: float,
) -> tuple[str, str, float]:
    """Run one experiment, write its artifacts, return (name, report,
    seconds).  Module-level and plain-argument so ``--jobs`` can run it
    in a spawned worker process."""
    scale = get_scale(scale_name)
    out_path = Path(out_dir)
    start = time.perf_counter()
    if name == "table3":
        result = run_table3(
            k_values=tuple(range(1, table3_max_k + 1)),
            num_facts=table3_facts,
            opt_timeout_seconds=table3_timeout,
        )
        report = format_table3(result)
        (out_path / "table3.json").write_text(
            json.dumps(result.to_dict(), indent=2)
        )
    elif name == "sweep_theta_k":
        from .sweeps import format_sweep, run_theta_k_sweep

        grid = run_theta_k_sweep(scale)
        report = (
            format_sweep(grid, "accuracy")
            + "\n\n"
            + format_sweep(grid, "quality")
        )
        (out_path / "sweep_theta_k.json").write_text(
            json.dumps(grid.to_dict(), indent=2)
        )
    elif name == "figure2_replicated":
        from .reporting import format_replicated
        from .sweeps import run_figure2_replicated

        series = run_figure2_replicated(scale)
        report = format_replicated([series])
        (out_path / "figure2_replicated.json").write_text(
            json.dumps(series.to_dict(), indent=2)
        )
    else:
        result = FIGURE_RUNNERS[name](scale)
        report = format_experiment(result)
        save_json(result, out_path / f"{name}.json")
    elapsed = time.perf_counter() - start
    (out_path / f"{name}.txt").write_text(report + "\n")
    return name, report, elapsed


def run_all(
    scale_name: str = "paper",
    out_dir: str | Path = "results",
    only: list[str] | None = None,
    table3_facts: int = 20,
    table3_max_k: int = 10,
    table3_timeout: float = 60.0,
    jobs: int = 1,
) -> dict[str, float]:
    """Run the selected experiments; returns wall-clock seconds each took.

    Unknown ``only`` names fail fast — before any experiment runs — so
    a typo cannot cost an hour of compute first.  ``jobs > 1`` runs the
    selection on a spawn-safe process pool; reports still print in
    selection order.
    """
    scale = get_scale(scale_name)
    del scale  # validated here, rebuilt per worker
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    available = available_experiments()
    selected = list(only) if only else available
    unknown = [name for name in selected if name not in available]
    if unknown:
        raise ValueError(
            f"unknown experiment {unknown[0]!r}; "
            f"available: {', '.join(available)}"
        )
    timings: dict[str, float] = {}

    def _report(name: str, report: str, elapsed: float) -> None:
        timings[name] = elapsed
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(report)
        print()

    extra = (table3_facts, table3_max_k, table3_timeout)
    if jobs > 1 and len(selected) > 1:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(selected)), mp_context=context
        ) as pool:
            futures = [
                pool.submit(_run_one, name, scale_name, str(out_dir), *extra)
                for name in selected
            ]
            for future in futures:
                _report(*future.result())
    else:
        for name in selected:
            _report(*_run_one(name, scale_name, str(out_dir), *extra))

    (out_dir / "timings.json").write_text(json.dumps(timings, indent=2))
    return timings


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "small"))
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiments to run")
    parser.add_argument("--table3-facts", type=int, default=20)
    parser.add_argument("--table3-max-k", type=int, default=10)
    parser.add_argument("--table3-timeout", type=float, default=60.0)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes to fan experiments across")
    args = parser.parse_args(argv)
    run_all(
        scale_name=args.scale,
        out_dir=args.out,
        only=args.only,
        table3_facts=args.table3_facts,
        table3_max_k=args.table3_max_k,
        table3_timeout=args.table3_timeout,
        jobs=args.jobs,
    )


if __name__ == "__main__":
    main()
