"""One-command reproduction driver: regenerate every table and figure.

Usage::

    python -m repro.experiments.reproduce --scale paper --out results/
    python -m repro.experiments.reproduce --scale small        # quick run
    python -m repro.experiments.reproduce --only figure2 table3

Writes one JSON and one ``.txt`` report per experiment into the output
directory and prints the text reports as it goes.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path
from typing import Callable

from .config import get_scale
from .figures import (
    run_ablation_cost_model,
    run_ablation_miscalibration,
    run_ablation_panel_size,
    run_ablation_selectors,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
)
from .reporting import format_experiment, format_table3, save_json
from .table3 import run_table3

#: Experiment registry: name -> (runner taking a scale, is_table3 flag).
FIGURE_RUNNERS: dict[str, Callable] = {
    "figure2": run_figure2,
    "figure3": run_figure3,
    "figure4": run_figure4,
    "figure5": run_figure5,
    "figure6": run_figure6,
    "figure7": run_figure7,
    "ablation_selectors": run_ablation_selectors,
    "ablation_cost_model": run_ablation_cost_model,
    "ablation_miscalibration": run_ablation_miscalibration,
    "ablation_panel_size": run_ablation_panel_size,
}


def run_all(
    scale_name: str = "paper",
    out_dir: str | Path = "results",
    only: list[str] | None = None,
    table3_facts: int = 20,
    table3_max_k: int = 10,
    table3_timeout: float = 60.0,
) -> dict[str, float]:
    """Run the selected experiments; returns wall-clock seconds each took."""
    scale = get_scale(scale_name)
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    selected = only or [
        *FIGURE_RUNNERS, "table3", "sweep_theta_k", "figure2_replicated",
    ]
    timings: dict[str, float] = {}

    for name in selected:
        start = time.perf_counter()
        if name == "table3":
            result = run_table3(
                k_values=tuple(range(1, table3_max_k + 1)),
                num_facts=table3_facts,
                opt_timeout_seconds=table3_timeout,
            )
            report = format_table3(result)
            (out_dir / "table3.json").write_text(
                json.dumps(result.to_dict(), indent=2)
            )
        elif name == "sweep_theta_k":
            from .sweeps import format_sweep, run_theta_k_sweep

            grid = run_theta_k_sweep(scale)
            report = (
                format_sweep(grid, "accuracy")
                + "\n\n"
                + format_sweep(grid, "quality")
            )
            (out_dir / "sweep_theta_k.json").write_text(
                json.dumps(grid.to_dict(), indent=2)
            )
        elif name == "figure2_replicated":
            from .reporting import format_replicated
            from .sweeps import run_figure2_replicated

            series = run_figure2_replicated(scale)
            report = format_replicated([series])
            (out_dir / "figure2_replicated.json").write_text(
                json.dumps(series.to_dict(), indent=2)
            )
        elif name in FIGURE_RUNNERS:
            result = FIGURE_RUNNERS[name](scale)
            report = format_experiment(result)
            save_json(result, out_dir / f"{name}.json")
        else:
            available = [
                *FIGURE_RUNNERS, "table3", "sweep_theta_k",
                "figure2_replicated",
            ]
            raise ValueError(
                f"unknown experiment {name!r}; "
                f"available: {', '.join(available)}"
            )
        elapsed = time.perf_counter() - start
        timings[name] = elapsed
        (out_dir / f"{name}.txt").write_text(report + "\n")
        print(f"=== {name} ({elapsed:.1f}s) ===")
        print(report)
        print()

    (out_dir / "timings.json").write_text(json.dumps(timings, indent=2))
    return timings


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="paper",
                        choices=("paper", "small"))
    parser.add_argument("--out", default="results")
    parser.add_argument("--only", nargs="*", default=None,
                        help="subset of experiments to run")
    parser.add_argument("--table3-facts", type=int, default=20)
    parser.add_argument("--table3-max-k", type=int, default=10)
    parser.add_argument("--table3-timeout", type=float, default=60.0)
    args = parser.parse_args(argv)
    run_all(
        scale_name=args.scale,
        out_dir=args.out,
        only=args.only,
        table3_facts=args.table3_facts,
        table3_max_k=args.table3_max_k,
        table3_timeout=args.table3_timeout,
    )


if __name__ == "__main__":
    main()
