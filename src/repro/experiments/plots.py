"""Dependency-free ASCII line charts for experiment curves.

The reproduction environment has no plotting stack, so the figure
runners' series are rendered as fixed-width character charts — good
enough to eyeball every trend the paper plots, and embeddable in text
reports.
"""

from __future__ import annotations

import math
from typing import Sequence

from .runner import ExperimentResult, Series

#: Glyphs assigned to series in order.
_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Sequence[Series],
    metric: str = "accuracy",
    width: int = 64,
    height: int = 18,
) -> str:
    """Render budget-vs-metric curves as an ASCII chart with a legend.

    Parameters
    ----------
    series:
        The curves to draw (at most ``len(_MARKERS)``); all must share
        a budget grid.
    metric:
        ``"accuracy"`` or ``"quality"``.
    width, height:
        Plot-area size in characters (excluding axes).
    """
    if metric not in ("accuracy", "quality"):
        raise ValueError("metric must be 'accuracy' or 'quality'")
    populated = [s for s in series if getattr(s, metric)]
    if not populated:
        raise ValueError(f"no series carries {metric}")
    if len(populated) > len(_MARKERS):
        raise ValueError(
            f"at most {len(_MARKERS)} series can be drawn"
        )
    if width < 8 or height < 4:
        raise ValueError("chart must be at least 8x4")

    budgets = populated[0].budgets
    for s in populated:
        if s.budgets != budgets:
            raise ValueError("all series must share the same budget grid")

    all_values = [
        value
        for s in populated
        for value in getattr(s, metric)
        if not math.isnan(value)
    ]
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0
    budget_low, budget_high = min(budgets), max(budgets)
    budget_span = (budget_high - budget_low) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, s in enumerate(populated):
        marker = _MARKERS[index]
        for budget, value in zip(s.budgets, getattr(s, metric)):
            if math.isnan(value):
                continue
            column = round(
                (budget - budget_low) / budget_span * (width - 1)
            )
            row = round((high - value) / (high - low) * (height - 1))
            grid[row][column] = marker

    lines = []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:>10.3f} |"
        elif row_index == height - 1:
            label = f"{low:>10.3f} |"
        else:
            label = " " * 10 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    axis = (
        " " * 12
        + f"{budget_low:<{max(1, width // 2)}g}"
        + f"{budget_high:>{width - max(1, width // 2)}g}"
    )
    lines.append(axis)
    legend = "  ".join(
        f"{_MARKERS[index]} {s.label}" for index, s in enumerate(populated)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def chart_experiment(
    result: ExperimentResult, width: int = 64, height: int = 18
) -> str:
    """ASCII charts (accuracy, then quality where present) for a whole
    experiment result."""
    parts = []
    for metric in ("accuracy", "quality"):
        populated = [s for s in result.series if getattr(s, metric)]
        if populated:
            parts.append(f"{result.name} — {metric}")
            parts.append(
                ascii_chart(populated, metric, width=width, height=height)
            )
    return "\n".join(parts)
