"""Shared machinery of the figure runners.

Budget protocol (documented here once, referenced by EXPERIMENTS.md):
the paper argues HC needs "at least the same human labor cost, or even
lower" than plain aggregation.  We make that comparison explicit:

* every method receives the *same* preliminary labels — the recorded
  CP annotations of the dataset (the sunk labeling pass);
* a budget of ``B`` buys ``B`` additional expert answers.  HC spends
  them on selected checking tasks and fuses them with Bayes; an
  aggregation baseline spends them on uniformly random (fact, expert)
  labels and re-aggregates everything.

So at every budget point both sides have consumed exactly the same
number of answers from the same worker pools; what differs is targeting
and probabilistic fusion — the paper's contribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..aggregation.base import Annotation, AnswerMatrix
from ..aggregation.registry import make_aggregator
from ..core.hc import RunResult
from ..core.workers import Crowd
from ..datasets.schema import CrowdLabelingDataset
from ..datasets.sentiment import make_sentiment_dataset
from .config import DatasetSpec


@dataclass
class Series:
    """One labeled curve of an experiment."""

    label: str
    budgets: list[float]
    accuracy: list[float]
    quality: list[float] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "budgets": list(self.budgets),
            "accuracy": list(self.accuracy),
            "quality": list(self.quality),
        }


@dataclass
class ExperimentResult:
    """A named collection of series plus free-form metadata."""

    name: str
    series: list[Series]
    metadata: dict = field(default_factory=dict)

    def by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(f"no series labeled {label!r} in {self.name}")

    @property
    def labels(self) -> list[str]:
        return [series.label for series in self.series]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "series": [series.to_dict() for series in self.series],
            "metadata": {
                key: value
                for key, value in self.metadata.items()
                if isinstance(value, (str, int, float, bool, list, dict))
            },
        }


def build_dataset(spec: DatasetSpec) -> CrowdLabelingDataset:
    """The sentiment stand-in dataset for an experiment spec."""
    return make_sentiment_dataset(
        num_groups=spec.num_groups,
        group_size=spec.group_size,
        answers_per_fact=spec.answers_per_fact,
        pool=spec.pool,
        seed=spec.seed,
    )


def sample_at_budgets(
    result: RunResult, budgets: Sequence[float]
) -> tuple[list[float], list[float]]:
    """Step-sample a run's (accuracy, quality) history at budget points.

    For each requested budget the last round whose cumulative spend does
    not exceed it is used (curves are right-continuous step functions).
    """
    spent = result.budgets
    accuracies = result.accuracies
    qualities = result.qualities
    sampled_accuracy: list[float] = []
    sampled_quality: list[float] = []
    for budget in budgets:
        index = int(np.searchsorted(spent, budget, side="right")) - 1
        index = max(index, 0)
        accuracy = accuracies[index]
        sampled_accuracy.append(float(accuracy) if accuracy is not None else float("nan"))
        sampled_quality.append(float(qualities[index]))
    return sampled_accuracy, sampled_quality


def hc_series(
    label: str, result: RunResult, budgets: Sequence[float]
) -> Series:
    """Wrap an HC run into a budget-sampled :class:`Series`."""
    accuracy, quality = sample_at_budgets(result, budgets)
    return Series(
        label=label,
        budgets=list(budgets),
        accuracy=accuracy,
        quality=quality,
    )


def sample_expert_annotations(
    dataset: CrowdLabelingDataset,
    experts: Crowd,
    num_annotations: int,
    rng: np.random.Generator,
) -> list[Annotation]:
    """``num_annotations`` fresh expert labels on uniformly random facts.

    Each (fact, expert) pair is used at most once; answers are sampled
    from the expert's error model against the ground truth — the same
    process the simulated checking panel uses, so baselines and HC draw
    from identical answer distributions.
    """
    expert_columns = [
        dataset.worker_column(worker.worker_id) for worker in experts
    ]
    accuracies = [worker.accuracy for worker in experts]
    num_facts = dataset.num_facts
    total_pairs = num_facts * len(experts)
    num_annotations = min(num_annotations, total_pairs)
    chosen = rng.choice(total_pairs, size=num_annotations, replace=False)
    annotations: list[Annotation] = []
    for pair_index in chosen:
        fact_id = int(pair_index) % num_facts
        expert_index = int(pair_index) // num_facts
        truth = dataset.ground_truth[fact_id]
        correct = rng.random() < accuracies[expert_index]
        answer = truth if correct else not truth
        annotations.append(
            Annotation(
                task=fact_id,
                worker=expert_columns[expert_index],
                label=int(answer),
            )
        )
    return annotations


def baseline_series(
    dataset: CrowdLabelingDataset,
    aggregator_name: str,
    budgets: Sequence[float],
    theta: float,
    seed: int = 0,
) -> Series:
    """Budget curve of one aggregation baseline under the shared protocol.

    At budget ``B`` the baseline aggregates the recorded CP annotations
    plus ``B`` random fresh expert annotations.  The extra annotations
    are nested across budgets (the budget-200 pool contains the
    budget-100 pool), so curves are monotone in information.
    """
    experts, _preliminary = dataset.split_crowd(theta)
    cp_matrix = dataset.preliminary_annotations(theta)
    truth = dataset.truth_vector()

    rng = np.random.default_rng(seed)
    max_budget = int(max(budgets))
    extra_pool = sample_expert_annotations(dataset, experts, max_budget, rng)

    accuracies: list[float] = []
    for budget in budgets:
        combined = list(cp_matrix.annotations) + extra_pool[: int(budget)]
        matrix = AnswerMatrix(
            combined,
            num_tasks=dataset.annotations.num_tasks,
            num_workers=dataset.annotations.num_workers,
            num_classes=2,
        )
        aggregator = make_aggregator(aggregator_name)
        result = aggregator.fit(matrix)
        accuracies.append(result.accuracy(truth))
    return Series(
        label=aggregator_name,
        budgets=list(budgets),
        accuracy=accuracies,
    )
