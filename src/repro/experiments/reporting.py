"""Plain-text reporting of experiment results.

Renders the figure runners' series and the Table III rows as aligned
ASCII tables — the reproduction's equivalent of the paper's plots —
plus JSON export for downstream plotting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from .runner import ExperimentResult, Series
from .table3 import Table3Result


def format_table(
    header: Sequence[str], rows: Sequence[Sequence[str]]
) -> str:
    """Align a header and rows into a fixed-width text table."""
    columns = [list(column) for column in zip(header, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    for row_index, row in enumerate([list(header)] + [list(r) for r in rows]):
        line = "  ".join(
            cell.rjust(width) for cell, width in zip(row, widths)
        )
        lines.append(line)
        if row_index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_series_table(
    result: ExperimentResult, metric: str = "accuracy"
) -> str:
    """One row per budget, one column per series, for a chosen metric.

    ``metric`` is ``"accuracy"`` or ``"quality"``.
    """
    if metric not in ("accuracy", "quality"):
        raise ValueError("metric must be 'accuracy' or 'quality'")
    populated = [
        series for series in result.series if getattr(series, metric)
    ]
    if not populated:
        raise ValueError(f"no series of {result.name} carries {metric}")
    budgets = populated[0].budgets
    header = ["budget"] + [series.label for series in populated]
    rows = []
    for index, budget in enumerate(budgets):
        row = [f"{budget:g}"]
        for series in populated:
            values = getattr(series, metric)
            value = values[index] if index < len(values) else float("nan")
            row.append(f"{value:.4f}" if metric == "accuracy" else f"{value:.2f}")
        rows.append(row)
    title = f"{result.name} — {metric}"
    return f"{title}\n{format_table(header, rows)}"


def format_experiment(result: ExperimentResult) -> str:
    """Full text report: accuracy table plus quality table if present."""
    parts = []
    if any(series.accuracy for series in result.series):
        parts.append(format_series_table(result, "accuracy"))
    if any(series.quality for series in result.series):
        parts.append(format_series_table(result, "quality"))
    return "\n\n".join(parts)


def format_table3(result: Table3Result) -> str:
    """Render Table III (average selection seconds per round)."""
    header = ["k", "OPT", "Approx"]
    rows = [
        [str(row.k), row.opt_display, f"{row.approx_seconds:.4f}"]
        for row in result.rows
    ]
    meta = result.metadata
    title = (
        "Table III — avg selection time per round (s); "
        f"{meta.get('num_facts', '?')} facts, "
        f"{meta.get('num_experts', '?')} experts"
    )
    return f"{title}\n{format_table(header, rows)}"


def format_replicated(series_list) -> str:
    """Table of multi-seed replicated curves (mean ± std per budget).

    Accepts :class:`repro.analysis.ReplicatedSeries` objects sharing a
    budget grid.
    """
    if not series_list:
        raise ValueError("need at least one replicated series")
    budgets = series_list[0].budgets
    for series in series_list:
        if series.budgets != budgets:
            raise ValueError("all series must share the budget grid")
    header = ["budget"]
    for series in series_list:
        header.append(f"{series.label} acc")
        header.append(f"{series.label} qual")
    rows = []
    for index, budget in enumerate(budgets):
        row = [f"{budget:g}"]
        for series in series_list:
            row.append(
                f"{series.accuracy_mean[index]:.4f}"
                f"±{series.accuracy_std[index]:.4f}"
            )
            row.append(
                f"{series.quality_mean[index]:.2f}"
                f"±{series.quality_std[index]:.2f}"
            )
        rows.append(row)
    runs = series_list[0].num_runs
    return f"replicated over {runs} seeds\n{format_table(header, rows)}"


def save_json(
    result: ExperimentResult | Table3Result, path: str | Path
) -> Path:
    """Write a result's dictionary form as JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(result.to_dict(), handle, indent=2)
    return path
