"""Delivery-path fault injection for the streaming runtime.

:mod:`repro.engine.chaos` breaks the shard transport; this module
breaks the *arrival path*: the generated event log is well-ordered, but
what the campaign actually receives may be reordered, duplicated,
stalled (delivered far later than generated) or dropped entirely.

:class:`StreamChaos` is a pure, seeded plan.  Given the generated log
it computes the full *delivery schedule* up front
(:meth:`plan_delivery`) — a deterministic function of ``(rates, seed)``
— so a killed-and-resumed campaign replays exactly the same degraded
delivery as an uninterrupted one.  Per-event decisions are stateless
draws from ``SeedSequence([seed, salt, event_seq])``, mirroring the
engine plan's idiom.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..simulation.faults import parse_rate_spec
from .events import StreamEvent

#: Injectable delivery faults, in the order draws are checked.
STREAM_CHAOS_ACTIONS = ("drop", "stall", "reorder", "duplicate")

#: Salt for the per-event draw stream (distinct from other planners).
_DRAW_SALT = 0x5C40


@dataclass(frozen=True)
class StreamChaos:
    """Seeded configuration of arrival-path fault injection.

    Parameters
    ----------
    drop, stall, reorder, duplicate:
        Per-event probabilities (mutually exclusive per draw, checked
        in that order) that the event is lost, delivered far out of
        position (``stall_shift`` slots late — past the straggler
        window, exercising the late-drop path), delivered slightly out
        of position (``reorder_shift`` slots late — inside the
        watermark's grace, exercising the late-admit path), or
        delivered twice (the duplicate ``duplicate_shift`` slots after
        the original, exercising dedup).
    reorder_shift, stall_shift, duplicate_shift:
        Displacements in delivery slots for the respective faults.
    seed:
        Seed of the per-event draw streams.
    """

    drop: float = 0.0
    stall: float = 0.0
    reorder: float = 0.0
    duplicate: float = 0.0
    reorder_shift: int = 3
    stall_shift: int = 24
    duplicate_shift: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        total = 0.0
        for name in STREAM_CHAOS_ACTIONS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} rate must lie in [0, 1], got {rate}"
                )
            total += rate
        if total > 1.0 + 1e-12:
            raise ValueError(
                "drop + stall + reorder + duplicate must not exceed 1 "
                "(they are mutually exclusive per-event actions)"
            )
        for name in ("reorder_shift", "stall_shift", "duplicate_shift"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be at least 1")

    @property
    def enabled(self) -> bool:
        return any(
            getattr(self, name) > 0.0 for name in STREAM_CHAOS_ACTIONS
        )

    def action_for(self, event_seq: int) -> str | None:
        """The fault to inject on one event, or ``None``.

        Deterministic and stateless: the draw comes from its own
        ``SeedSequence([seed, salt, event_seq])`` stream, so the same
        plan degrades the same events regardless of where a resumed
        campaign picks the stream back up.
        """
        if not self.enabled:
            return None
        draw = np.random.default_rng(
            np.random.SeedSequence(
                [int(self.seed), _DRAW_SALT, int(event_seq)]
            )
        ).random()
        threshold = 0.0
        for name in STREAM_CHAOS_ACTIONS:
            threshold += getattr(self, name)
            if draw < threshold:
                return name
        return None

    def plan_delivery(
        self, events: "list[StreamEvent]"
    ) -> "list[StreamEvent]":
        """The degraded delivery order of a generated event log.

        Each event gets a delivery priority equal to its generated
        position, displaced forward by the injected fault; a stable
        sort by ``(priority, seq, copy)`` yields the order the campaign
        will actually receive.  Dropped events are absent; duplicated
        events appear twice (same ``seq`` — admission dedup must catch
        the second copy).
        """
        scheduled: list[tuple[int, int, int, StreamEvent]] = []
        for position, event in enumerate(events):
            action = self.action_for(event.seq)
            if action == "drop":
                continue
            priority = position
            if action == "stall":
                priority = position + self.stall_shift
            elif action == "reorder":
                priority = position + self.reorder_shift
            scheduled.append((priority, event.seq, 0, event))
            if action == "duplicate":
                scheduled.append(
                    (position + self.duplicate_shift, event.seq, 1, event)
                )
        scheduled.sort(key=lambda entry: entry[:3])
        return [entry[3] for entry in scheduled]

    def to_dict(self) -> dict:
        """JSON form, stored in the journal's stream config record."""
        return {
            "drop": self.drop,
            "stall": self.stall,
            "reorder": self.reorder,
            "duplicate": self.duplicate,
            "reorder_shift": self.reorder_shift,
            "stall_shift": self.stall_shift,
            "duplicate_shift": self.duplicate_shift,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload) -> "StreamChaos":
        return cls(
            drop=float(payload.get("drop", 0.0)),
            stall=float(payload.get("stall", 0.0)),
            reorder=float(payload.get("reorder", 0.0)),
            duplicate=float(payload.get("duplicate", 0.0)),
            reorder_shift=int(payload.get("reorder_shift", 3)),
            stall_shift=int(payload.get("stall_shift", 24)),
            duplicate_shift=int(payload.get("duplicate_shift", 2)),
            seed=int(payload.get("seed", 0)),
        )

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "StreamChaos":
        """Build a plan from a ``name=rate,...`` CLI/env spec.

        Example: ``"reorder=0.1,duplicate=0.05,stall=0.02"``.
        """
        rates = parse_rate_spec(spec, STREAM_CHAOS_ACTIONS)
        return cls(seed=seed, **rates)

    @classmethod
    def from_env(cls, environ=None) -> "StreamChaos | None":
        """Plan from ``REPRO_STREAM_CHAOS`` (+ ``REPRO_STREAM_CHAOS_SEED``),
        or ``None`` when unset — the hook the CI ``stream-chaos`` matrix
        uses to degrade delivery under the whole stream test suite."""
        env = os.environ if environ is None else environ
        spec = env.get("REPRO_STREAM_CHAOS")
        if not spec:
            return None
        plan = cls.parse(
            spec, seed=int(env.get("REPRO_STREAM_CHAOS_SEED", "0"))
        )
        return plan if plan.enabled else None
