"""The streaming campaign: admit the delivered stream, exactly-once.

:class:`StreamingCampaign` closes the loop between the event log
(:mod:`~repro.stream.arrivals`), the degraded delivery schedule
(:mod:`~repro.stream.chaos`), the incremental initializer
(:mod:`~repro.stream.incremental`) and the fault-tolerant checking
session (:mod:`~repro.simulation.resilient`):

1. **Admit** the next delivered event: dedup on ``seq`` (duplicates
   from chaos or redelivery are dropped — exactly-once ingestion),
   classify against the watermark (on-time / late-within-straggler /
   too-late-dropped), and fold it into the builder, the simulated
   expert panel's ground truth, or the checking panel (worker churn,
   routed through the trust supervisor's CircuitBreaker/CUSUM state via
   :meth:`~repro.simulation.resilient.ResilientCheckingSession.adopt_expert`
   / ``retire_expert``).
2. **Seal** whatever head chunks the builder says are ready — normally
   or by straggler timeout — and grow the live session's belief
   (mid-campaign group formation; the first seal *creates* the
   session).
3. **Drive** up to ``rounds_per_event`` checking rounds.
4. **Checkpoint** at the event boundary.

Every checkpoint — the session's own round checkpoints included —
carries the stream cursor, dedup state, watermark and builder state
under the ``"stream"`` key (FORMAT_VERSION 7), so a campaign killed at
*any* event boundary resumes exactly-once: :meth:`resume` replays from
the last intact checkpoint and the continued journal is byte-identical
to an uninterrupted run over the same delivered stream.

Before the first group seals there is no session and no budget spend;
the runtime journals its own ``{"kind": "stream_checkpoint"}`` records
(one per delivered event) so even a bootstrap-phase kill resumes
exactly-once.
"""

from __future__ import annotations

import json
import os
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from ..core.answers import AnswerSet
from ..core.budget import CheckingBudget, CostModel
from ..core.incidents import FaultEvent
from ..core.kernel import default_belief_epsilon
from ..core.observations import BeliefState, FactoredBelief
from ..core.selection import Selector
from ..core.serialization import (
    FORMAT_VERSION,
    SerializationError,
    _fsync_directory,
    append_journal_record,
    crowd_from_dict,
    crowd_to_dict,
    invalidate_journal_cache,
    read_journal,
    trim_journal_to_last_checkpoint,
)
from ..core.trust import TrustPolicy
from ..core.workers import Crowd, Worker
from ..obs import OBS
from ..simulation.oracle import SimulatedExpertPanel
from ..simulation.resilient import (
    ResilientCheckingSession,
    ResilientRunResult,
    RetryPolicy,
)
from .chaos import StreamChaos
from .events import StreamEvent
from .incremental import StreamingBeliefBuilder, WatermarkTracker

#: Seed salt of the simulated expert panel's answer stream.
_SOURCE_SALT = 0x50CE


def _trim_stream_bootstrap_tail(path: Path) -> int:
    """Cut complete runtime records left dangling past the last
    bootstrap boundary, returning the bytes removed.

    A kill (or an interior-damage salvage) can leave the journal ending
    on fully written records — a ``group_sealed`` event, say — whose
    covering checkpoint never landed.  Bootstrap replay regenerates
    them, so keeping them would journal each twice.  The safe prefix
    ends at the last ``stream_checkpoint`` record, or, when none
    survived, at the ``stream`` config record that closes the metadata
    prefix.  Unparseable lines abort the trim: that is legacy interior
    damage, where cutting is not ours to decide.
    """
    raw = path.read_bytes()
    offset = 0
    keep_end = None
    for line in raw.splitlines(keepends=True):
        offset += len(line)
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return 0
        kind = record.get("kind") if isinstance(record, dict) else None
        if kind in ("stream_checkpoint", "checkpoint"):
            keep_end = offset
        elif kind == "stream" and keep_end is None:
            keep_end = offset
    if keep_end is None or keep_end >= len(raw):
        return 0
    with path.open("r+b") as handle:
        handle.truncate(keep_end)
        handle.flush()
        os.fsync(handle.fileno())
    _fsync_directory(path.parent)
    invalidate_journal_cache(path)
    return len(raw) - keep_end


class _DictStatsView:
    """Give a live counters dict the ``as_dict()`` face that
    :meth:`Observability.publish_deltas` wants, with a stable identity
    to carry the last-published snapshot between rounds."""

    def __init__(self, mapping: dict):
        self._mapping = mapping

    def as_dict(self) -> dict:
        return self._mapping


@dataclass(frozen=True)
class StreamSpec:
    """Configuration of a streamed campaign (journaled verbatim).

    Everything needed to regenerate the event log from the dataset and
    to re-derive the degraded delivery schedule lives here, so
    detach/reattach and CLI resume work from the journal alone plus the
    dataset.

    Parameters
    ----------
    arrival, rate:
        Arrival-process shape (``poisson`` / ``bursty`` / ``stalled``)
        and target events/second.
    theta:
        Expert / preliminary crowd split threshold.
    votes_per_fact:
        Simulated preliminary votes per streamed fact.
    group_size, target_votes, smoothing:
        Incremental-initialization knobs (see
        :class:`~repro.stream.incremental.StreamingBeliefBuilder`).
    allowed_lateness, straggler_timeout:
        Watermark grace and the forced-seal / late-drop horizon, in
        event-time seconds.
    rounds_per_event:
        Checking rounds driven after each admitted event.
    events_per_step:
        Delivered events consumed per service ``step()``.
    churn:
        Per-slot probability of an expert leave/join event.
    window:
        Fact-interleaving lookahead of the generator.
    seed:
        Seed of the generator and of the simulated expert panel.
    chaos:
        Optional :class:`~repro.stream.chaos.StreamChaos` delivery
        degradation.
    belief_epsilon:
        Truncation budget of the sparse belief kernel applied to sealed
        groups (see
        :class:`~repro.stream.incremental.StreamingBeliefBuilder`);
        ``0`` keeps the exact dense kernel.  Defaults from the
        ``REPRO_BELIEF_EPSILON`` environment variable so the CI kernel
        leg can flip whole streamed suites onto the truncated kernel.
    """

    arrival: str = "poisson"
    rate: float = 50.0
    theta: float = 0.9
    votes_per_fact: int = 3
    group_size: int = 3
    target_votes: int = 2
    smoothing: float = 0.01
    allowed_lateness: float = 2.0
    straggler_timeout: float = 20.0
    rounds_per_event: int = 1
    events_per_step: int = 8
    churn: float = 0.0
    window: int = 2
    seed: int = 0
    chaos: StreamChaos | None = None
    belief_epsilon: float = field(default_factory=default_belief_epsilon)

    def __post_init__(self) -> None:
        if self.rounds_per_event < 1:
            raise ValueError("rounds_per_event must be at least 1")
        if self.events_per_step < 1:
            raise ValueError("events_per_step must be at least 1")
        if not 0.0 <= self.belief_epsilon < 1.0:
            raise ValueError("belief_epsilon must lie in [0, 1)")

    def to_dict(self) -> dict:
        payload = {
            "arrival": self.arrival,
            "rate": self.rate,
            "theta": self.theta,
            "votes_per_fact": self.votes_per_fact,
            "group_size": self.group_size,
            "target_votes": self.target_votes,
            "smoothing": self.smoothing,
            "allowed_lateness": self.allowed_lateness,
            "straggler_timeout": self.straggler_timeout,
            "rounds_per_event": self.rounds_per_event,
            "events_per_step": self.events_per_step,
            "churn": self.churn,
            "window": self.window,
            "seed": self.seed,
        }
        if self.chaos is not None:
            payload["chaos"] = self.chaos.to_dict()
        # Emitted only when set, like ``chaos``: exact-kernel journals
        # must stay byte-identical to the pre-kernel corpus.
        if self.belief_epsilon:
            payload["belief_epsilon"] = self.belief_epsilon
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StreamSpec":
        chaos = payload.get("chaos")
        return cls(
            arrival=str(payload.get("arrival", "poisson")),
            rate=float(payload.get("rate", 50.0)),
            theta=float(payload.get("theta", 0.9)),
            votes_per_fact=int(payload.get("votes_per_fact", 3)),
            group_size=int(payload.get("group_size", 3)),
            target_votes=int(payload.get("target_votes", 2)),
            smoothing=float(payload.get("smoothing", 0.01)),
            allowed_lateness=float(payload.get("allowed_lateness", 2.0)),
            straggler_timeout=float(
                payload.get("straggler_timeout", 20.0)
            ),
            rounds_per_event=int(payload.get("rounds_per_event", 1)),
            events_per_step=int(payload.get("events_per_step", 8)),
            churn=float(payload.get("churn", 0.0)),
            window=int(payload.get("window", 2)),
            seed=int(payload.get("seed", 0)),
            chaos=(
                StreamChaos.from_dict(chaos) if chaos is not None else None
            ),
            belief_epsilon=float(payload.get("belief_epsilon", 0.0)),
        )


class StreamingCampaign:
    """Drive a checking campaign from a delivered event stream.

    Parameters
    ----------
    events:
        The *generated* event log (see
        :func:`~repro.stream.arrivals.generate_event_stream`); the
        degraded delivery order is derived from ``spec.chaos``.
    experts:
        The initial checking panel; stream churn grows/shrinks it.
    budget:
        Checking budget (float or a live
        :class:`~repro.core.budget.CheckingBudget` tracker, e.g. the
        service's ledger-backed one).
    spec:
        The :class:`StreamSpec`; journaled so resume can rebuild the
        delivery schedule.
    journal_path, journal_metadata:
        As on :class:`~repro.simulation.resilient.ResilientCheckingSession`;
        the runtime writes the version-7 header, metadata and stream
        config itself, then hands the journal to the session it creates
        on first seal.
    selector, k, cost_model, retry_policy, reserve_experts,
    trust_policy, gold_facts, sleep, update_engine:
        Forwarded to the checking session when the first group seals.
    """

    def __init__(
        self,
        events: Sequence[StreamEvent],
        experts: Crowd,
        budget: "float | CheckingBudget",
        *,
        spec: StreamSpec | None = None,
        journal_path: str | Path | None = None,
        journal_metadata: "dict | Sequence[dict] | None" = None,
        selector: Selector | None = None,
        k: int = 1,
        cost_model: CostModel | None = None,
        retry_policy: RetryPolicy | None = None,
        reserve_experts: Crowd | None = None,
        trust_policy: TrustPolicy | None = None,
        gold_facts: Mapping[int, bool] | None = None,
        sleep: Callable[[float], None] | None = None,
        update_engine=None,
    ):
        self._spec = spec or StreamSpec()
        self._events = list(events)
        chaos = self._spec.chaos
        self._delivery = (
            chaos.plan_delivery(self._events)
            if chaos is not None and chaos.enabled
            else list(self._events)
        )
        self._budget = budget
        self._selector = selector
        self._k = int(k)
        self._cost_model = cost_model
        self._retry_policy = retry_policy
        self._reserve_experts = reserve_experts
        self._trust_policy = trust_policy
        self._gold_facts = gold_facts
        self._sleep = sleep
        self._update_engine = update_engine
        self._journal_path = (
            Path(journal_path) if journal_path is not None else None
        )

        self._bootstrap_experts: list[Worker] = list(experts)
        self._session: ResilientCheckingSession | None = None
        self._source: SimulatedExpertPanel | None = None
        self._cursor = 0
        self._rounds_done = self._spec.rounds_per_event
        self._at_boundary = True
        self._dedup_low = 0
        self._dedup_extra: set[int] = set()
        self._watermark = WatermarkTracker(self._spec.allowed_lateness)
        self._degenerate_seals = 0
        self._builder = self._make_builder()
        self._truth: dict[int, bool] = {}
        self._stats: dict[str, int] = {
            "admitted": 0,
            "duplicates": 0,
            "late_admitted": 0,
            "late_dropped": 0,
            "joins": 0,
            "leaves": 0,
            "groups_sealed": 0,
            "forced_seals": 0,
            "out_of_band": 0,
        }
        #: Wall-clock seconds from event delivery to belief commit,
        #: one entry per delivery slot (bench-only; never journaled).
        self.event_latencies: list[float] = []
        # Persistent adapter so delta publication into the metrics
        # registry never double-counts the admit/seal counters above.
        self._obs_stats = _DictStatsView(self._stats)

        if self._journal_path is not None:
            self._init_journal(journal_metadata)

    def _make_builder(self) -> StreamingBeliefBuilder:
        builder = StreamingBeliefBuilder(
            group_size=self._spec.group_size,
            target_votes=self._spec.target_votes,
            smoothing=self._spec.smoothing,
            straggler_timeout=self._spec.straggler_timeout,
            belief_epsilon=self._spec.belief_epsilon,
        )
        builder.on_degenerate = self._count_degenerate
        return builder

    def _count_degenerate(self) -> None:
        """Degenerate seal observed; the incident is noted once the
        session exists (the first seal is what creates it)."""
        self._degenerate_seals += 1

    # ------------------------------------------------------------------
    # journal bootstrap
    # ------------------------------------------------------------------

    def _init_journal(self, journal_metadata) -> None:
        append_journal_record(
            self._journal_path,
            {
                "kind": "header",
                "version": FORMAT_VERSION,
                "budget_total": (
                    float(self._budget.total)
                    if isinstance(self._budget, CheckingBudget)
                    else float(self._budget)
                ),
                "k": self._k,
            },
        )
        if journal_metadata is not None:
            records = (
                [journal_metadata]
                if isinstance(journal_metadata, Mapping)
                else list(journal_metadata)
            )
            for record in records:
                append_journal_record(self._journal_path, record)
        append_journal_record(
            self._journal_path,
            {
                "kind": "stream",
                "config": self._spec.to_dict(),
                "num_events": len(self._events),
            },
        )
        self._checkpoint_boundary()

    def _extras(self) -> dict:
        extras = {
            "boundary": self._at_boundary,
            "cursor": self._cursor,
            "rounds_done": self._rounds_done,
            "dedup_low": self._dedup_low,
            "dedup_extra": sorted(self._dedup_extra),
            "watermark": self._watermark.state(),
            "builder": self._builder.state(),
            "truth": {
                str(fact_id): bool(value)
                for fact_id, value in self._truth.items()
            },
            "stats": dict(self._stats),
        }
        if self._session is None:
            extras["experts"] = crowd_to_dict(
                Crowd(self._bootstrap_experts)
            )
        return extras

    def _checkpoint_boundary(self) -> None:
        """Event-boundary checkpoint: via the session once it exists,
        as a standalone ``stream_checkpoint`` record before then."""
        self._at_boundary = True
        if self._journal_path is None:
            return
        if self._session is not None:
            self._session.checkpoint(self._source)
        else:
            append_journal_record(
                self._journal_path,
                {"kind": "stream_checkpoint", "stream": self._extras()},
            )

    # ------------------------------------------------------------------
    # status
    # ------------------------------------------------------------------

    @property
    def spec(self) -> StreamSpec:
        return self._spec

    @property
    def session(self) -> ResilientCheckingSession | None:
        return self._session

    @property
    def cursor(self) -> int:
        """Delivery slots consumed so far."""
        return self._cursor

    @property
    def total_deliveries(self) -> int:
        return len(self._delivery)

    @property
    def backlog(self) -> int:
        """Undelivered events plus unsealed pending facts — the
        pressure signal fed to the service's admission controller."""
        return (
            len(self._delivery) - self._cursor
            + self._builder.pending_count
        )

    @property
    def drained(self) -> bool:
        return self._cursor >= len(self._delivery)

    @property
    def finished(self) -> bool:
        return self.drained and (
            self._session is None
            or (self._session.is_finished and self._builder.pending_count == 0)
        )

    @property
    def spent_budget(self) -> float:
        return 0.0 if self._session is None else self._session.spent_budget

    def stats(self) -> dict:
        summary = dict(self._stats)
        summary["cursor"] = self._cursor
        summary["deliveries"] = len(self._delivery)
        summary["backlog"] = self.backlog
        summary["watermark"] = self._watermark.watermark
        return summary

    def result(self) -> ResilientRunResult | None:
        return None if self._session is None else self._session.result()

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def run(self, max_events: int | None = None) -> dict:
        """Consume up to ``max_events`` delivery slots (all, if None).

        Each slot is admit → seal → drive rounds → boundary checkpoint.
        Once the stream drains, remaining pending facts are flushed into
        final groups and the checking session runs to completion.
        Returns :meth:`stats`.
        """
        processed = 0
        if not self._at_boundary:
            # Resumed mid-event: finish the interrupted slot's rounds
            # and boundary checkpoint before consuming new deliveries.
            # ``rounds_done`` is incremented *after* the session's own
            # post-round checkpoint, so the checkpointed count is one
            # behind once the in-flight round commits — replay the
            # pending round if there is one, then account for it.
            if (
                self._session is not None
                and self._session.pending_queries is not None
            ):
                self._session.run(self._source, max_rounds=1)
            if self._session is not None:
                self._rounds_done += 1
            self._drive_rounds()
            self._checkpoint_boundary()
            processed += 1
        while self._cursor < len(self._delivery):
            if max_events is not None and processed >= max_events:
                return self.stats()
            started = _time.perf_counter()
            self._at_boundary = False
            self._rounds_done = 0
            event = self._delivery[self._cursor]
            self._cursor += 1
            with OBS.phase("admit"):
                self._admit(event)
            with OBS.phase("seal"):
                self._seal_ready()
            self._drive_rounds()
            self._checkpoint_boundary()
            self.event_latencies.append(_time.perf_counter() - started)
            processed += 1
            if OBS.enabled:
                OBS.registry.histogram(
                    "repro_stream_event_seconds",
                    "Delivery-slot wall-clock (admit through checkpoint)",
                ).observe(self.event_latencies[-1])
                OBS.publish_deltas("repro_stream", self._obs_stats)
        self._drain()
        return self.stats()

    def _drain(self) -> None:
        """End of stream: flush every pending fact into final groups
        and run the checking session until budget or work runs out."""
        remaining = self._builder.flush()
        if remaining:
            self._stats["groups_sealed"] += len(remaining)
            self._stats["forced_seals"] += len(remaining)
            self._ingest_groups(remaining, forced=True)
        if self._session is not None and not self._session.is_finished:
            self._session.run(self._source)

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def _admit(self, event: StreamEvent) -> None:
        if self._is_duplicate(event.seq):
            self._stats["duplicates"] += 1
            return
        self._mark_seen(event.seq)
        lateness = self._watermark.lateness_of(event.time)
        if lateness > self._spec.straggler_timeout:
            # Too far behind even the straggler grace: drop, tempered
            # degradation's hard edge.  The seq stays marked seen, so a
            # duplicate of a dropped event is still a duplicate.
            self._stats["late_dropped"] += 1
            if self._session is not None:
                self._session.note_incident(
                    FaultEvent(
                        kind="late_drop",
                        detail=(
                            f"event seq={event.seq} arrived "
                            f"{lateness:.3f}s past the watermark"
                        ),
                    )
                )
            return
        late = lateness > 0.0
        self._watermark.observe(event.time)
        self._stats["admitted"] += 1
        if late:
            self._stats["late_admitted"] += 1
        handler = getattr(self, f"_on_{event.kind}")
        handler(event)

    def _is_duplicate(self, seq: int) -> bool:
        return seq < self._dedup_low or seq in self._dedup_extra

    def _mark_seen(self, seq: int) -> None:
        if seq == self._dedup_low:
            self._dedup_low += 1
            while self._dedup_low in self._dedup_extra:
                self._dedup_extra.discard(self._dedup_low)
                self._dedup_low += 1
        else:
            self._dedup_extra.add(seq)

    # -- per-kind handlers ---------------------------------------------

    def _on_new_fact(self, event: StreamEvent) -> None:
        payload = event.payload
        fact_id = int(payload["fact_id"])
        truth = bool(payload["truth"])
        self._truth[fact_id] = truth
        if self._source is not None:
            self._source.extend_truth({fact_id: truth})
        self._builder.add_fact(
            fact_id,
            instance_id=str(payload.get("instance_id", "")),
            label=str(payload.get("label", "positive")),
            time=event.time,
        )

    def _on_prelim_label(self, event: StreamEvent) -> None:
        payload = event.payload
        fact_id = int(payload["fact_id"])
        answer = bool(payload["answer"])
        if self._builder.add_vote(fact_id, answer):
            return
        # The fact's group already sealed: fold the straggler in as a
        # tempered out-of-band update instead of discarding it.
        if self._session is None:
            return
        self._stats["out_of_band"] += 1
        voter = Worker(
            worker_id=str(payload["worker_id"]),
            accuracy=float(payload.get("accuracy", 0.5)),
        )
        self._session.apply_out_of_band(
            AnswerSet(worker=voter, answers={fact_id: answer})
        )

    def _on_worker_join(self, event: StreamEvent) -> None:
        payload = event.payload
        worker = Worker(
            worker_id=str(payload["worker_id"]),
            accuracy=float(payload["accuracy"]),
        )
        self._stats["joins"] += 1
        if self._session is not None:
            self._session.adopt_expert(worker)
        elif all(
            member.worker_id != worker.worker_id
            for member in self._bootstrap_experts
        ):
            self._bootstrap_experts.append(worker)

    def _on_worker_leave(self, event: StreamEvent) -> None:
        worker_id = str(event.payload["worker_id"])
        self._stats["leaves"] += 1
        if self._session is not None:
            self._session.retire_expert(worker_id)
            return
        remaining = [
            member for member in self._bootstrap_experts
            if member.worker_id != worker_id
        ]
        if remaining:
            self._bootstrap_experts = remaining

    # ------------------------------------------------------------------
    # sealing and session growth
    # ------------------------------------------------------------------

    def _seal_ready(self) -> None:
        sealed = self._builder.sealable(self._watermark.watermark)
        if not sealed:
            return
        states = [state for state, _forced in sealed]
        forced = [state for state, was_forced in sealed if was_forced]
        self._stats["groups_sealed"] += len(states)
        self._stats["forced_seals"] += len(forced)
        self._ingest_groups(states, forced=False)
        if self._session is not None:
            for state, was_forced in sealed:
                self._session.note_incident(
                    FaultEvent(
                        kind="group_sealed",
                        fact_ids=tuple(
                            fact.fact_id for fact in state.facts
                        ),
                        detail=(
                            "straggler-timeout forced seal"
                            if was_forced
                            else "vote target reached"
                        ),
                    )
                )

    def _ingest_groups(
        self, states: Sequence[BeliefState], *, forced: bool
    ) -> None:
        if not states:
            return
        truth = {
            fact.fact_id: self._truth[fact.fact_id]
            for state in states
            for fact in state.facts
            if fact.fact_id in self._truth
        }
        if self._session is None:
            self._create_session(states, truth)
            if forced:
                for state in states:
                    self._session.note_incident(
                        FaultEvent(
                            kind="group_sealed",
                            fact_ids=tuple(
                                fact.fact_id for fact in state.facts
                            ),
                            detail="straggler-timeout forced seal",
                        )
                    )
        else:
            self._session.add_groups(states, truth)
        while self._degenerate_seals:
            self._degenerate_seals -= 1
            self._session.note_incident(
                FaultEvent(
                    kind="degenerate_marginals",
                    detail="uniform fallback at streamed seal",
                )
            )

    def _create_session(
        self, states: Sequence[BeliefState], truth: Mapping[int, bool]
    ) -> None:
        self._source = SimulatedExpertPanel(
            dict(self._truth),
            rng=np.random.default_rng(
                np.random.SeedSequence(
                    [int(self._spec.seed), _SOURCE_SALT]
                )
            ),
        )
        self._session = ResilientCheckingSession(
            FactoredBelief(states),
            Crowd(self._bootstrap_experts),
            self._budget,
            selector=self._selector,
            k=self._k,
            cost_model=self._cost_model,
            ground_truth=dict(truth),
            retry_policy=self._retry_policy,
            reserve_experts=self._reserve_experts,
            journal_path=self._journal_path,
            trust_policy=self._trust_policy,
            gold_facts=self._gold_facts,
            seed=self._spec.seed,
            sleep=self._sleep,
            update_engine=self._update_engine,
            journal_header=False,
            checkpoint_extras=self._extras,
        )

    def _drive_rounds(self) -> None:
        if self._session is None:
            self._rounds_done = self._spec.rounds_per_event
            return
        while self._rounds_done < self._spec.rounds_per_event:
            if self._session.is_finished:
                break
            self._session.run(self._source, max_rounds=1)
            self._rounds_done += 1
        self._rounds_done = self._spec.rounds_per_event

    # ------------------------------------------------------------------
    # resume
    # ------------------------------------------------------------------

    @classmethod
    def resume(
        cls,
        journal_path: str | Path,
        events: Sequence[StreamEvent],
        *,
        selector: Selector | None = None,
        cost_model: CostModel | None = None,
        retry_policy: RetryPolicy | None = None,
        reserve_experts: Crowd | None = None,
        sleep: Callable[[float], None] | None = None,
        update_engine=None,
        budget: "float | CheckingBudget | None" = None,
        budget_tracker: "CheckingBudget | None" = None,
        experts: Crowd | None = None,
    ) -> "StreamingCampaign":
        """Restore a streamed campaign from its journal.

        ``events`` is the regenerated event log (the journal's stream
        config record pins the spec that regenerates it from the
        dataset).  Behavioral components are supplied again by the
        caller, exactly as on
        :meth:`~repro.simulation.resilient.ResilientCheckingSession.resume`.
        Works from any kill point: mid-round, mid-event, or during the
        pre-session bootstrap phase.  ``experts`` re-supplies the
        initial checking panel; it is only consulted when the journal
        holds no intact checkpoint at all (a kill that tore the very
        first record), where nothing was admitted yet.
        """
        journal_path = Path(journal_path)
        # Salvage interior corruption (v8 journals) as well as the torn
        # tail before reading; replay regrows whatever was dropped.
        from ..storage.integrity import recover_journal

        recover_journal(journal_path)
        records = read_journal(journal_path)
        config_record = next(
            (
                record
                for record in records
                if record.get("kind") == "stream"
            ),
            None,
        )
        if config_record is None:
            raise SerializationError(
                f"journal {journal_path} has no stream config record"
            )
        spec = StreamSpec.from_dict(config_record.get("config", {}))
        header = records[0]
        budget_value = (
            budget
            if budget is not None
            else float(header.get("budget_total", 0.0))
        )
        has_session = any(
            record.get("kind") == "checkpoint" for record in records
        )
        if has_session:
            trim_journal_to_last_checkpoint(journal_path)
            records = read_journal(journal_path)
            last = next(
                record
                for record in reversed(records)
                if record.get("kind") == "checkpoint"
            )
            extras = last.get("stream")
            if extras is None:
                raise SerializationError(
                    "checkpoint lacks stream state; not a streamed "
                    "campaign journal"
                )
            session = ResilientCheckingSession.resume(
                journal_path,
                selector=selector,
                cost_model=cost_model,
                retry_policy=retry_policy,
                reserve_experts=reserve_experts,
                sleep=sleep,
                update_engine=update_engine,
                budget_tracker=budget_tracker,
            )
        else:
            # Bootstrap-phase kill: the journal may end on complete
            # runtime records past the last boundary (e.g. a
            # ``group_sealed`` event whose session-creating checkpoint
            # never landed).  Replay regenerates them, so trim back to
            # the last ``stream_checkpoint`` — the bootstrap analogue
            # of ``trim_journal_to_last_checkpoint`` — or, with no
            # boundary on disk yet, to the metadata prefix.
            if _trim_stream_bootstrap_tail(journal_path):
                records = read_journal(journal_path)
            session = None
            extras = next(
                (
                    record["stream"]
                    for record in reversed(records)
                    if record.get("kind") == "stream_checkpoint"
                ),
                None,
            )

        campaign = cls.__new__(cls)
        campaign._spec = spec
        campaign._events = list(events)
        chaos = spec.chaos
        campaign._delivery = (
            chaos.plan_delivery(campaign._events)
            if chaos is not None and chaos.enabled
            else list(campaign._events)
        )
        campaign._budget = (
            budget_tracker if budget_tracker is not None else budget_value
        )
        campaign._selector = selector
        campaign._k = int(header.get("k", 1))
        campaign._cost_model = cost_model
        campaign._retry_policy = retry_policy
        campaign._reserve_experts = reserve_experts
        campaign._trust_policy = None  # restored inside the session
        campaign._gold_facts = None
        campaign._sleep = sleep
        campaign._update_engine = update_engine
        campaign._journal_path = journal_path
        campaign._session = session
        campaign._source = None
        campaign.event_latencies = []
        campaign._restore_extras(extras)
        if session is None and extras is None:
            # Killed before the initial boundary record survived a
            # full write: nothing was admitted, so restart the
            # bootstrap with the caller's panel and re-append the
            # record so the continued journal stays byte-identical to
            # an uninterrupted run.
            if experts is not None:
                campaign._bootstrap_experts = list(experts)
            campaign._checkpoint_boundary()
        if session is not None:
            campaign._bootstrap_experts = []
            campaign._source = SimulatedExpertPanel(
                dict(campaign._truth),
                rng=np.random.default_rng(
                    np.random.SeedSequence([int(spec.seed), _SOURCE_SALT])
                ),
            )
            session.rewind_source(campaign._source)
            session.set_checkpoint_extras(campaign._extras)
        return campaign

    def _restore_extras(self, extras: "dict | None") -> None:
        # Never checkpointed: a pending degenerate-seal count is always
        # drained into the journal before the boundary record is cut.
        self._degenerate_seals = 0
        if extras is None:
            # killed before the first event-boundary record: restart
            # the bootstrap from scratch (nothing was admitted yet)
            self._bootstrap_experts = []
            self._cursor = 0
            self._rounds_done = self._spec.rounds_per_event
            self._at_boundary = True
            self._dedup_low = 0
            self._dedup_extra = set()
            self._watermark = WatermarkTracker(self._spec.allowed_lateness)
            self._builder = self._make_builder()
            self._truth = {}
            self._stats = {
                "admitted": 0,
                "duplicates": 0,
                "late_admitted": 0,
                "late_dropped": 0,
                "joins": 0,
                "leaves": 0,
                "groups_sealed": 0,
                "forced_seals": 0,
                "out_of_band": 0,
            }
            return
        self._at_boundary = bool(extras["boundary"])
        self._cursor = int(extras["cursor"])
        self._rounds_done = int(extras["rounds_done"])
        self._dedup_low = int(extras["dedup_low"])
        self._dedup_extra = set(
            int(value) for value in extras["dedup_extra"]
        )
        self._watermark = WatermarkTracker.from_state(extras["watermark"])
        self._builder = StreamingBeliefBuilder.from_state(
            extras["builder"]
        )
        self._builder.on_degenerate = self._count_degenerate
        self._truth = {
            int(fact_id): bool(value)
            for fact_id, value in extras["truth"].items()
        }
        self._stats = {
            key: int(value) for key, value in extras["stats"].items()
        }
        experts = extras.get("experts")
        self._bootstrap_experts = (
            list(crowd_from_dict(experts)) if experts is not None else []
        )
