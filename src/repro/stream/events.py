"""The streaming event log: typed, ordered, replayable records.

A streamed campaign is driven by a sequence of :class:`StreamEvent`
records rather than a pre-materialized dataset.  Each event carries a
monotone sequence number ``seq`` (its position in the *generated* log —
chaos may deliver it out of order, but ``seq`` never changes and is what
admission dedups on) and an arrival-process timestamp ``time`` (what
watermarks advance on).

Event kinds and payloads:

``new_fact``
    ``{"fact_id", "instance_id", "label", "truth"}`` — a fact enters
    the open world.  ``truth`` is the simulation's ground truth,
    carried so the evaluation harness can score streamed campaigns.
``prelim_label``
    ``{"fact_id", "worker_id", "accuracy", "answer"}`` — one
    preliminary-tier vote on a fact; these accumulate into the Eq-15
    initialization fractions.  ``accuracy`` is the voter's rate,
    carried so a vote straggling in after its group sealed can still
    be folded in as a tempered out-of-band update.
``worker_join``
    ``{"worker_id", "accuracy"}`` — an expert becomes available.
``worker_leave``
    ``{"worker_id"}`` — an expert departs.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

#: The event kinds a version-7 stream log may contain.
EVENT_KINDS = frozenset(
    {"new_fact", "prelim_label", "worker_join", "worker_leave"}
)


@dataclass(frozen=True)
class StreamEvent:
    """One record of the replayable stream log.

    Parameters
    ----------
    seq:
        Position in the generated log; unique, dense from 0.  Delivery
        chaos permutes *delivery* order, never ``seq`` — it is the
        exactly-once dedup key.
    time:
        Arrival timestamp stamped by the arrival process (seconds on an
        abstract clock).  Non-decreasing in ``seq`` at generation time;
        chaos-induced reorder is what makes watermarks necessary.
    kind:
        One of :data:`EVENT_KINDS`.
    payload:
        Kind-specific fields (see module docstring); exposed read-only.
    """

    seq: int
    time: float
    kind: str
    payload: Mapping[str, object]

    def __post_init__(self) -> None:
        if self.seq < 0:
            raise ValueError("StreamEvent.seq must be non-negative")
        if self.time < 0.0:
            raise ValueError("StreamEvent.time must be non-negative")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown stream event kind {self.kind!r}; "
                f"expected one of {sorted(EVENT_KINDS)}"
            )
        object.__setattr__(
            self, "payload", MappingProxyType(dict(self.payload))
        )


def event_to_dict(event: StreamEvent) -> dict:
    """JSON-serializable form of a stream event."""
    return {
        "seq": int(event.seq),
        "time": float(event.time),
        "kind": event.kind,
        "payload": dict(event.payload),
    }


def event_from_dict(payload: Mapping) -> StreamEvent:
    """Inverse of :func:`event_to_dict`."""
    return StreamEvent(
        seq=int(payload["seq"]),
        time=float(payload["time"]),
        kind=str(payload["kind"]),
        payload=dict(payload.get("payload", {})),
    )
