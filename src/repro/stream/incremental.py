"""Watermarks and incremental belief initialization.

Batch mode computes every group's Eq-15 initialization from the full
preliminary answer matrix in one shot
(:func:`~repro.datasets.grouping.build_factored_belief`).  Streaming
mode cannot wait for "the full matrix": facts and votes trickle in, so
:class:`StreamingBeliefBuilder` accumulates per-fact vote counts and
*seals* task groups one head chunk at a time — normally when every fact
in the chunk reached its vote target, or forcibly when the watermark
says the missing votes are not coming (straggler timeout, the tempered
degradation: unvoted facts fall back to an uninformative 0.5 fraction
that the smoothing clip and the checking tier then handle exactly like
any other weak initialization).

The builder is property-tested equal to the batch path: sealing a chunk
performs the *same* float operations (``yes / total`` per fact, then
:func:`~repro.core.update.initialize_from_votes`) the batch builder
performs on the same prefix, so the resulting
:class:`~repro.core.observations.BeliefState` tables are bit-identical
— no drift between a campaign bootstrapped from a stream and one
bootstrapped from the equivalent matrix.

:class:`WatermarkTracker` is the lateness authority: the watermark
trails the maximum *admitted* event time by ``allowed_lateness``
seconds.  Events older than the watermark are late; how late decides
between tempered admission and the drop path (see
:mod:`~repro.stream.runtime`).  Both classes round-trip through plain
JSON state so every journal checkpoint captures them exactly.
"""

from __future__ import annotations

from ..core.facts import Fact, FactSet
from ..core.observations import BeliefState
from ..core.update import initialize_from_votes


class WatermarkTracker:
    """Event-time watermark with a fixed allowed lateness.

    The watermark is ``max(admitted event times) - allowed_lateness``:
    everything at or after it is in order "enough"; everything before
    it is late and subject to the straggler policy.  Monotone by
    construction — admitting a late event never moves it backwards.
    """

    def __init__(self, allowed_lateness: float = 5.0):
        if allowed_lateness < 0.0:
            raise ValueError("allowed_lateness must be non-negative")
        self._allowed_lateness = float(allowed_lateness)
        self._max_time = 0.0

    @property
    def allowed_lateness(self) -> float:
        return self._allowed_lateness

    @property
    def max_time(self) -> float:
        return self._max_time

    @property
    def watermark(self) -> float:
        return self._max_time - self._allowed_lateness

    def observe(self, time: float) -> float:
        """Advance on an admitted event; returns the new watermark."""
        if time > self._max_time:
            self._max_time = float(time)
        return self.watermark

    def lateness_of(self, time: float) -> float:
        """Seconds the event is behind the watermark (<= 0: on time)."""
        return self.watermark - float(time)

    def state(self) -> dict:
        return {
            "allowed_lateness": self._allowed_lateness,
            "max_time": self._max_time,
        }

    @classmethod
    def from_state(cls, state: dict) -> "WatermarkTracker":
        tracker = cls(float(state["allowed_lateness"]))
        tracker._max_time = float(state["max_time"])
        return tracker


class StreamingBeliefBuilder:
    """Accumulate streamed facts/votes; seal groups incrementally.

    Parameters
    ----------
    group_size:
        Facts per sealed task group (the paper groups correlated facts
        into multi-fact tasks; the stream forms them in arrival order).
    target_votes:
        Preliminary votes per fact required for a normal seal.
    smoothing:
        Passed through to
        :func:`~repro.core.update.initialize_from_votes`.
    straggler_timeout:
        Seconds after the head chunk's *first* fact arrived that the
        watermark may force-seal it with whatever votes exist —
        unvoted facts initialize at the uninformative ``0.5``.
    belief_epsilon:
        Truncation budget of the sparse belief kernel; ``0`` (the
        default) seals exact dense
        :class:`~repro.core.observations.BeliefState` groups, positive
        values seal :class:`~repro.core.kernel.SparseBeliefState`
        groups through the *same*
        :func:`~repro.core.update.initialize_from_votes` call the batch
        path uses.

    The ``on_degenerate`` attribute (not checkpointed) may be set to a
    zero-argument callable; it fires when a seal's marginal product is
    degenerate and the initializer falls back to uniform, so the
    runtime can record a ``degenerate_marginals`` incident.
    """

    def __init__(
        self,
        *,
        group_size: int = 3,
        target_votes: int = 3,
        smoothing: float = 0.01,
        straggler_timeout: float = 30.0,
        belief_epsilon: float = 0.0,
    ):
        if group_size < 1:
            raise ValueError("group_size must be at least 1")
        if target_votes < 0:
            raise ValueError("target_votes must be non-negative")
        if straggler_timeout < 0.0:
            raise ValueError("straggler_timeout must be non-negative")
        if not 0.0 <= belief_epsilon < 1.0:
            raise ValueError("belief_epsilon must lie in [0, 1)")
        self._group_size = int(group_size)
        self._target_votes = int(target_votes)
        self._smoothing = float(smoothing)
        self._straggler_timeout = float(straggler_timeout)
        self._belief_epsilon = float(belief_epsilon)
        self.on_degenerate = None
        #: Unsealed facts in arrival order: [fact_id, first_seen_time].
        self._pending: list[list] = []
        #: fact_id -> {"instance_id": str, "label": str} for pending facts.
        self._fact_meta: dict[int, dict] = {}
        #: fact_id -> [yes_votes, total_votes]; survives sealing so a
        #: duplicate new_fact after a seal is recognizable.
        self._votes: dict[int, list[int]] = {}
        self._sealed: set[int] = set()

    # -- queries -------------------------------------------------------

    @property
    def pending_fact_ids(self) -> list[int]:
        return [entry[0] for entry in self._pending]

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def is_known(self, fact_id: int) -> bool:
        return (
            fact_id in self._sealed
            or fact_id in self._fact_meta
            or fact_id in self._votes
        )

    def is_sealed(self, fact_id: int) -> bool:
        return fact_id in self._sealed

    def vote_fraction(self, fact_id: int) -> float:
        """The fact's current ``yes / total`` fraction (0.5 unvoted).

        Plain float division — the *same* operation the batch
        initializer's caller performs — so sealed streamed groups and
        batch-built groups are bit-identical on equal vote sets.
        """
        yes, total = self._votes.get(fact_id, (0, 0))
        if total == 0:
            return 0.5
        return yes / total

    # -- ingestion -----------------------------------------------------

    def add_fact(
        self,
        fact_id: int,
        *,
        instance_id: str = "",
        label: str = "positive",
        time: float = 0.0,
    ) -> bool:
        """Register a streamed fact; ``False`` if already known."""
        if fact_id in self._sealed or fact_id in self._fact_meta:
            return False
        self._pending.append([int(fact_id), float(time)])
        self._fact_meta[int(fact_id)] = {
            "instance_id": str(instance_id),
            "label": str(label),
        }
        self._votes.setdefault(int(fact_id), [0, 0])
        return True

    def add_vote(self, fact_id: int, answer: bool) -> bool:
        """Count a preliminary vote; ``False`` when the fact is sealed
        (the caller routes that through the late/out-of-band path)."""
        if fact_id in self._sealed:
            return False
        counts = self._votes.setdefault(int(fact_id), [0, 0])
        counts[0] += int(bool(answer))
        counts[1] += 1
        return True

    # -- sealing -------------------------------------------------------

    def _head_ready(self) -> bool:
        if len(self._pending) < self._group_size:
            return False
        return all(
            self._votes.get(fact_id, (0, 0))[1] >= self._target_votes
            for fact_id, _time in self._pending[: self._group_size]
        )

    def _head_timed_out(self, watermark: float) -> bool:
        if not self._pending:
            return False
        first_time = self._pending[0][1]
        return watermark >= first_time + self._straggler_timeout

    def sealable(
        self, watermark: float
    ) -> list[tuple[BeliefState, bool]]:
        """Seal every chunk that is ready, head of the queue first.

        Returns ``(belief, forced)`` pairs: ``forced`` is ``True`` for
        straggler-timeout seals (the tempered-degradation path), where
        the chunk may be short and facts may initialize unvoted.
        """
        sealed: list[tuple[BeliefState, bool]] = []
        while True:
            if self._head_ready():
                sealed.append((self._seal_chunk(self._group_size), False))
            elif self._head_timed_out(watermark):
                sealed.append(
                    (
                        self._seal_chunk(
                            min(self._group_size, len(self._pending))
                        ),
                        True,
                    )
                )
            else:
                return sealed

    def flush(self) -> list[BeliefState]:
        """Seal everything still pending (end of stream)."""
        sealed: list[BeliefState] = []
        while self._pending:
            sealed.append(
                self._seal_chunk(min(self._group_size, len(self._pending)))
            )
        return sealed

    def _seal_chunk(self, size: int) -> BeliefState:
        chunk = self._pending[:size]
        self._pending = self._pending[size:]
        facts = []
        fractions: dict[int, float] = {}
        for fact_id, _time in chunk:
            meta = self._fact_meta.pop(fact_id)
            facts.append(
                Fact(
                    fact_id=fact_id,
                    instance_id=meta["instance_id"],
                    label=meta["label"],
                )
            )
            fractions[fact_id] = self.vote_fraction(fact_id)
            self._sealed.add(fact_id)
        return initialize_from_votes(
            FactSet(facts),
            fractions,
            smoothing=self._smoothing,
            epsilon=self._belief_epsilon,
            on_degenerate=self.on_degenerate,
        )

    # -- checkpoint state ---------------------------------------------

    def state(self) -> dict:
        state = {
            "group_size": self._group_size,
            "target_votes": self._target_votes,
            "smoothing": self._smoothing,
            "straggler_timeout": self._straggler_timeout,
            "pending": [
                [fact_id, time] for fact_id, time in self._pending
            ],
            "fact_meta": {
                str(fact_id): dict(meta)
                for fact_id, meta in self._fact_meta.items()
            },
            "votes": {
                str(fact_id): list(counts)
                for fact_id, counts in self._votes.items()
            },
            "sealed": sorted(self._sealed),
        }
        # Only serialized when set: exact-kernel checkpoints must stay
        # byte-identical to those written before the key existed.
        if self._belief_epsilon:
            state["belief_epsilon"] = self._belief_epsilon
        return state

    @classmethod
    def from_state(cls, state: dict) -> "StreamingBeliefBuilder":
        builder = cls(
            group_size=int(state["group_size"]),
            target_votes=int(state["target_votes"]),
            smoothing=float(state["smoothing"]),
            straggler_timeout=float(state["straggler_timeout"]),
            belief_epsilon=float(state.get("belief_epsilon", 0.0)),
        )
        builder._pending = [
            [int(fact_id), float(time)] for fact_id, time in state["pending"]
        ]
        builder._fact_meta = {
            int(fact_id): dict(meta)
            for fact_id, meta in state["fact_meta"].items()
        }
        builder._votes = {
            int(fact_id): [int(yes), int(total)]
            for fact_id, (yes, total) in state["votes"].items()
        }
        builder._sealed = set(int(value) for value in state["sealed"])
        return builder
