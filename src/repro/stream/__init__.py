"""Streaming open-world campaign runtime.

The paper assumes a fixed answer matrix and a closed crowd; a platform
does not.  This package turns the batch pipeline into a continuously
operating one:

* :mod:`~repro.stream.events` — the replayable event log: preliminary
  labels, new facts and worker join/leave as seeded, ordered records;
* :mod:`~repro.stream.arrivals` — Poisson / bursty / stalled arrival
  processes stamping event times;
* :mod:`~repro.stream.chaos` — :class:`StreamChaos`, stateless seeded
  reorder/duplicate/stall/drop injection on the delivery path;
* :mod:`~repro.stream.incremental` — watermarks and the incremental
  belief builder (property-tested equal to batch initialization);
* :mod:`~repro.stream.runtime` — :class:`StreamingCampaign`, which
  admits the delivered stream, seals groups into a live
  :class:`~repro.simulation.resilient.ResilientCheckingSession`, routes
  churn through trust supervision, and checkpoints stream offsets in
  the journal for exactly-once, byte-identical resume.
"""

from .arrivals import ArrivalProcess, generate_event_stream, make_arrivals
from .chaos import StreamChaos
from .events import StreamEvent, event_from_dict, event_to_dict
from .incremental import StreamingBeliefBuilder, WatermarkTracker
from .runtime import StreamSpec, StreamingCampaign

__all__ = [
    "ArrivalProcess",
    "StreamChaos",
    "StreamEvent",
    "StreamSpec",
    "StreamingBeliefBuilder",
    "StreamingCampaign",
    "WatermarkTracker",
    "event_from_dict",
    "event_to_dict",
    "generate_event_stream",
    "make_arrivals",
]
