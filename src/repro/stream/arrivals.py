"""Seeded arrival processes and the replayable event-log generator.

An arrival process stamps each stream event with a time on an abstract
clock.  Three shapes cover the regimes the robustness layer must
survive:

* ``poisson`` — memoryless steady load (exponential gaps at ``rate``
  events/second), the baseline;
* ``bursty`` — platform reality: workers submit in batches, so events
  come in tight bursts separated by long idle gaps (same long-run
  rate);
* ``stalled`` — a healthy Poisson flow interrupted by periodic dead
  air, the shape that forces watermark/straggler-timeout sealing (a
  group must not wait forever for votes that stopped coming).

:func:`generate_event_stream` turns a
:class:`~repro.datasets.schema.CrowdLabelingDataset` into the ordered,
seeded event log a :class:`~repro.stream.runtime.StreamingCampaign`
replays: per fact one ``new_fact`` event plus ``votes_per_fact``
simulated preliminary votes, interleaved across a bounded lookahead
window (so groups fill progressively, not strictly one at a time), with
optional expert churn woven in.  The log is pure data — generating it
twice with the same inputs yields the same records, which is what makes
killed campaigns resumable against the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..datasets.schema import CrowdLabelingDataset
from .events import StreamEvent


@dataclass(frozen=True)
class ArrivalProcess:
    """Base arrival process: uniform gaps at ``rate`` events/second.

    Subclasses override :meth:`gaps`; :meth:`timestamps` turns gaps
    into a non-decreasing clock.
    """

    rate: float = 10.0

    def __post_init__(self) -> None:
        if self.rate <= 0.0:
            raise ValueError("arrival rate must be positive")

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(count, 1.0 / self.rate)

    def timestamps(self, count: int, rng: np.random.Generator) -> list[float]:
        """``count`` non-decreasing event times starting after 0."""
        if count <= 0:
            return []
        return [float(value) for value in np.cumsum(self.gaps(count, rng))]


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential gaps at ``rate``."""

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=count)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """Batched arrivals: tight bursts separated by long idle gaps.

    Every ``burst_size``-th gap is exponential with mean
    ``burst_size / rate`` (the inter-burst silence); gaps within a
    burst have mean ``within_gap``.  Long-run throughput stays close to
    ``rate`` while instantaneous load spikes far above it.
    """

    burst_size: int = 8
    within_gap: float = 0.005

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if self.within_gap < 0.0:
            raise ValueError("within_gap must be non-negative")

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(self.within_gap, size=count)
        boundaries = np.arange(count) % self.burst_size == 0
        gaps[boundaries] = rng.exponential(
            self.burst_size / self.rate, size=int(boundaries.sum())
        )
        return gaps


@dataclass(frozen=True)
class StalledArrivals(ArrivalProcess):
    """Poisson flow with periodic dead air.

    Every ``stall_every``-th gap gains an extra exponential stall of
    mean ``stall_duration`` seconds — the pattern that leaves a
    half-filled group waiting and forces the straggler-timeout seal.
    """

    stall_every: int = 25
    stall_duration: float = 30.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.stall_every < 1:
            raise ValueError("stall_every must be at least 1")
        if self.stall_duration < 0.0:
            raise ValueError("stall_duration must be non-negative")

    def gaps(self, count: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(1.0 / self.rate, size=count)
        stalls = (np.arange(1, count + 1) % self.stall_every) == 0
        gaps[stalls] += rng.exponential(
            self.stall_duration, size=int(stalls.sum())
        )
        return gaps


#: CLI/env names of the built-in arrival shapes.
ARRIVAL_KINDS = ("poisson", "bursty", "stalled")


def make_arrivals(kind: str, rate: float) -> ArrivalProcess:
    """Arrival process by CLI name (one of :data:`ARRIVAL_KINDS`)."""
    if kind == "poisson":
        return PoissonArrivals(rate=rate)
    if kind == "bursty":
        return BurstyArrivals(rate=rate)
    if kind == "stalled":
        return StalledArrivals(rate=rate)
    raise ValueError(
        f"unknown arrival process {kind!r}; expected one of "
        f"{list(ARRIVAL_KINDS)}"
    )


def generate_event_stream(
    dataset: CrowdLabelingDataset,
    *,
    theta: float = 0.9,
    votes_per_fact: int = 3,
    arrivals: ArrivalProcess | None = None,
    seed: int = 0,
    churn_rate: float = 0.0,
    window: int = 2,
) -> list[StreamEvent]:
    """Materialize a dataset as a seeded, replayable event log.

    Per fact (in dataset order) the log contains one ``new_fact`` event
    followed by ``votes_per_fact`` ``prelim_label`` votes from seeded
    preliminary (below-``theta``) workers answering at their accuracy.
    Fact queues are interleaved by drawing uniformly over the first
    ``window`` unfinished facts, so a group's facts and votes overlap in
    time without arbitrarily deep interleaving.  With ``churn_rate`` >
    0, each slot may additionally emit a ``worker_leave`` for a random
    active expert (never the last one) or a ``worker_join`` readmitting
    the longest-departed one.

    The result is pure data: same inputs, same log — byte for byte.
    """
    if votes_per_fact < 0:
        raise ValueError("votes_per_fact must be non-negative")
    if not 0.0 <= churn_rate <= 1.0:
        raise ValueError("churn_rate must lie in [0, 1]")
    if window < 1:
        raise ValueError("window must be at least 1")
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), 0x57EA]))
    experts, preliminary = dataset.split_crowd(theta)
    voters = list(preliminary) if len(preliminary) > 0 else list(dataset.crowd)

    # Per-fact queues: the new_fact record, then its preliminary votes.
    queues: list[list[tuple[str, dict]]] = []
    for group in dataset.groups:
        for fact in group:
            truth = dataset.ground_truth[fact.fact_id]
            queue: list[tuple[str, dict]] = [
                (
                    "new_fact",
                    {
                        "fact_id": int(fact.fact_id),
                        "instance_id": fact.instance_id,
                        "label": fact.label,
                        "truth": bool(truth),
                    },
                )
            ]
            for _ in range(votes_per_fact):
                voter = voters[int(rng.integers(len(voters)))]
                correct = bool(rng.random() < voter.accuracy)
                queue.append(
                    (
                        "prelim_label",
                        {
                            "fact_id": int(fact.fact_id),
                            "worker_id": voter.worker_id,
                            "accuracy": float(voter.accuracy),
                            "answer": bool(truth) if correct else not truth,
                        },
                    )
                )
            queues.append(queue)

    # Interleave the queues through a bounded lookahead window.
    skeleton: list[tuple[str, dict]] = []
    cursor = 0
    while cursor < len(queues):
        open_until = min(cursor + window, len(queues))
        candidates = [
            index for index in range(cursor, open_until) if queues[index]
        ]
        pick = candidates[int(rng.integers(len(candidates)))]
        skeleton.append(queues[pick].pop(0))
        while cursor < len(queues) and not queues[cursor]:
            cursor += 1

    # Weave expert churn in: departures and re-joins of CE members.
    active = [worker for worker in experts]
    departed: list = []
    events_payload: list[tuple[str, dict]] = []
    for entry in skeleton:
        events_payload.append(entry)
        if churn_rate <= 0.0 or rng.random() >= churn_rate:
            continue
        if departed and (len(active) <= 1 or rng.random() < 0.5):
            worker = departed.pop(0)
            active.append(worker)
            events_payload.append(
                (
                    "worker_join",
                    {
                        "worker_id": worker.worker_id,
                        "accuracy": float(worker.accuracy),
                    },
                )
            )
        elif len(active) > 1:
            victim = active.pop(int(rng.integers(len(active))))
            departed.append(victim)
            events_payload.append(
                ("worker_leave", {"worker_id": victim.worker_id})
            )

    times = (arrivals or PoissonArrivals()).timestamps(
        len(events_payload), rng
    )
    return [
        StreamEvent(seq=seq, time=times[seq], kind=kind, payload=payload)
        for seq, (kind, payload) in enumerate(events_payload)
    ]
