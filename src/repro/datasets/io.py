"""Reading and writing crowd datasets in the standard benchmark format.

The truth-inference benchmark of Zheng et al. (VLDB'17) — the source of
the paper's dataset — distributes each dataset as two text files:

* ``answer.csv``: header ``question,worker,answer`` rows, one per
  annotation;
* ``truth.csv``: header ``question,truth`` rows, one per task.

This module reads and writes that format, so the paper's real dataset
drops into this reproduction unchanged, and our synthetic datasets can
be exported for use with other tools.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..aggregation.base import Annotation, AnswerMatrix
from ..core.facts import Fact, FactSet
from ..core.workers import Crowd, Worker
from .grouping import group_tasks
from .schema import CrowdLabelingDataset


def write_answer_file(dataset: CrowdLabelingDataset, path: str | Path) -> None:
    """Write ``question,worker,answer`` rows for every annotation."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["question", "worker", "answer"])
        worker_ids = dataset.crowd.worker_ids
        for annotation in dataset.annotations.annotations:
            writer.writerow(
                [annotation.task, worker_ids[annotation.worker],
                 annotation.label]
            )


def write_truth_file(dataset: CrowdLabelingDataset, path: str | Path) -> None:
    """Write ``question,truth`` rows for every fact."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["question", "truth"])
        for fact_id in sorted(dataset.ground_truth):
            writer.writerow([fact_id, int(dataset.ground_truth[fact_id])])


def read_answer_file(path: str | Path) -> tuple[list[Annotation], list[str]]:
    """Read an ``answer.csv``; returns annotations plus the worker-id
    order used for column assignment."""
    path = Path(path)
    worker_columns: dict[str, int] = {}
    annotations: list[Annotation] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"question", "worker", "answer"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(
                f"{path} must have columns question, worker, answer"
            )
        for row in reader:
            worker_id = row["worker"]
            column = worker_columns.setdefault(worker_id, len(worker_columns))
            annotations.append(
                Annotation(
                    task=int(row["question"]),
                    worker=column,
                    label=int(row["answer"]),
                )
            )
    return annotations, list(worker_columns)


def read_truth_file(path: str | Path) -> dict[int, bool]:
    """Read a ``truth.csv`` into a ``fact_id -> bool`` map."""
    path = Path(path)
    truth: dict[int, bool] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"question", "truth"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(f"{path} must have columns question, truth")
        for row in reader:
            truth[int(row["question"])] = bool(int(row["truth"]))
    return truth


def load_dataset(
    answer_path: str | Path,
    truth_path: str | Path,
    group_size: int = 5,
    worker_accuracies: dict[str, float] | None = None,
    name: str = "loaded",
) -> CrowdLabelingDataset:
    """Assemble a :class:`CrowdLabelingDataset` from benchmark files.

    Parameters
    ----------
    answer_path, truth_path:
        The ``answer.csv`` / ``truth.csv`` pair.
    group_size:
        Consecutive facts are grouped into tasks of this size (the
        paper's 5-fact grouping).
    worker_accuracies:
        Optional known accuracies per worker id.  When omitted, each
        worker's accuracy is estimated against the ground truth of the
        tasks they answered (the paper estimates accuracies "with a set
        of sample tasks with ground truth").
    """
    annotations, worker_ids = read_answer_file(answer_path)
    truth = read_truth_file(truth_path)
    num_tasks = max(truth) + 1
    matrix = AnswerMatrix(
        annotations,
        num_tasks=num_tasks,
        num_workers=len(worker_ids),
        num_classes=2,
    )

    if worker_accuracies is None:
        worker_accuracies = estimate_worker_accuracies(
            matrix, truth, worker_ids
        )
    crowd = Crowd(
        Worker(worker_id=worker_id,
               accuracy=worker_accuracies.get(worker_id, 0.5))
        for worker_id in worker_ids
    )

    groups = group_tasks(sorted(truth), group_size)
    return CrowdLabelingDataset(
        groups=groups,
        crowd=crowd,
        annotations=matrix,
        ground_truth=truth,
        name=name,
    )


def estimate_worker_accuracies(
    matrix: AnswerMatrix,
    truth: dict[int, bool],
    worker_ids: list[str],
    smoothing: float = 1.0,
) -> dict[str, float]:
    """Laplace-smoothed accuracy of each worker against the truth."""
    correct = np.zeros(matrix.num_workers)
    total = np.zeros(matrix.num_workers)
    for annotation in matrix.annotations:
        if annotation.task not in truth:
            continue
        total[annotation.worker] += 1
        correct[annotation.worker] += int(
            bool(annotation.label) == truth[annotation.task]
        )
    denominator = total + 2.0 * smoothing
    # Workers with no gold-covered answers default to the 0.5 bound.
    accuracies = np.full(matrix.num_workers, 0.5)
    answered = denominator > 0
    accuracies[answered] = (
        correct[answered] + smoothing
    ) / denominator[answered]
    return {
        worker_id: float(accuracies[column])
        for column, worker_id in enumerate(worker_ids)
    }


def save_dataset(
    dataset: CrowdLabelingDataset, directory: str | Path
) -> tuple[Path, Path]:
    """Write ``answer.csv`` and ``truth.csv`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    answer_path = directory / "answer.csv"
    truth_path = directory / "truth.csv"
    write_answer_file(dataset, answer_path)
    write_truth_file(dataset, truth_path)
    return answer_path, truth_path
