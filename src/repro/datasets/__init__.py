"""Dataset substrate: synthetic corpora, grouping, and benchmark I/O."""

from .grouping import (
    build_factored_belief,
    group_tasks,
    initialize_belief,
    initialize_belief_from_matrix,
)
from .io import (
    estimate_worker_accuracies,
    load_dataset,
    read_answer_file,
    read_truth_file,
    save_dataset,
    write_answer_file,
    write_truth_file,
)
from .multilabel import (
    build_one_hot_belief,
    class_accuracy,
    decode_class_labels,
    make_multiclass_dataset,
    one_hot_belief,
)
from .schema import CrowdLabelingDataset, accuracy_of_labels
from .sentiment import make_sentiment_dataset
from .statistics import DatasetSummary, describe_dataset, format_summary
from .synthetic import (
    WorkerPoolSpec,
    make_synthetic_dataset,
    make_worker_pool,
    sample_correlated_group_truth,
)

__all__ = [
    "CrowdLabelingDataset",
    "DatasetSummary",
    "WorkerPoolSpec",
    "describe_dataset",
    "format_summary",
    "accuracy_of_labels",
    "build_factored_belief",
    "build_one_hot_belief",
    "class_accuracy",
    "decode_class_labels",
    "make_multiclass_dataset",
    "one_hot_belief",
    "estimate_worker_accuracies",
    "group_tasks",
    "initialize_belief",
    "initialize_belief_from_matrix",
    "load_dataset",
    "make_sentiment_dataset",
    "make_synthetic_dataset",
    "make_worker_pool",
    "read_answer_file",
    "read_truth_file",
    "sample_correlated_group_truth",
    "save_dataset",
    "write_answer_file",
    "write_truth_file",
]
