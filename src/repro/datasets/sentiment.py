"""The "company sentiment" stand-in corpus (paper section IV-A).

The paper evaluates on a real AMT dataset of company-related tweets:
workers answer "does this tweet carry positive sentiment toward the
mentioned company?".  That dataset is not reachable offline, so this
module generates a statistically matched substitute with templated
tweet texts, so examples and experiments read like the original
setting.  See DESIGN.md ("Substitutions") for the rationale.
"""

from __future__ import annotations

import numpy as np

from ..core.facts import Fact, FactSet
from .schema import CrowdLabelingDataset
from .synthetic import WorkerPoolSpec, make_synthetic_dataset

_COMPANIES = (
    "Acme", "Globex", "Initech", "Umbrella", "Hooli", "Stark Industries",
    "Wayne Enterprises", "Wonka", "Tyrell", "Cyberdyne", "Soylent",
    "Massive Dynamic", "Aperture", "Black Mesa", "Oscorp", "Vehement",
)

_POSITIVE_TEMPLATES = (
    "The recent products from {company} are amazing!",
    "Customer support at {company} resolved my issue in minutes.",
    "{company}'s new release exceeded all my expectations.",
    "Huge respect for how {company} treats its users.",
    "I keep recommending {company} to everyone I know.",
)

_NEGATIVE_TEMPLATES = (
    "The service of {company} is too rude.",
    "{company} shipped me a broken product again.",
    "Avoid {company}; their billing is a nightmare.",
    "{company}'s latest update made everything slower.",
    "I regret ever signing up with {company}.",
)


def make_sentiment_dataset(
    num_groups: int = 200,
    group_size: int = 5,
    answers_per_fact: int = 8,
    pool: WorkerPoolSpec | None = None,
    seed: int = 0,
) -> CrowdLabelingDataset:
    """Generate the sentiment stand-in dataset.

    Identical statistics to :func:`make_synthetic_dataset` (the paper's
    1000 tweets -> 200 tasks x 5 facts, 8 answers each), with tweet
    texts attached to every fact: all facts of a group mention the same
    company, which is what makes them correlated.
    """
    dataset = make_synthetic_dataset(
        num_groups=num_groups,
        group_size=group_size,
        answers_per_fact=answers_per_fact,
        pool=pool,
        seed=seed,
        name="sentiment",
    )
    rng = np.random.default_rng(seed + 1)
    textual_groups: list[FactSet] = []
    for group_index, group in enumerate(dataset.groups):
        company = _COMPANIES[group_index % len(_COMPANIES)]
        facts = []
        for fact in group:
            positive = dataset.ground_truth[fact.fact_id]
            templates = _POSITIVE_TEMPLATES if positive else _NEGATIVE_TEMPLATES
            text = templates[rng.integers(len(templates))].format(
                company=company
            )
            facts.append(
                Fact(
                    fact_id=fact.fact_id,
                    instance_id=fact.instance_id,
                    label="positive",
                    text=text,
                )
            )
        textual_groups.append(FactSet(facts))
    dataset.groups = textual_groups
    dataset.metadata["companies"] = _COMPANIES
    return dataset
