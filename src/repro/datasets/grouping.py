"""Belief initialization from aggregated preliminary answers.

Bridges the aggregation layer and the core belief model: an
aggregator's per-fact posteriors become the marginals of a factored
belief (paper Eq. 15 uses raw vote fractions; section IV-A initializes
with EBCC — both are "a fraction in [0,1] per fact" and flow through
:func:`build_factored_belief`).

Also provides :func:`group_tasks`, the paper's "aggregate 5 tasks of
the same dataset to form a new task" preprocessing for flat task lists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..aggregation.base import AggregationResult, Aggregator, AnswerMatrix
from ..core.facts import Fact, FactSet
from ..core.observations import BeliefState, FactoredBelief
from ..core.update import initialize_from_votes
from .schema import CrowdLabelingDataset


def group_tasks(
    fact_ids: Sequence[int], group_size: int
) -> list[FactSet]:
    """Partition a flat task list into consecutive groups of
    ``group_size`` facts (the last group may be smaller)."""
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    groups = []
    for start in range(0, len(fact_ids), group_size):
        chunk = fact_ids[start : start + group_size]
        groups.append(FactSet(Fact(fact_id=fact_id) for fact_id in chunk))
    return groups


def build_factored_belief(
    groups: Sequence[FactSet],
    yes_probabilities: np.ndarray,
    smoothing: float = 0.01,
    belief_epsilon: float = 0.0,
) -> FactoredBelief:
    """Factored belief with per-group independent-product joints.

    Parameters
    ----------
    groups:
        The task groups; fact ids index into ``yes_probabilities``.
    yes_probabilities:
        ``P(f is true)`` per fact, indexed by fact id (e.g. column 1 of
        an aggregator's posteriors).
    smoothing:
        Marginals are squeezed into ``[smoothing, 1 - smoothing]`` so
        experts can overturn a unanimous-but-wrong initialization.
    belief_epsilon:
        Truncation budget of the sparse belief kernel; ``0`` (default)
        builds exact dense states.
    """
    yes_probabilities = np.asarray(yes_probabilities, dtype=np.float64)
    beliefs: list[BeliefState] = []
    for group in groups:
        fractions = {
            fact.fact_id: float(yes_probabilities[fact.fact_id])
            for fact in group
        }
        beliefs.append(
            initialize_from_votes(
                group, fractions, smoothing=smoothing,
                epsilon=belief_epsilon,
            )
        )
    return FactoredBelief(beliefs)


def initialize_belief(
    dataset: CrowdLabelingDataset,
    aggregator: Aggregator,
    theta: float,
    smoothing: float = 0.01,
    belief_epsilon: float = 0.0,
) -> tuple[FactoredBelief, AggregationResult]:
    """Run the full initialization pipeline of Algorithm 3, lines 1-2.

    Splits the crowd at ``theta``, aggregates the *preliminary* (CP)
    workers' recorded answers with ``aggregator``, and builds the
    factored belief from the resulting per-fact posteriors.

    Returns the belief together with the aggregation result (so
    experiments can also report the initializer's own accuracy).
    """
    preliminary_matrix = dataset.preliminary_annotations(theta)
    if preliminary_matrix.num_annotations == 0:
        raise ValueError(
            f"no preliminary annotations at theta={theta}; "
            "is every worker an expert?"
        )
    result = aggregator.fit(preliminary_matrix)
    belief = build_factored_belief(
        dataset.groups, result.posteriors[:, 1], smoothing=smoothing,
        belief_epsilon=belief_epsilon,
    )
    return belief, result


def initialize_belief_from_matrix(
    groups: Sequence[FactSet],
    matrix: AnswerMatrix,
    aggregator: Aggregator,
    smoothing: float = 0.01,
    belief_epsilon: float = 0.0,
) -> tuple[FactoredBelief, AggregationResult]:
    """Initialization from an explicit answer matrix (no crowd split).

    Used when the caller has already chosen which annotations the
    preliminary tier contributes (e.g. budget-limited subsamples).
    """
    result = aggregator.fit(matrix)
    belief = build_factored_belief(
        groups, result.posteriors[:, 1], smoothing=smoothing,
        belief_epsilon=belief_epsilon,
    )
    return belief, result
