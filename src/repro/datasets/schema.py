"""Dataset container shared by the experiments and examples.

A :class:`CrowdLabelingDataset` bundles everything one evaluation run
needs: the facts (binary labeling tasks), their grouping into
correlated multi-fact tasks (the paper groups 5 sentiment tweets into
one 5-fact task), the worker crowd with accuracy rates, the recorded
preliminary annotations, and the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..aggregation.base import AnswerMatrix
from ..core.facts import FactSet
from ..core.workers import Crowd


@dataclass
class CrowdLabelingDataset:
    """A crowdsourced binary labeling dataset.

    Attributes
    ----------
    groups:
        One :class:`FactSet` per independent task group; fact ids are
        globally unique across groups and — by convention — equal the
        task (row) indices of ``annotations``.
    crowd:
        All workers, with their accuracy rates.  Column ``j`` of
        ``annotations`` belongs to ``crowd[j]``.
    annotations:
        Recorded answers (binary labels; 1 == "Yes").
    ground_truth:
        ``fact_id -> bool`` map of the true labels.
    name:
        Human-readable dataset name.
    """

    groups: list[FactSet]
    crowd: Crowd
    annotations: AnswerMatrix
    ground_truth: dict[int, bool]
    name: str = "dataset"
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        fact_ids = [fact.fact_id for group in self.groups for fact in group]
        if len(set(fact_ids)) != len(fact_ids):
            raise ValueError("fact ids must be unique across groups")
        missing = [fid for fid in fact_ids if fid not in self.ground_truth]
        if missing:
            raise ValueError(
                f"ground truth missing for {len(missing)} facts "
                f"(e.g. {missing[:3]})"
            )
        if self.annotations.num_tasks != len(fact_ids):
            raise ValueError(
                "annotation matrix must have one task row per fact "
                f"({self.annotations.num_tasks} rows, {len(fact_ids)} facts)"
            )
        if self.annotations.num_workers != len(self.crowd):
            raise ValueError(
                "annotation matrix must have one column per crowd worker"
            )
        if self.annotations.num_classes != 2:
            raise ValueError("HC operates on binary (Yes/No) facts")

    # -- views -----------------------------------------------------------

    @property
    def num_facts(self) -> int:
        return sum(len(group) for group in self.groups)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    @property
    def fact_ids(self) -> list[int]:
        return [fact.fact_id for group in self.groups for fact in group]

    def truth_vector(self) -> np.ndarray:
        """Ground truth as an int array indexed by fact id (0/1)."""
        truths = np.zeros(self.num_facts, dtype=np.int64)
        for fact_id, value in self.ground_truth.items():
            truths[fact_id] = int(value)
        return truths

    def worker_column(self, worker_id: str) -> int:
        """Annotation-matrix column of a worker."""
        for column, worker in enumerate(self.crowd):
            if worker.worker_id == worker_id:
                return column
        raise KeyError(f"unknown worker {worker_id!r}")

    def split_crowd(self, theta: float) -> tuple[Crowd, Crowd]:
        """``(CE, CP)`` split of the crowd at accuracy threshold theta."""
        return self.crowd.split(theta)

    def preliminary_annotations(self, theta: float) -> AnswerMatrix:
        """The answer matrix restricted to preliminary (CP) workers.

        Used for belief initialization: the paper's labeling tier.
        """
        _experts, preliminary = self.split_crowd(theta)
        columns = [
            self.worker_column(worker.worker_id) for worker in preliminary
        ]
        return self.annotations.restrict_workers(columns)

    def subsample_annotations(
        self, num_annotations: int, rng: np.random.Generator | int | None = None
    ) -> AnswerMatrix:
        """A uniform random subsample of the recorded annotations.

        Used to give aggregation baselines a budget-limited answer pool
        (section IV-B: baselines' accuracy depends on redundancy).
        """
        rng = np.random.default_rng(rng)
        total = self.annotations.num_annotations
        num_annotations = min(num_annotations, total)
        chosen = rng.choice(total, size=num_annotations, replace=False)
        selected = [self.annotations.annotations[index] for index in chosen]
        return AnswerMatrix(
            selected,
            num_tasks=self.annotations.num_tasks,
            num_workers=self.annotations.num_workers,
            num_classes=2,
        )

    def __repr__(self) -> str:
        return (
            f"CrowdLabelingDataset(name={self.name!r}, "
            f"facts={self.num_facts}, groups={self.num_groups}, "
            f"workers={len(self.crowd)}, "
            f"annotations={self.annotations.num_annotations})"
        )


def accuracy_of_labels(
    labels: Mapping[int, bool] | Sequence[int], ground_truth: Mapping[int, bool]
) -> float:
    """Accuracy of a hard labeling against the ground truth.

    ``labels`` is either a ``fact_id -> bool`` mapping or a sequence
    indexed by fact id.
    """
    if isinstance(labels, Mapping):
        items = labels.items()
    else:
        items = enumerate(bool(value) for value in labels)
    total = 0
    correct = 0
    for fact_id, value in items:
        if fact_id not in ground_truth:
            continue
        total += 1
        correct += int(bool(value) == ground_truth[fact_id])
    if total == 0:
        raise ValueError("no labeled fact overlaps the ground truth")
    return correct / total
