"""Multi-class labeling via binary-fact decomposition (paper §II-A).

"If the original labeling task is a multi-label classification with m
labels, each labeling task can be divided into m queries about m binary
facts, as was done in [24], [25].  The facts are of course correlated."

This module implements that decomposition end to end:

* :func:`make_multiclass_dataset` generates tasks with a categorical
  ground truth over ``m`` classes and decomposes each into ``m``
  one-vs-rest binary facts, so one task = one (strongly correlated)
  fact group where exactly one fact is true;
* :func:`one_hot_belief` builds the group belief *on the simplex*: only
  the ``m`` one-hot observations get prior mass, encoding the
  exactly-one-class constraint that independent-marginal methods cannot
  express;
* :func:`decode_class_labels` maps a checked belief back to class
  predictions.

This is the cleanest showcase of why the framework tracks joint
observations: checking "is it class 2?" and hearing "No" raises the
posterior of *every other* class.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..aggregation.base import Annotation, AnswerMatrix
from ..core.facts import Fact, FactSet
from ..core.observations import BeliefState, FactoredBelief
from ..core.workers import Crowd
from .schema import CrowdLabelingDataset
from .synthetic import WorkerPoolSpec, make_worker_pool


def make_multiclass_dataset(
    num_tasks: int = 100,
    num_classes: int = 4,
    answers_per_fact: int = 6,
    pool: WorkerPoolSpec | None = None,
    class_names: Sequence[str] | None = None,
    seed: int | np.random.Generator | None = 0,
    name: str = "multiclass",
) -> CrowdLabelingDataset:
    """A multi-class task set decomposed into one-vs-rest binary facts.

    Task ``t`` with true class ``c`` becomes the fact group
    ``{f_{t,0}, .., f_{t,m-1}}`` with ground truth "f_{t,j} is true iff
    j == c".  Workers answer each binary fact under the usual symmetric
    error model (a wrong worker flips the bit), so within a group both
    false positives and false negatives occur — the checking loop must
    use the one-hot correlation to untangle them.

    The task's true class index is recorded in
    ``metadata["class_truth"]`` (list indexed by task).
    """
    if num_tasks < 1 or num_classes < 2:
        raise ValueError("need num_tasks >= 1 and num_classes >= 2")
    if answers_per_fact < 1:
        raise ValueError("answers_per_fact must be >= 1")
    rng = np.random.default_rng(seed)
    pool = pool or WorkerPoolSpec()
    crowd = make_worker_pool(pool, rng)
    if answers_per_fact > len(crowd):
        raise ValueError("answers_per_fact cannot exceed the pool size")
    if class_names is None:
        class_names = [f"class_{index}" for index in range(num_classes)]
    if len(class_names) != num_classes:
        raise ValueError("need one class name per class")

    class_truth = rng.integers(0, num_classes, size=num_tasks)
    groups: list[FactSet] = []
    ground_truth: dict[int, bool] = {}
    fact_id = 0
    for task_index in range(num_tasks):
        facts = []
        for class_index in range(num_classes):
            facts.append(
                Fact(
                    fact_id=fact_id,
                    instance_id=f"task{task_index:04d}",
                    label=str(class_names[class_index]),
                )
            )
            ground_truth[fact_id] = bool(
                class_truth[task_index] == class_index
            )
            fact_id += 1
        groups.append(FactSet(facts))

    accuracies = crowd.accuracies
    annotations: list[Annotation] = []
    for task in range(fact_id):
        worker_columns = rng.choice(
            len(crowd), size=answers_per_fact, replace=False
        )
        truth = ground_truth[task]
        for column in worker_columns:
            correct = rng.random() < accuracies[column]
            answer = truth if correct else not truth
            annotations.append(
                Annotation(task=task, worker=int(column), label=int(answer))
            )

    matrix = AnswerMatrix(
        annotations,
        num_tasks=fact_id,
        num_workers=len(crowd),
        num_classes=2,
    )
    return CrowdLabelingDataset(
        groups=groups,
        crowd=crowd,
        annotations=matrix,
        ground_truth=ground_truth,
        name=name,
        metadata={
            "num_classes": num_classes,
            "class_names": list(class_names),
            "class_truth": class_truth.tolist(),
        },
    )


def one_hot_belief(
    group: FactSet,
    class_scores: Sequence[float],
    smoothing: float = 1e-6,
) -> BeliefState:
    """A group belief supported on the one-hot observations only.

    Parameters
    ----------
    group:
        The ``m`` one-vs-rest facts of one task.
    class_scores:
        Non-negative score per class (e.g. per-fact "Yes" vote
        fractions); normalized into the prior over one-hot states.
    smoothing:
        Added to every class score so no class starts impossible.
    """
    class_scores = np.asarray(class_scores, dtype=np.float64)
    if class_scores.shape != (len(group),):
        raise ValueError("need one score per fact in the group")
    if np.any(class_scores < 0):
        raise ValueError("class scores must be non-negative")
    scores = class_scores + smoothing
    num_classes = len(group)
    probabilities = np.zeros(1 << num_classes)
    for class_index in range(num_classes):
        probabilities[1 << class_index] = scores[class_index]
    return BeliefState(group, probabilities)


def build_one_hot_belief(
    dataset: CrowdLabelingDataset,
    yes_probabilities: np.ndarray,
    smoothing: float = 1e-6,
) -> FactoredBelief:
    """Factored one-hot belief for a multiclass dataset.

    ``yes_probabilities`` is indexed by fact id (e.g. column 1 of an
    aggregator's posteriors on the binary facts); within each group the
    per-fact scores become the class prior on the one-hot simplex.
    """
    yes_probabilities = np.asarray(yes_probabilities, dtype=np.float64)
    beliefs = []
    for group in dataset.groups:
        scores = [yes_probabilities[fact.fact_id] for fact in group]
        beliefs.append(one_hot_belief(group, scores, smoothing=smoothing))
    return FactoredBelief(beliefs)


def decode_class_labels(belief: FactoredBelief) -> list[int]:
    """MAP class index per task group from a one-hot belief.

    Works for any belief whose groups represent one-vs-rest facts: the
    class posterior is the marginal of each class fact renormalized
    within the group.
    """
    labels: list[int] = []
    for group_belief in belief:
        marginals = group_belief.marginals()
        labels.append(int(np.argmax(marginals)))
    return labels


def class_accuracy(
    belief: FactoredBelief, class_truth: Sequence[int]
) -> float:
    """Task-level accuracy of the decoded class labels."""
    predictions = decode_class_labels(belief)
    if len(predictions) != len(class_truth):
        raise ValueError("need one true class per task group")
    matches = sum(
        1 for predicted, truth in zip(predictions, class_truth)
        if predicted == truth
    )
    return matches / len(predictions)
