"""Dataset diagnostics: what a practitioner checks before running HC.

:func:`describe_dataset` summarizes a :class:`CrowdLabelingDataset` —
redundancy, worker accuracy distribution, tier sizes at a threshold,
within-group truth correlation and empirical label-noise rate — and
:func:`format_summary` renders it as a text report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import CrowdLabelingDataset


@dataclass
class DatasetSummary:
    """Aggregate statistics of a crowd-labeling dataset."""

    name: str
    num_facts: int
    num_groups: int
    group_sizes: dict[int, int]
    num_workers: int
    num_annotations: int
    answers_per_fact_mean: float
    answers_per_fact_min: int
    answers_per_fact_max: int
    accuracy_min: float
    accuracy_mean: float
    accuracy_max: float
    experts_at_theta: int
    preliminary_at_theta: int
    theta: float
    empirical_annotation_accuracy: float
    within_group_agreement: float
    positive_rate: float
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            key: value
            for key, value in self.__dict__.items()
            if key != "metadata"
        }


def describe_dataset(
    dataset: CrowdLabelingDataset, theta: float = 0.9
) -> DatasetSummary:
    """Compute the summary statistics of a dataset.

    ``within_group_agreement`` is the probability two random facts of
    the same group share a truth value — 0.5 means independent fair
    coins, higher means positive correlation (the structure the joint
    belief exploits).
    """
    counts = dataset.annotations.answers_per_task()
    accuracies = dataset.crowd.accuracies
    experts, preliminary = dataset.split_crowd(theta)
    truth = dataset.truth_vector()

    labels = dataset.annotations.label_values
    tasks = dataset.annotations.task_indices
    empirical = float(np.mean(labels == truth[tasks]))

    agreements = []
    for group in dataset.groups:
        values = [dataset.ground_truth[fact.fact_id] for fact in group]
        size = len(values)
        if size < 2:
            continue
        pairs = same = 0
        for i in range(size):
            for j in range(i + 1, size):
                pairs += 1
                same += values[i] == values[j]
        agreements.append(same / pairs)
    within_group = float(np.mean(agreements)) if agreements else float("nan")

    group_sizes: dict[int, int] = {}
    for group in dataset.groups:
        group_sizes[len(group)] = group_sizes.get(len(group), 0) + 1

    return DatasetSummary(
        name=dataset.name,
        num_facts=dataset.num_facts,
        num_groups=dataset.num_groups,
        group_sizes=group_sizes,
        num_workers=len(dataset.crowd),
        num_annotations=dataset.annotations.num_annotations,
        answers_per_fact_mean=float(counts.mean()),
        answers_per_fact_min=int(counts.min()),
        answers_per_fact_max=int(counts.max()),
        accuracy_min=float(accuracies.min()),
        accuracy_mean=float(accuracies.mean()),
        accuracy_max=float(accuracies.max()),
        experts_at_theta=len(experts),
        preliminary_at_theta=len(preliminary),
        theta=theta,
        empirical_annotation_accuracy=empirical,
        within_group_agreement=within_group,
        positive_rate=float(truth.mean()),
        metadata=dict(dataset.metadata),
    )


def format_summary(summary: DatasetSummary) -> str:
    """Human-readable report of a dataset summary."""
    sizes = ", ".join(
        f"{count}x{size}" for size, count in sorted(summary.group_sizes.items())
    )
    lines = [
        f"dataset {summary.name!r}",
        f"  facts:        {summary.num_facts} in {summary.num_groups} "
        f"groups ({sizes})",
        f"  positives:    {summary.positive_rate:.1%}",
        f"  workers:      {summary.num_workers} "
        f"(accuracy {summary.accuracy_min:.2f}..{summary.accuracy_max:.2f}, "
        f"mean {summary.accuracy_mean:.2f})",
        f"  tiering:      theta={summary.theta:g} -> "
        f"{summary.experts_at_theta} experts / "
        f"{summary.preliminary_at_theta} preliminary",
        f"  annotations:  {summary.num_annotations} "
        f"({summary.answers_per_fact_mean:.1f}/fact, "
        f"range {summary.answers_per_fact_min}-"
        f"{summary.answers_per_fact_max})",
        f"  label noise:  {1 - summary.empirical_annotation_accuracy:.1%} "
        f"of annotations disagree with the truth",
        f"  correlation:  within-group truth agreement "
        f"{summary.within_group_agreement:.2f} (0.50 = independent)",
    ]
    return "\n".join(lines)
