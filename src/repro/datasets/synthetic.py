"""Synthetic crowd-labeling data generator.

Stands in for the real AMT dataset of the paper's section IV-A (the
Zheng et al. VLDB'17 sentiment benchmark), which is not available
offline.  The generator preserves the properties the evaluation
exercises:

* binary decision-making tasks grouped into correlated multi-fact
  tasks (the paper aggregates 5 tweets about the same matter into one
  5-fact task);
* a heterogeneous worker pool whose accuracy distribution straddles
  the expert threshold ``theta`` (a few experts, many preliminary
  workers);
* a fixed number of recorded answers per task, sampled from the
  symmetric per-worker error model of section II-A.

Correlation model: each group draws a latent "positivity" level from a
Beta distribution; every fact in the group is true independently with
that probability.  Integrating out the latent level yields positively
correlated facts, mimicking tweets about the same company event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..aggregation.base import Annotation, AnswerMatrix
from ..core.facts import Fact, FactSet
from ..core.workers import Crowd, Worker
from .schema import CrowdLabelingDataset


@dataclass(frozen=True)
class WorkerPoolSpec:
    """Shape of the synthetic worker pool.

    Parameters
    ----------
    num_preliminary, num_expert:
        Pool sizes of the two tiers.
    preliminary_accuracy:
        ``(low, high)`` uniform range of preliminary accuracies; keep
        the high end *below* the experiment's theta.
    expert_accuracy:
        ``(low, high)`` uniform range of expert accuracies; keep the
        low end at or above theta.
    """

    num_preliminary: int = 40
    num_expert: int = 8
    preliminary_accuracy: tuple[float, float] = (0.6, 0.85)
    expert_accuracy: tuple[float, float] = (0.9, 0.97)

    def __post_init__(self) -> None:
        for low, high in (self.preliminary_accuracy, self.expert_accuracy):
            if not 0.0 <= low <= high <= 1.0:
                raise ValueError("accuracy ranges must satisfy 0<=low<=high<=1")
        if self.num_preliminary < 1 or self.num_expert < 0:
            raise ValueError("pool sizes must be positive")


def make_worker_pool(
    spec: WorkerPoolSpec, rng: np.random.Generator
) -> Crowd:
    """Sample a heterogeneous crowd from a pool spec."""
    accuracies = np.concatenate(
        [
            rng.uniform(*spec.preliminary_accuracy, size=spec.num_preliminary),
            rng.uniform(*spec.expert_accuracy, size=spec.num_expert),
        ]
    )
    rng.shuffle(accuracies)
    return Crowd(
        Worker(worker_id=f"w{index:03d}", accuracy=float(accuracy))
        for index, accuracy in enumerate(accuracies)
    )


def sample_correlated_group_truth(
    group_size: int,
    rng: np.random.Generator,
    concentration: float = 0.8,
) -> np.ndarray:
    """Sample correlated boolean truths for one group.

    Draws a latent positivity ``theta_g ~ Beta(c, c)`` then each fact
    is true with probability ``theta_g``.  Small ``concentration``
    pushes groups toward all-true/all-false (strong correlation);
    ``concentration -> inf`` recovers independent fair coins.
    """
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    positivity = rng.beta(concentration, concentration)
    return rng.random(group_size) < positivity


def make_synthetic_dataset(
    num_groups: int = 200,
    group_size: int = 5,
    answers_per_fact: int = 8,
    pool: WorkerPoolSpec | None = None,
    correlation_concentration: float = 0.8,
    seed: int | np.random.Generator | None = 0,
    name: str = "synthetic",
) -> CrowdLabelingDataset:
    """Generate a full synthetic crowd-labeling dataset.

    Parameters
    ----------
    num_groups, group_size:
        Task structure: ``num_groups`` independent tasks of
        ``group_size`` correlated facts (paper: 200 x 5 from 1000
        tweets).
    answers_per_fact:
        Recorded preliminary answers per fact (paper: 8 workers/task).
    pool:
        Worker pool spec; defaults to :class:`WorkerPoolSpec`'s
        defaults.
    correlation_concentration:
        Beta concentration of the within-group truth correlation.
    seed:
        Seed or generator for full reproducibility.
    """
    if num_groups < 1 or group_size < 1:
        raise ValueError("num_groups and group_size must be >= 1")
    if answers_per_fact < 1:
        raise ValueError("answers_per_fact must be >= 1")
    rng = np.random.default_rng(seed)
    pool = pool or WorkerPoolSpec()
    crowd = make_worker_pool(pool, rng)
    if answers_per_fact > len(crowd):
        raise ValueError(
            "answers_per_fact cannot exceed the worker pool size"
        )

    groups: list[FactSet] = []
    ground_truth: dict[int, bool] = {}
    fact_id = 0
    for group_index in range(num_groups):
        truths = sample_correlated_group_truth(
            group_size, rng, concentration=correlation_concentration
        )
        facts = []
        for offset in range(group_size):
            facts.append(
                Fact(
                    fact_id=fact_id,
                    instance_id=f"g{group_index:04d}_t{offset}",
                    label="positive",
                )
            )
            ground_truth[fact_id] = bool(truths[offset])
            fact_id += 1
        groups.append(FactSet(facts))

    accuracies = crowd.accuracies
    annotations: list[Annotation] = []
    num_facts = fact_id
    for task_index in range(num_facts):
        worker_columns = rng.choice(
            len(crowd), size=answers_per_fact, replace=False
        )
        truth = ground_truth[task_index]
        for column in worker_columns:
            correct = rng.random() < accuracies[column]
            answer = truth if correct else not truth
            annotations.append(
                Annotation(
                    task=task_index, worker=int(column), label=int(answer)
                )
            )

    matrix = AnswerMatrix(
        annotations,
        num_tasks=num_facts,
        num_workers=len(crowd),
        num_classes=2,
    )
    return CrowdLabelingDataset(
        groups=groups,
        crowd=crowd,
        annotations=matrix,
        ground_truth=ground_truth,
        name=name,
        metadata={
            "answers_per_fact": answers_per_fact,
            "correlation_concentration": correlation_concentration,
            "pool": pool,
        },
    )
