"""Synthetic feature model for downstream-training experiments.

The paper's introduction motivates label quality by its effect on
supervised training: noisy labels "damnify the downstream model
training".  To measure that effect we need features whose relationship
to the *true* labels is fixed, so that only the training labels vary
between labeling methods.

Each fact (data instance) gets a Gaussian feature vector whose mean
depends on its true class: class-``True`` instances are drawn from
``N(+mu, sigma^2 I)`` and class-``False`` from ``N(-mu, sigma^2 I)``
along a random unit direction, a linearly separable-with-noise setup
whose Bayes error is controlled by ``mu / sigma``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np


@dataclass(frozen=True)
class FeatureSpec:
    """Shape of the synthetic feature distribution.

    Attributes
    ----------
    num_features:
        Feature dimensionality.
    separation:
        Distance between the class means along the discriminative
        direction (``2 * mu``).
    noise_scale:
        Isotropic feature standard deviation ``sigma``.
    """

    num_features: int = 8
    separation: float = 2.0
    noise_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_features < 1:
            raise ValueError("num_features must be >= 1")
        if self.separation < 0 or self.noise_scale <= 0:
            raise ValueError(
                "separation must be >= 0 and noise_scale > 0"
            )


@dataclass(frozen=True)
class FeatureSet:
    """Features plus the true labels they encode.

    ``features[i]`` belongs to fact id ``fact_ids[i]``; ``labels[i]``
    is the *true* binary label (what the features actually reflect).
    """

    fact_ids: tuple[int, ...]
    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.features.shape[0] != len(self.fact_ids):
            raise ValueError("one feature row per fact id required")
        if self.labels.shape != (len(self.fact_ids),):
            raise ValueError("one label per fact id required")

    def index_of(self, fact_id: int) -> int:
        return self.fact_ids.index(fact_id)

    def split(
        self, train_fraction: float, rng: np.random.Generator
    ) -> tuple["FeatureSet", "FeatureSet"]:
        """Random train/test split by instance."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must lie in (0, 1)")
        count = len(self.fact_ids)
        order = rng.permutation(count)
        cut = max(1, int(round(train_fraction * count)))
        cut = min(cut, count - 1)
        train_index, test_index = order[:cut], order[cut:]

        def subset(indices: np.ndarray) -> FeatureSet:
            return FeatureSet(
                fact_ids=tuple(self.fact_ids[i] for i in indices),
                features=self.features[indices],
                labels=self.labels[indices],
            )

        return subset(train_index), subset(test_index)


def generate_features(
    ground_truth: Mapping[int, bool],
    spec: FeatureSpec | None = None,
    rng: np.random.Generator | int | None = None,
) -> FeatureSet:
    """Sample class-conditional Gaussian features for every fact."""
    spec = spec or FeatureSpec()
    rng = np.random.default_rng(rng)
    fact_ids = tuple(sorted(ground_truth))
    labels = np.array(
        [int(ground_truth[fact_id]) for fact_id in fact_ids]
    )
    direction = rng.normal(size=spec.num_features)
    direction /= np.linalg.norm(direction)
    offsets = (labels * 2 - 1)[:, None] * (
        spec.separation / 2.0
    ) * direction[None, :]
    noise = rng.normal(
        scale=spec.noise_scale, size=(len(fact_ids), spec.num_features)
    )
    return FeatureSet(
        fact_ids=fact_ids,
        features=offsets + noise,
        labels=labels,
    )
