"""Label quality -> downstream model quality.

The experiment the paper's introduction implies but does not run:
train the same classifier on the *same* features with labels produced
by different labeling pipelines, and compare test accuracy against the
clean-label ceiling.  The gap between "trained on method X's labels"
and "trained on true labels" is the damage X's label errors cause.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .features import FeatureSet, FeatureSpec, generate_features
from .models import LogisticRegression

#: Factory type for the downstream model.
ModelFactory = Callable[[], object]


@dataclass(frozen=True)
class DownstreamResult:
    """Test accuracies of one downstream-training comparison."""

    label: str
    model_accuracy: float
    clean_label_accuracy: float
    train_label_accuracy: float

    @property
    def damage(self) -> float:
        """Accuracy lost versus training on clean labels."""
        return self.clean_label_accuracy - self.model_accuracy


def train_and_score(
    feature_set: FeatureSet,
    train_labels: Mapping[int, bool],
    label: str = "method",
    train_fraction: float = 0.7,
    model_factory: ModelFactory | None = None,
    soft_weights: Mapping[int, float] | None = None,
    rng: np.random.Generator | int | None = None,
) -> DownstreamResult:
    """Train on crowd labels, test on true labels.

    Parameters
    ----------
    feature_set:
        Features plus *true* labels (the test-time yardstick).
    train_labels:
        The labeling pipeline's output, ``fact_id -> bool``.
    train_fraction:
        Instance fraction used for training; the rest is the test set
        (always scored against the true labels).
    model_factory:
        Downstream model constructor; default logistic regression.
    soft_weights:
        Optional per-fact confidence in ``train_labels`` (e.g. the
        belief's MAP mass), used as example weights.
    rng:
        Split seed.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must lie in (0, 1)")
    rng = np.random.default_rng(rng)
    model_factory = model_factory or LogisticRegression
    train_set, test_set = feature_set.split(train_fraction, rng)

    missing = [
        fact_id for fact_id in train_set.fact_ids
        if fact_id not in train_labels
    ]
    if missing:
        raise ValueError(
            f"train_labels missing {len(missing)} facts (e.g. {missing[:3]})"
        )
    crowd_labels = np.array(
        [int(train_labels[fact_id]) for fact_id in train_set.fact_ids]
    )
    weights = None
    if soft_weights is not None:
        weights = np.array(
            [float(soft_weights.get(fact_id, 1.0))
             for fact_id in train_set.fact_ids]
        )

    # Model trained on the pipeline's labels.
    model = model_factory()
    model.fit(train_set.features, crowd_labels, sample_weight=weights)
    model_accuracy = model.accuracy(test_set.features, test_set.labels)

    # Ceiling: the same model trained on clean labels.
    ceiling = model_factory()
    ceiling.fit(train_set.features, train_set.labels)
    clean_accuracy = ceiling.accuracy(test_set.features, test_set.labels)

    train_label_accuracy = float(
        np.mean(crowd_labels == train_set.labels)
    )
    return DownstreamResult(
        label=label,
        model_accuracy=model_accuracy,
        clean_label_accuracy=clean_accuracy,
        train_label_accuracy=train_label_accuracy,
    )


def compare_labelings(
    ground_truth: Mapping[int, bool],
    labelings: Mapping[str, Mapping[int, bool]],
    spec: FeatureSpec | None = None,
    train_fraction: float = 0.7,
    model_factory: ModelFactory | None = None,
    seed: int = 0,
) -> list[DownstreamResult]:
    """Score several labeling pipelines on a shared feature world.

    All pipelines share the same features and the same train/test split,
    so differences in ``model_accuracy`` are attributable to their
    label errors alone.
    """
    feature_set = generate_features(
        ground_truth, spec=spec, rng=np.random.default_rng(seed)
    )
    results = []
    for label, train_labels in labelings.items():
        results.append(
            train_and_score(
                feature_set,
                train_labels,
                label=label,
                train_fraction=train_fraction,
                model_factory=model_factory,
                rng=np.random.default_rng(seed + 1),
            )
        )
    return results
