"""Downstream-training substrate: how label errors damage models.

Implements the motivation of the paper's introduction — labels feed
supervised training, so label errors translate into model-accuracy
loss — with from-scratch numpy classifiers and a controlled feature
world.
"""

from .evaluation import (
    DownstreamResult,
    compare_labelings,
    train_and_score,
)
from .features import FeatureSet, FeatureSpec, generate_features
from .models import GaussianNaiveBayes, LogisticRegression

__all__ = [
    "DownstreamResult",
    "FeatureSet",
    "FeatureSpec",
    "GaussianNaiveBayes",
    "LogisticRegression",
    "compare_labelings",
    "generate_features",
    "train_and_score",
]
