"""From-scratch classifiers for the downstream-training experiments.

No sklearn in this environment, so the two standard baselines are
implemented directly in numpy:

* :class:`LogisticRegression` — batch gradient descent with L2
  regularization and per-example weights (weights let the training set
  carry *soft* crowd labels, e.g. posterior masses or Paired-MV pairs);
* :class:`GaussianNaiveBayes` — class-conditional diagonal Gaussians,
  also weight-aware.

Both expose the same tiny interface: ``fit(X, y, sample_weight=None)``,
``predict(X)``, ``predict_proba(X)``, ``accuracy(X, y)``.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def _validate_xy(
    features: np.ndarray, labels: np.ndarray, sample_weight
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    features = np.asarray(features, dtype=np.float64)
    labels = np.asarray(labels)
    if features.ndim != 2:
        raise ValueError("features must be a 2-D array")
    if labels.shape != (features.shape[0],):
        raise ValueError("need one label per feature row")
    if not np.isin(labels, (0, 1)).all():
        raise ValueError("labels must be binary (0/1)")
    if sample_weight is None:
        weights = np.ones(features.shape[0])
    else:
        weights = np.asarray(sample_weight, dtype=np.float64)
        if weights.shape != (features.shape[0],):
            raise ValueError("need one weight per example")
        if np.any(weights < 0):
            raise ValueError("sample weights must be non-negative")
        if weights.sum() <= 0:
            raise ValueError("sample weights must not all be zero")
    return features, labels.astype(np.int64), weights


class LogisticRegression:
    """Weighted binary logistic regression via gradient descent.

    Parameters
    ----------
    learning_rate, num_iterations:
        Gradient-descent schedule.
    l2:
        L2 penalty on the weights (not the intercept).
    """

    def __init__(
        self,
        learning_rate: float = 0.5,
        num_iterations: int = 300,
        l2: float = 1e-3,
    ):
        if learning_rate <= 0 or num_iterations < 1 or l2 < 0:
            raise ValueError("invalid hyperparameters")
        self.learning_rate = learning_rate
        self.num_iterations = num_iterations
        self.l2 = l2
        self.coefficients_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "LogisticRegression":
        features, labels, weights = _validate_xy(
            features, labels, sample_weight
        )
        weights = weights / weights.sum()
        num_features = features.shape[1]
        coefficients = np.zeros(num_features)
        intercept = 0.0
        for _iteration in range(self.num_iterations):
            logits = features @ coefficients + intercept
            predictions = 0.5 * (1.0 + np.tanh(0.5 * logits))
            residual = weights * (predictions - labels)
            gradient = features.T @ residual + self.l2 * coefficients
            intercept_gradient = residual.sum()
            coefficients -= self.learning_rate * gradient
            intercept -= self.learning_rate * intercept_gradient
        self.coefficients_ = coefficients
        self.intercept_ = float(intercept)
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.coefficients_ is None:
            raise RuntimeError("fit() must be called before predict")
        features = np.asarray(features, dtype=np.float64)
        logits = features @ self.coefficients_ + self.intercept_
        positive = 0.5 * (1.0 + np.tanh(0.5 * logits))
        return np.stack([1.0 - positive, positive], axis=1)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return (self.predict_proba(features)[:, 1] >= 0.5).astype(np.int64)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))


class GaussianNaiveBayes:
    """Diagonal-covariance Gaussian naive Bayes with example weights."""

    def __init__(self, var_smoothing: float = 1e-6):
        if var_smoothing <= 0:
            raise ValueError("var_smoothing must be positive")
        self.var_smoothing = var_smoothing
        self.means_: np.ndarray | None = None
        self.variances_: np.ndarray | None = None
        self.log_priors_: np.ndarray | None = None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "GaussianNaiveBayes":
        features, labels, weights = _validate_xy(
            features, labels, sample_weight
        )
        num_features = features.shape[1]
        means = np.zeros((2, num_features))
        variances = np.ones((2, num_features))
        priors = np.zeros(2)
        for klass in (0, 1):
            mask = labels == klass
            class_weight = weights[mask].sum()
            if class_weight <= 0:
                # Degenerate training set: keep an uninformative class.
                priors[klass] = _EPS
                continue
            priors[klass] = class_weight
            class_features = features[mask]
            class_weights = weights[mask][:, None]
            means[klass] = (
                (class_weights * class_features).sum(axis=0) / class_weight
            )
            centered = class_features - means[klass]
            variances[klass] = (
                (class_weights * centered**2).sum(axis=0) / class_weight
            )
        self.means_ = means
        self.variances_ = variances + self.var_smoothing
        self.log_priors_ = np.log(priors / priors.sum())
        return self

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        if self.means_ is None:
            raise RuntimeError("fit() must be called before predict")
        features = np.asarray(features, dtype=np.float64)
        log_likelihood = np.zeros((features.shape[0], 2))
        for klass in (0, 1):
            centered = features - self.means_[klass]
            log_likelihood[:, klass] = (
                -0.5 * (centered**2 / self.variances_[klass]).sum(axis=1)
                - 0.5 * np.log(2 * np.pi * self.variances_[klass]).sum()
                + self.log_priors_[klass]
            )
        log_likelihood -= log_likelihood.max(axis=1, keepdims=True)
        likelihood = np.exp(log_likelihood)
        return likelihood / likelihood.sum(axis=1, keepdims=True)

    def predict(self, features: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(features), axis=1)

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        labels = np.asarray(labels)
        return float(np.mean(self.predict(features) == labels))
